//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the subset of criterion the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`BenchmarkId`] and
//! [`Bencher::iter`]. Instead of criterion's statistical machinery it runs
//! a short warm-up plus `sample_size` timed iterations and prints
//! min/mean per iteration — enough for coarse regression spotting and for
//! `cargo bench --no-run` compile checks; swap in the real crate for
//! publishable numbers.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        std_black_box(routine());
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample.max(1) {
                std_black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample.max(1));
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{name:<40} min {min:>12?}   mean {mean:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        routine(&mut b);
        b.report(&full);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs `routine` with `input` as a benchmark named by `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: R,
    ) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_owned(),
            sample_size: 10,
        };
        group.bench_function(id, routine);
        self
    }

    /// Number of benchmarks executed so far (shim diagnostic).
    #[must_use]
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.benchmarks_run(), 1);
    }
}
