//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the subset of proptest this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! [`any::<bool>()`](any), [`option::of`],
//! [`prop_assert!`]/[`prop_assert_eq!`], and [`TestCaseError`].
//!
//! Cases are sampled from a generator seeded deterministically per test
//! name, so failures reproduce run-to-run. There is no shrinking: a
//! failing case panics with the generated inputs printed, which is enough
//! to paste into a regression test. `PROPTEST_CASES` in the environment
//! overrides every test's case count (useful to dial CI time up or down).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Error type property-test bodies return through `prop_assert!` and
/// friends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The input was rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property (unless overridden by
    /// the `PROPTEST_CASES` environment variable).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count, honouring `PROPTEST_CASES`.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for a fixed value (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy yielding `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so each
/// property gets an independent but reproducible stream.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Asserts a condition inside a `proptest!` body, returning
/// `TestCaseError::Fail` (rather than panicking) so the harness can report
/// the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// item becomes a normal `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..config.effective_cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = ::std::format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                            ::std::panic!(
                                "property {} falsified at case {}/{}: {}\ninputs:{}",
                                stringify!($name),
                                case + 1,
                                config.effective_cases(),
                                reason,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// One-stop imports for test files.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=10, 0usize..5).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=4, flip in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(usize::from(flip) <= 1);
        }

        #[test]
        fn mapped_pairs_are_ordered(p in pair()) {
            prop_assert!(p.0 <= p.1, "{} > {}", p.0, p.1);
        }

        #[test]
        fn options_mix(o in crate::option::of(0u64..100)) {
            if let Some(v) = o {
                prop_assert!(v < 100);
            }
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                #[allow(unused)]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(false, "boom {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::rng_for("t");
        let mut b = crate::rng_for("t");
        let s = 0usize..1000;
        for _ in 0..20 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
