//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no registry access, so this shim implements
//! exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random_range` over integer ranges,
//! and `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic for a given seed, which is all the
//! workload generators and property tests require (no cryptographic
//! claims).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic default generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "32 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
