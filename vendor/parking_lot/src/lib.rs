//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no registry access, so this
//! shim wraps `std::sync` primitives behind the (small) subset of the
//! `parking_lot` API the workspace uses: `Mutex::lock` without poisoning,
//! and `Condvar::{wait, wait_for, notify_one, notify_all}` operating on a
//! `&mut MutexGuard`. Poisoned std locks are transparently recovered, which
//! matches `parking_lot`'s no-poisoning semantics closely enough for the
//! threaded runtime and its tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar`] can move the std guard out
/// across a wait and put the reacquired guard back; the option is `Some`
/// at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("guard present outside of a wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside of a wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait returned because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
