//! Property test: every generated program round-trips through the text
//! format (`program_to_text` → `parse_program`).

use proptest::prelude::*;
use systolic::model::{parse_program, program_to_text};
use systolic::workloads::{random_program, scramble, RandomConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_programs_roundtrip(
        cells in 2usize..=6,
        messages in 1usize..=10,
        max_words in 1usize..=5,
        seed in 0u64..10_000,
        scramble_seed in proptest::option::of(0u64..10_000),
    ) {
        let cfg = RandomConfig {
            cells,
            messages,
            max_words,
            max_span: cells - 1,
            clustered: true,
        };
        let mut program = random_program(&cfg, seed).unwrap();
        if let Some(s) = scramble_seed {
            program = scramble(&program, s);
        }
        let text = program_to_text(&program);
        let reparsed = parse_program(&text).unwrap();
        prop_assert_eq!(reparsed, program);
    }

    #[test]
    fn workload_programs_roundtrip(taps in 1usize..=5, inputs_extra in 0usize..=8) {
        let program = systolic::workloads::fir(taps, taps + inputs_extra).unwrap();
        let text = program_to_text(&program);
        prop_assert_eq!(parse_program(&text).unwrap(), program);
    }
}
