//! Property tests for the observability spine: concurrent histogram
//! recording conserves count and sum through snapshots.

use std::sync::Arc;

use proptest::prelude::*;
use systolic::obs::{bucket_index, Histogram, Registry, HISTOGRAM_BUCKETS};

/// Deterministic value stream (xorshift64) spanning every magnitude:
/// shifting by `i % 64` bits exercises all log2 buckets, including 0.
fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state >> (i % 64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N threads record disjoint slices of one value stream while the
    /// main thread snapshots mid-flight: no observation is lost, double
    /// counted, or misfiled, and in-flight snapshots never overshoot.
    #[test]
    fn concurrent_records_conserve_count_and_sum(
        seed in any::<u64>(),
        len in 1usize..400,
        threads in 1usize..5,
    ) {
        let values = stream(seed, len);
        let hist = Arc::new(Histogram::new());
        let expected_count = values.len() as u64;
        let expected_sum = values
            .iter()
            .fold(0u64, |acc, &v| acc.saturating_add(v));
        let expected_max = values.iter().copied().max().unwrap_or(0);

        let chunk = values.len().div_ceil(threads);
        let inflight = std::thread::scope(|scope| {
            for slice in values.chunks(chunk) {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for &v in slice {
                        hist.record(v);
                    }
                });
            }
            // Snapshot while writers are live.
            hist.snapshot()
        });
        // Mid-flight reads stay within the final totals (monotonic
        // counters, saturating sums) — never phantom observations.
        prop_assert!(inflight.count <= expected_count);
        prop_assert!(inflight.sum <= expected_sum);
        prop_assert!(inflight.max <= expected_max);

        let done = hist.snapshot();
        prop_assert_eq!(done.count, expected_count);
        prop_assert_eq!(done.sum, expected_sum);
        prop_assert_eq!(done.max, expected_max);
        prop_assert_eq!(done.buckets.iter().sum::<u64>(), expected_count);
        // Every value landed in its log2 bucket.
        let mut per_bucket = [0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            per_bucket[bucket_index(v)] += 1;
        }
        prop_assert_eq!(done.buckets, per_bucket);
    }

    /// The same conservation holds through the registry: label-sharded
    /// series merge back to the full stream in `histogram_total`.
    #[test]
    fn registry_merge_conserves_across_label_series(
        seed in any::<u64>(),
        len in 1usize..200,
    ) {
        let values = stream(seed, len);
        let registry = Registry::new();
        for (i, &v) in values.iter().enumerate() {
            let shard = ["a", "b", "c"][i % 3];
            registry
                .histogram_with("prop_merge_micros", &[("shard", shard)])
                .record(v);
        }
        let merged = registry.snapshot().histogram_total("prop_merge_micros");
        let expected_sum = values
            .iter()
            .fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(merged.count, values.len() as u64);
        prop_assert_eq!(merged.sum, expected_sum);
        prop_assert_eq!(merged.max, values.iter().copied().max().unwrap_or(0));
    }
}
