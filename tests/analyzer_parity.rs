//! Parity property tests: the staged [`Analyzer`] must be observably
//! identical to the legacy `analyze` entry point on random programs and
//! topologies — byte-identical `CommPlan` fingerprints on success,
//! identical errors on rejection. This file is the one sanctioned caller
//! of the legacy wrapper outside its own crate (see
//! `tests/no_legacy_analyze.rs`).

use proptest::prelude::*;
use systolic::core::{analyze, AnalysisConfig, Analyzer, CompiledTopology, Lookahead};
use systolic::workloads::{random_program, random_topology, scramble, RandomConfig};

fn shapes() -> impl Strategy<Value = RandomConfig> {
    (2usize..7, 1usize..10, 1usize..4, 1usize..4, any::<bool>()).prop_map(
        |(cells, messages, max_words, max_span, clustered)| RandomConfig {
            cells,
            messages,
            max_words,
            max_span: max_span.min(cells - 1).max(1),
            clustered,
        },
    )
}

fn lookaheads() -> impl Strategy<Value = Lookahead> {
    (0usize..5).prop_map(|pick| match pick {
        0 => Lookahead::Disabled,
        1..=3 => Lookahead::PerQueueCapacity(pick),
        _ => Lookahead::Unbounded,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same inputs, same outputs: staged-and-shared vs. legacy one-shot.
    #[test]
    fn analyzer_matches_legacy_analyze(
        shape in shapes(),
        seed in 0u64..1_000_000,
        scrambled in any::<bool>(),
        lookahead in lookaheads(),
        queues in 1usize..4,
    ) {
        let program = random_program(&shape, seed).expect("random programs build");
        let program =
            if scrambled { scramble(&program, seed ^ 0xc0ffee) } else { program };
        let topology = random_topology(&shape);
        let config = AnalysisConfig { lookahead, queues_per_interval: queues };

        let legacy = analyze(&program, &topology, &config);

        // The staged path, deliberately through a shared compilation and
        // a session whose stages are poked out of order before finishing.
        let compiled = CompiledTopology::compile(&topology, &config).into_shared();
        let analyzer = Analyzer::new(compiled);
        let session = analyzer.session(&program);
        let _ = session.requirements(); // force later stages first
        let _ = session.classification();
        let staged = session.finish();

        match (&legacy, staged.result()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    a.plan().fingerprint(),
                    b.plan().fingerprint(),
                    "plan fingerprints must be byte-identical"
                );
                prop_assert_eq!(a.labeling_method(), b.labeling_method());
                prop_assert_eq!(a.limits(), b.limits());
                prop_assert_eq!(
                    a.classification().is_deadlock_free(),
                    b.classification().is_deadlock_free()
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors must be identical"),
            (legacy, staged) => prop_assert!(
                false,
                "verdicts diverged: legacy {:?} vs staged {:?}",
                legacy.is_ok(),
                staged.is_ok()
            ),
        }

        // Unsafe programs must come with at least one error diagnostic;
        // certified ones with none.
        if staged.is_certified() {
            prop_assert!(!staged.diagnostics().has_errors());
        } else {
            prop_assert!(staged.diagnostics().has_errors());
            let d = staged
                .diagnostics()
                .errors()
                .next()
                .expect("has_errors implies an error diagnostic");
            prop_assert!(d.code().as_str().starts_with("E-"));
        }
    }

    /// Analyzing through one shared compilation many times is stable: the
    /// fingerprint of the plan never depends on compilation reuse.
    #[test]
    fn shared_compilation_is_stateless(
        shape in shapes(),
        seed in 0u64..1_000_000,
    ) {
        let program = random_program(&shape, seed).expect("random programs build");
        let topology = random_topology(&shape);
        let config = AnalysisConfig {
            queues_per_interval: shape.messages.max(1),
            ..Default::default()
        };
        let analyzer = Analyzer::new(CompiledTopology::compile(&topology, &config));
        let first = analyzer.analyze(&program);
        let second = analyzer.analyze(&program);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.plan().fingerprint(), b.plan().fingerprint());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "repeat analysis changed its verdict"),
        }
    }
}
