//! Incremental-reanalysis parity property tests: a dirty-tracked
//! [`IncrementalSession`] must be observably identical to a from-scratch
//! analysis of the same edited program at *every* step of a random edit
//! script — byte-identical `CommPlan` fingerprints and diagnostics on
//! success, identical `CoreError`s on rejected programs, identical
//! `EditError`s on invalid batches (which must leave the session
//! untouched). Runs across mixed linear/ring/mesh/torus topologies, all
//! lookahead modes, and forced-fallback configurations, so both the
//! seeded fast path and the dirty-ratio fallback are held to the same
//! bar.

use proptest::prelude::*;
use systolic::core::{
    AnalysisConfig, Analyzer, EditOp, IncrementalConfig, IncrementalSession, Lookahead,
};
use systolic::model::{CellId, Op, Topology};
use systolic::workloads::{random_program, RandomConfig};

/// Abstract edit-step recipes, resolved against the session's *current*
/// program when applied (so a script stays meaningful as the program
/// evolves under it).
#[derive(Clone, Debug)]
enum Step {
    /// Append `W(m)` at m's source and `R(m)` at m's destination — always
    /// a valid batch.
    AppendBalanced { msg: usize },
    /// Pop the last op of one cell. May be rejected (empty cell,
    /// unbalanced message) or accepted; both paths are checked.
    RemoveTail { cell: usize },
    /// Append a lone write — unbalances the message, always rejected.
    AppendUnbalanced { msg: usize },
    /// Name a cell past the end of the program — always rejected.
    UnknownCell { offset: usize },
}

/// Deterministic stream for deriving edit scripts from one proptest
/// seed (the vendored proptest shim has no collection strategies).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a 1..=7-step script: balanced appends weighted heaviest, with
/// tail removals and always-invalid batches mixed in.
fn script_from_seed(seed: u64) -> Vec<Step> {
    let mut state = seed;
    let len = 1 + (splitmix(&mut state) % 7) as usize;
    (0..len)
        .map(|_| {
            let pick = splitmix(&mut state) % 8;
            let arg = (splitmix(&mut state) % 64) as usize;
            match pick {
                0..=3 => Step::AppendBalanced { msg: arg },
                4 | 5 => Step::RemoveTail { cell: arg },
                6 => Step::AppendUnbalanced { msg: arg },
                _ => Step::UnknownCell { offset: arg % 4 },
            }
        })
        .collect()
}

fn lookaheads() -> impl Strategy<Value = Lookahead> {
    (0usize..5).prop_map(|pick| match pick {
        0 | 1 => Lookahead::Disabled,
        2 | 3 => Lookahead::PerQueueCapacity(pick - 1),
        _ => Lookahead::Unbounded,
    })
}

/// Even cell counts so the mesh/torus variants (2 × cells/2) hold exactly
/// the program's cells.
fn shapes() -> impl Strategy<Value = RandomConfig> {
    (2usize..4, 1usize..7, 1usize..4, any::<bool>()).prop_map(
        |(half_cells, messages, max_words, clustered)| RandomConfig {
            cells: half_cells * 2,
            messages,
            max_words,
            max_span: 1,
            clustered,
        },
    )
}

fn pick_topology(pick: usize, cells: usize) -> Topology {
    match pick % 4 {
        0 => Topology::linear(cells),
        1 => Topology::ring(cells),
        2 => Topology::mesh(2, cells / 2),
        _ => Topology::torus(2, cells / 2),
    }
}

/// Resolves one abstract step into concrete [`EditOp`]s against the
/// session's current program.
fn resolve(step: &Step, session: &IncrementalSession) -> Vec<EditOp> {
    let program = session.program();
    match step {
        Step::AppendBalanced { msg } => {
            let ids: Vec<_> = program.message_ids().collect();
            let m = ids[msg % ids.len()];
            let decl = program.message(m);
            vec![
                EditOp::AppendOp {
                    cell: decl.sender(),
                    op: Op::write(m),
                },
                EditOp::AppendOp {
                    cell: decl.receiver(),
                    op: Op::read(m),
                },
            ]
        }
        Step::RemoveTail { cell } => vec![EditOp::RemoveTailOp {
            cell: CellId::new((cell % program.num_cells()) as u32),
        }],
        Step::AppendUnbalanced { msg } => {
            let ids: Vec<_> = program.message_ids().collect();
            let m = ids[msg % ids.len()];
            vec![EditOp::AppendOp {
                cell: program.message(m).sender(),
                op: Op::write(m),
            }]
        }
        Step::UnknownCell { offset } => vec![EditOp::RemoveTailOp {
            cell: CellId::new((program.num_cells() + offset) as u32),
        }],
    }
}

/// The parity oracle: the session's committed outcome must equal a fully
/// from-scratch diagnose of its current program on a freshly compiled
/// copy of its current topology.
fn assert_outcome_parity(session: &IncrementalSession, config: &AnalysisConfig) {
    let fresh = Analyzer::for_topology(session.analyzer().compiled().topology(), config)
        .diagnose(session.program());
    match (session.outcome().result(), fresh.result()) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.plan().fingerprint(),
                b.plan().fingerprint(),
                "plan fingerprints must be byte-identical"
            );
            assert_eq!(a.labeling_method(), b.labeling_method());
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "rejection errors must be identical"),
        (a, b) => panic!("verdicts diverged: incremental={a:?} fresh={b:?}"),
    }
    assert_eq!(session.outcome().diagnostics(), fresh.diagnostics());
}

/// Drives one full script through a warm session, holding every step to
/// the parity bar; invalid batches must also match the `EditError` a
/// cold-seeded session produces and must leave the warm session intact.
fn run_script(
    mut session: IncrementalSession,
    config: &AnalysisConfig,
    incremental: IncrementalConfig,
    script: &[Step],
) {
    assert_outcome_parity(&session, config);
    for step in script {
        let edits = resolve(step, &session);
        let before = session.fingerprint();

        // A cold session seeded at the same state is the rejection
        // oracle: identical batches must succeed or fail identically.
        let mut cold = IncrementalSession::seed(
            Analyzer::for_topology(session.analyzer().compiled().topology(), config),
            session.program().clone(),
            incremental,
        );
        let warm_result = session.apply(&edits);
        let cold_result = cold.apply(&edits);

        match (warm_result, cold_result) {
            (Ok(_), Ok(_)) => {
                assert_eq!(
                    session.fingerprint(),
                    cold.fingerprint(),
                    "warm and cold sessions must commit the same program"
                );
                assert_outcome_parity(&session, config);
            }
            (Err(warm), Err(cold_err)) => {
                assert_eq!(warm, cold_err, "edit rejections must be identical");
                assert_eq!(
                    session.fingerprint(),
                    before,
                    "a rejected batch must leave the session untouched"
                );
            }
            (warm, cold) => {
                panic!("edit verdicts diverged: warm={warm:?} cold={cold:?} step={step:?}")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random edit scripts over mixed fixed topologies, all lookahead
    /// modes, random queue counts.
    #[test]
    fn incremental_matches_from_scratch_at_every_step(
        shape in shapes(),
        seed in 0u64..1_000_000,
        topology_pick in 0usize..4,
        lookahead in lookaheads(),
        queues in 1usize..3,
        script_seed in 0u64..1_000_000,
    ) {
        let script = script_from_seed(script_seed);
        let program = random_program(&shape, seed).expect("random programs build");
        let topology = pick_topology(topology_pick, shape.cells);
        let config = AnalysisConfig { lookahead, queues_per_interval: queues };
        let session = IncrementalSession::seed(
            Analyzer::for_topology(&topology, &config),
            program,
            IncrementalConfig::default(),
        );
        run_script(session, &config, IncrementalConfig::default(), &script);
    }

    /// `fallback_ratio: 0.0` forces the from-scratch fallback on every
    /// edit — the fallback path must meet the same parity bar as the
    /// seeded fast path.
    #[test]
    fn forced_fallback_matches_from_scratch(
        shape in shapes(),
        seed in 0u64..1_000_000,
        lookahead in lookaheads(),
        script_seed in 0u64..1_000_000,
    ) {
        let script = script_from_seed(script_seed);
        let program = random_program(&shape, seed).expect("random programs build");
        let config = AnalysisConfig { lookahead, queues_per_interval: 1 };
        let incremental = IncrementalConfig { fallback_ratio: 0.0 };
        let session = IncrementalSession::seed(
            Analyzer::for_topology(&Topology::linear(shape.cells), &config),
            program,
            incremental,
        );
        run_script(session, &config, incremental, &script);
    }

    /// Graph topologies: link edits (including always-invalid self-links
    /// and removals of absent links) interleaved with op edits, with the
    /// topology recompiled under the session.
    #[test]
    fn graph_link_edits_match_from_scratch(
        shape in shapes(),
        seed in 0u64..1_000_000,
        link_seed in 0u64..1_000_000,
        script_seed in 0u64..1_000_000,
    ) {
        let script = script_from_seed(script_seed);
        let links: Vec<(usize, usize, bool)> = {
            let mut state = link_seed;
            let n = 1 + (splitmix(&mut state) % 4) as usize;
            (0..n)
                .map(|_| {
                    (
                        (splitmix(&mut state) % 64) as usize,
                        (splitmix(&mut state) % 64) as usize,
                        splitmix(&mut state).is_multiple_of(2),
                    )
                })
                .collect()
        };
        let program = random_program(&shape, seed).expect("random programs build");
        let cells = shape.cells;
        // A chain plus one chord keeps the graph connected under single
        // link removals often enough to exercise both outcomes.
        let mut edges: Vec<(CellId, CellId)> = (0..cells - 1)
            .map(|i| (CellId::new(i as u32), CellId::new(i as u32 + 1)))
            .collect();
        edges.push((CellId::new(0), CellId::new(cells as u32 - 1)));
        let topology = Topology::graph(cells, edges).expect("chain graph builds");
        let config = AnalysisConfig::default();
        let mut session = IncrementalSession::seed(
            Analyzer::for_topology(&topology, &config),
            program,
            IncrementalConfig::default(),
        );
        assert_outcome_parity(&session, &config);

        for (a, b, add) in links {
            let a = CellId::new((a % cells) as u32);
            let b = CellId::new((b % cells) as u32);
            let edit = if add {
                EditOp::AddLink { a, b }
            } else {
                EditOp::RemoveLink { a, b }
            };
            let before = session.fingerprint();
            match session.apply(&[edit]) {
                Ok(_) => assert_outcome_parity(&session, &config),
                Err(_) => prop_assert_eq!(
                    session.fingerprint(),
                    before,
                    "rejected link edits must leave the session untouched"
                ),
            }
        }
        run_script(session, &config, IncrementalConfig::default(), &script);
    }
}
