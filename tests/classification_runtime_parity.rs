//! Parity between the compile-time crossing-off classification and the
//! runtime's actual behaviour.
//!
//! For *adjacent-cell* (single-hop) messages with dedicated queues:
//!
//! * latch queues (capacity 0) make the runtime an exact implementation of
//!   the basic crossing-off semantics, so classification and outcome agree
//!   in **both** directions;
//! * with buffering `c`, the lookahead classification (rule R2 budget `c`
//!   per message) again predicts the runtime exactly.
//!
//! For multi-hop messages the runtime has pipeline registers (one word per
//! intermediate latch), so it is strictly *more* permissive: deadlock-free
//! classification still implies completion (soundness), but not vice versa.

use proptest::prelude::*;
use systolic::core::{classify, classify_with, LookaheadLimits};
use systolic::sim::{run_simulation, CostModel, GreedyPolicy, QueueConfig, SimConfig};
use systolic::workloads::{random_program, random_topology, scramble, RandomConfig};

fn sim(queues: usize, capacity: usize) -> SimConfig {
    SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity,
            extension: false,
        },
        cost: CostModel::systolic(),
        max_cycles: 200_000,
    }
}

/// Scrambled programs have arbitrary per-cell op orders: a rich mix of
/// deadlock-free and deadlocked inputs.
fn span1_config() -> impl Strategy<Value = RandomConfig> {
    (2usize..=5, 1usize..=8, 1usize..=4).prop_map(|(cells, messages, max_words)| RandomConfig {
        cells,
        messages,
        max_words,
        max_span: 1,
        clustered: true,
    })
}

fn any_span_config() -> impl Strategy<Value = RandomConfig> {
    (3usize..=6, 1usize..=8, 1usize..=4).prop_map(|(cells, messages, max_words)| RandomConfig {
        cells,
        messages,
        max_words,
        max_span: cells - 1,
        clustered: true,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact parity on single-hop programs with latch queues: the program
    /// completes iff the crossing-off procedure classifies it deadlock-free.
    #[test]
    fn latch_runtime_equals_basic_classification(
        cfg in span1_config(),
        seed in 0u64..500,
        scramble_seed in 0u64..500,
    ) {
        let program = scramble(&random_program(&cfg, seed).unwrap(), scramble_seed);
        let topology = random_topology(&cfg);
        let classified_free = classify(&program).is_deadlock_free();
        // Dedicated queue per message: enough queues for every message on
        // every interval, so only *program* structure matters.
        let queues = program.num_messages().max(1);
        let out = run_simulation(
            &program,
            &topology,
            Box::new(GreedyPolicy::new()),
            sim(queues, 0),
        )
        .unwrap();
        prop_assert_eq!(
            classified_free,
            out.is_completed(),
            "classification {} but runtime {:?}",
            classified_free,
            out.stats()
        );
    }

    /// Exact parity with buffering: lookahead budget = per-queue capacity.
    #[test]
    fn buffered_runtime_equals_lookahead_classification(
        cfg in span1_config(),
        seed in 0u64..500,
        scramble_seed in 0u64..500,
        capacity in 1usize..4,
    ) {
        let program = scramble(&random_program(&cfg, seed).unwrap(), scramble_seed);
        let topology = random_topology(&cfg);
        let limits = LookaheadLimits::uniform(&program, capacity);
        let classified_free = classify_with(&program, &limits).is_deadlock_free();
        let queues = program.num_messages().max(1);
        let out = run_simulation(
            &program,
            &topology,
            Box::new(GreedyPolicy::new()),
            sim(queues, capacity),
        )
        .unwrap();
        prop_assert_eq!(classified_free, out.is_completed());
    }

    /// Soundness for any route length: a deadlock-free classification
    /// guarantees completion (the runtime only ever has MORE buffering).
    #[test]
    fn classification_is_sound_for_multi_hop(
        cfg in any_span_config(),
        seed in 0u64..500,
        scramble_seed in 0u64..500,
    ) {
        let program = scramble(&random_program(&cfg, seed).unwrap(), scramble_seed);
        let topology = random_topology(&cfg);
        if classify(&program).is_deadlock_free() {
            let queues = program.num_messages().max(1);
            let out = run_simulation(
                &program,
                &topology,
                Box::new(GreedyPolicy::new()),
                sim(queues, 0),
            )
            .unwrap();
            prop_assert!(out.is_completed(), "sound classification violated: {out:?}");
        }
    }

    /// Monotonicity of lookahead: more buffering never turns a
    /// deadlock-free program into a deadlocked one.
    #[test]
    fn lookahead_is_monotone_in_capacity(
        cfg in span1_config(),
        seed in 0u64..500,
        scramble_seed in 0u64..500,
        capacity in 0usize..4,
    ) {
        let program = scramble(&random_program(&cfg, seed).unwrap(), scramble_seed);
        let small = LookaheadLimits::uniform(&program, capacity);
        let large = LookaheadLimits::uniform(&program, capacity + 1);
        if classify_with(&program, &small).is_deadlock_free() {
            prop_assert!(classify_with(&program, &large).is_deadlock_free());
        }
    }
}
