//! End-to-end service test: ≥ 500 mixed workload requests through the
//! sharded, cached analysis service, cross-checked against direct
//! `Analyzer` runs.

use std::collections::HashMap;

use systolic::core::{request_fingerprint, Analyzer};
use systolic::service::{
    AnalysisRequest, AnalysisResponse, AnalysisService, CacheConfig, CacheProvenance, ServiceConfig,
};
use systolic::workloads::{traffic, TrafficConfig};

const REQUESTS: usize = 600;

fn mixed_requests() -> Vec<AnalysisRequest> {
    traffic(&TrafficConfig::default(), 20_260_726, REQUESTS)
        .iter()
        .map(AnalysisRequest::from_traffic)
        .collect()
}

#[test]
fn five_hundred_mixed_requests_match_direct_analysis() {
    let requests = mixed_requests();
    let config = ServiceConfig {
        workers: 8,
        cache: CacheConfig {
            shards: 8,
            capacity_per_shard: 1024,
        },
        queue_depth: 32,
        ..Default::default()
    };
    let service = AnalysisService::new(config);
    let responses = service.run_batch(requests.clone());
    assert_eq!(responses.len(), REQUESTS);

    // Order is preserved and every response matches a direct, uncached
    // analysis of the same request.
    let mut direct_cache: HashMap<u128, Option<usize>> = HashMap::new();
    for (request, response) in requests.iter().zip(&responses) {
        assert_eq!(request.name, response.name);
        let fingerprint = request_fingerprint(&request.program, &request.topology, &request.config);
        assert_eq!(fingerprint, response.fingerprint);

        let direct = direct_cache.entry(fingerprint).or_insert_with(|| {
            Analyzer::for_topology(&request.topology, &request.config)
                .analyze(&request.program)
                .ok()
                .map(|a| a.plan().requirements().max_per_interval())
        });
        match (direct.as_ref(), response.outcome.as_ref()) {
            (Some(&max_queues), Ok(certified)) => {
                assert_eq!(
                    certified.max_queues_per_interval, max_queues,
                    "{}: queue requirement drifted through the service",
                    request.name
                );
                assert_eq!(
                    certified.message_labels.len(),
                    request.program.num_messages()
                );
            }
            (None, Err(_)) => {}
            (direct, served) => panic!(
                "{}: direct analysis {:?} disagrees with service outcome {:?}",
                request.name,
                direct.is_some(),
                served.is_ok()
            ),
        }
    }

    // Cache accounting: entries equal distinct fingerprints, counters add
    // up, and the hot part of the traffic produced real hits.
    let stats = service.stats();
    assert_eq!(stats.requests, REQUESTS as u64);
    assert_eq!(service.cache_entries(), direct_cache.len());
    assert_eq!(stats.cache.hits + stats.cache.misses, REQUESTS as u64);
    assert!(
        stats.cache.hits >= (REQUESTS / 4) as u64,
        "mixed traffic should hit the cache often, got {} hits",
        stats.cache.hits
    );
    let per_shard = service.per_shard_cache_stats();
    assert_eq!(per_shard.len(), 8);
    assert_eq!(
        per_shard.iter().map(|s| s.entries).sum::<usize>(),
        service.cache_entries()
    );
}

#[test]
fn repeated_batches_become_pure_hits() {
    let requests = mixed_requests();
    let service = AnalysisService::new(ServiceConfig {
        workers: 4,
        cache: CacheConfig {
            shards: 4,
            capacity_per_shard: 1024,
        },
        ..Default::default()
    });
    let first = service.run_batch(requests.clone());
    let second = service.run_batch(requests);
    assert!(
        second.iter().all(|r| r.provenance == CacheProvenance::Hit),
        "a replayed batch must be served entirely from cache"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(std::sync::Arc::ptr_eq(&a.outcome, &b.outcome));
    }
}

#[test]
fn tiny_cache_evicts_under_mixed_traffic() {
    let service = AnalysisService::new(ServiceConfig {
        workers: 4,
        cache: CacheConfig {
            shards: 2,
            capacity_per_shard: 4,
        },
        ..Default::default()
    });
    let responses: Vec<AnalysisResponse> = service.run_batch(mixed_requests());
    assert_eq!(responses.len(), REQUESTS);
    let stats = service.cache_stats();
    assert!(
        stats.evictions > 0,
        "8 total slots must evict under mixed traffic"
    );
    assert!(service.cache_entries() <= 8);
}
