//! Property: batch verification through one shared `SimArena`
//! (`verify_batch_compiled`) is observationally identical to sequential
//! one-shot `verify_plan` calls — same `completed`, `cycles` and
//! `words_delivered` per plan — over generated mixed-traffic workloads.
//! Arena reuse (reset-in-place pools, plan-route reuse, queue-pool
//! growth across a batch) must never leak state between replays.

use std::sync::Arc;

use proptest::prelude::*;
use systolic::core::{AnalysisConfig, Analyzer, CommPlan, CompiledTopology};
use systolic::model::{Program, Topology};
use systolic::sim::{verify_batch_compiled, verify_plan, SimConfig};
use systolic::workloads::{fig7, fig7_topology, traffic, TrafficConfig, TrafficItem};

/// One same-topology batch: the shape `verify_batch_compiled` serves.
struct Batch {
    compiled: Arc<CompiledTopology>,
    topology: Topology,
    items: Vec<(Program, Arc<CommPlan>)>,
}

/// Groups a traffic stream's certified plans by `(topology, config)`
/// fingerprint — mirroring the service's shared-compilation cache.
fn certified_batches(stream: &[TrafficItem]) -> Vec<Batch> {
    let mut batches: Vec<Batch> = Vec::new();
    for item in stream {
        let config = AnalysisConfig {
            queues_per_interval: item.queues_per_interval,
            ..Default::default()
        };
        let fingerprint = CompiledTopology::fingerprint_of(&item.topology, &config);
        let batch = match batches.iter().position(|b| b.compiled.fingerprint() == fingerprint)
        {
            Some(pos) => &mut batches[pos],
            None => {
                let compiled = CompiledTopology::compile(&item.topology, &config).into_shared();
                batches.push(Batch {
                    compiled,
                    topology: item.topology.clone(),
                    items: Vec::new(),
                });
                batches.last_mut().expect("just pushed")
            }
        };
        let analyzer = Analyzer::new(Arc::clone(&batch.compiled));
        if let Ok(analysis) = analyzer.analyze(&item.program) {
            batch.items.push((item.program.clone(), Arc::new(analysis.into_plan())));
        }
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_verification_equals_sequential(
        seed in 0u64..1_000_000,
        count in 4usize..12,
        hot_percent in 0u32..101,
    ) {
        let config = TrafficConfig { hot_percent, ..Default::default() };
        let mut stream = traffic(&config, seed, count);
        // Guarantee at least one certifiable item so every case verifies
        // something.
        stream.push(TrafficItem {
            name: "fig7/3".into(),
            program: fig7(3),
            topology: fig7_topology(),
            queues_per_interval: 1,
        });

        let sim = SimConfig::default();
        let mut verified = 0usize;
        for batch in certified_batches(&stream) {
            if batch.items.is_empty() {
                continue;
            }
            let batch_reports = verify_batch_compiled(
                batch.items.iter().map(|(program, plan)| (program, plan)),
                &batch.compiled,
                sim,
            )
            .expect("batch setup succeeds");
            prop_assert_eq!(batch_reports.len(), batch.items.len());
            for ((program, plan), through_arena) in batch.items.iter().zip(&batch_reports) {
                let sequential =
                    verify_plan(program, &batch.topology, plan, sim).expect("setup succeeds");
                prop_assert_eq!(through_arena.completed, sequential.completed);
                prop_assert_eq!(through_arena.cycles, sequential.cycles);
                prop_assert_eq!(through_arena.words_delivered, sequential.words_delivered);
                // Certified plans complete (Theorem 1), so replays agree on
                // success, not just on failure shape.
                prop_assert!(through_arena.completed, "{} did not complete", program.num_cells());
                verified += 1;
            }
        }
        prop_assert!(verified >= 1, "stream produced no certified plans");
    }
}
