//! Property: batch verification through one shared `SimArena`
//! (`verify_batch_compiled`) is observationally identical to sequential
//! one-shot `verify_plan` calls — same `completed`, `cycles` and
//! `words_delivered` per plan — over generated mixed-traffic workloads.
//! Arena reuse (reset-in-place pools, plan-route reuse, queue-pool
//! growth across a batch) must never leak state between replays.
//!
//! Property two: fanning the same batch over an N-thread `VerifyPool` is
//! **byte-identical** to the sequential batch — every `VerifyReport`
//! (including `ReplayDeadlock` details) equal, in input order — no
//! matter the thread count or which worker stole which plan.
//!
//! Property three: one heterogeneous `VerifyScheduler` fan-out over an
//! interleaved mesh/torus/linear batch is byte-identical to splitting the
//! batch by compiled-topology fingerprint and running each group through
//! sequential `verify_batch_compiled` — across thread counts, across
//! reused scheduler instances, and for deadlocking latch replays too.

use std::sync::Arc;

use proptest::prelude::*;
use systolic::core::{AnalysisConfig, Analyzer, CommPlan, CompiledTopology, Lookahead};
use systolic::model::{Program, Topology};
use systolic::sim::{
    verify_batch_compiled, verify_batch_compiled_parallel, verify_plan, ArenaBudget, QueueConfig,
    SimConfig, VerifyPool, VerifyReport, VerifyScheduler,
};
use systolic::workloads::{fig5_p2, fig7, fig7_topology, traffic, TrafficConfig, TrafficItem};

/// One same-topology batch: the shape `verify_batch_compiled` serves.
struct Batch {
    compiled: Arc<CompiledTopology>,
    topology: Topology,
    items: Vec<(Program, Arc<CommPlan>)>,
}

/// Groups a traffic stream's certified plans by `(topology, config)`
/// fingerprint — mirroring the service's shared-compilation cache.
fn certified_batches(stream: &[TrafficItem]) -> Vec<Batch> {
    let mut batches: Vec<Batch> = Vec::new();
    for item in stream {
        let config = AnalysisConfig {
            queues_per_interval: item.queues_per_interval,
            ..Default::default()
        };
        let fingerprint = CompiledTopology::fingerprint_of(&item.topology, &config);
        let batch = match batches
            .iter()
            .position(|b| b.compiled.fingerprint() == fingerprint)
        {
            Some(pos) => &mut batches[pos],
            None => {
                let compiled = CompiledTopology::compile(&item.topology, &config).into_shared();
                batches.push(Batch {
                    compiled,
                    topology: item.topology.clone(),
                    items: Vec::new(),
                });
                batches.last_mut().expect("just pushed")
            }
        };
        let analyzer = Analyzer::new(Arc::clone(&batch.compiled));
        if let Ok(analysis) = analyzer.analyze(&item.program) {
            batch
                .items
                .push((item.program.clone(), Arc::new(analysis.into_plan())));
        }
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_pool_is_byte_identical_to_sequential(
        seed in 0u64..1_000_000,
        count in 4usize..12,
        hot_percent in 0u32..101,
        threads in 2usize..6,
    ) {
        let config = TrafficConfig { hot_percent, ..Default::default() };
        let mut stream = traffic(&config, seed, count);
        stream.push(TrafficItem {
            name: "fig7/3".into(),
            program: fig7(3),
            topology: fig7_topology(),
            queues_per_interval: 1,
        });

        let sim = SimConfig::default();
        for batch in certified_batches(&stream) {
            if batch.items.is_empty() {
                continue;
            }
            let sequential = verify_batch_compiled(
                batch.items.iter().map(|(program, plan)| (program, plan)),
                &batch.compiled,
                sim,
            )
            .expect("batch setup succeeds");
            // One-call convenience: fresh pool per batch.
            let parallel = verify_batch_compiled_parallel(
                batch.items.iter().map(|(program, plan)| (program, plan)),
                &batch.compiled,
                sim,
                threads,
            )
            .expect("pool setup succeeds");
            prop_assert_eq!(&parallel, &sequential, "threads = {}", threads);
            // Reused pool: a second fan-out through the same arenas must
            // not drift (reset-in-place across batches).
            let mut pool =
                VerifyPool::from_compiled(Arc::clone(&batch.compiled), sim, threads);
            for _ in 0..2 {
                let again = pool
                    .verify_batch(batch.items.iter().map(|(program, plan)| (program, plan)))
                    .expect("pool setup succeeds");
                prop_assert_eq!(&again, &sequential);
            }
        }
    }

    #[test]
    fn batch_verification_equals_sequential(
        seed in 0u64..1_000_000,
        count in 4usize..12,
        hot_percent in 0u32..101,
    ) {
        let config = TrafficConfig { hot_percent, ..Default::default() };
        let mut stream = traffic(&config, seed, count);
        // Guarantee at least one certifiable item so every case verifies
        // something.
        stream.push(TrafficItem {
            name: "fig7/3".into(),
            program: fig7(3),
            topology: fig7_topology(),
            queues_per_interval: 1,
        });

        let sim = SimConfig::default();
        let mut verified = 0usize;
        for batch in certified_batches(&stream) {
            if batch.items.is_empty() {
                continue;
            }
            let batch_reports = verify_batch_compiled(
                batch.items.iter().map(|(program, plan)| (program, plan)),
                &batch.compiled,
                sim,
            )
            .expect("batch setup succeeds");
            prop_assert_eq!(batch_reports.len(), batch.items.len());
            for ((program, plan), through_arena) in batch.items.iter().zip(&batch_reports) {
                let sequential =
                    verify_plan(program, &batch.topology, plan, sim).expect("setup succeeds");
                prop_assert_eq!(through_arena.completed, sequential.completed);
                prop_assert_eq!(through_arena.cycles, sequential.cycles);
                prop_assert_eq!(through_arena.words_delivered, sequential.words_delivered);
                // Certified plans complete (Theorem 1), so replays agree on
                // success, not just on failure shape.
                prop_assert!(through_arena.completed, "{} did not complete", program.num_cells());
                verified += 1;
            }
        }
        prop_assert!(verified >= 1, "stream produced no certified plans");
    }
}

/// A small cross-cell transfer program for `cells` cells: `W(A)*reps` at
/// cell 0, `R(A)*reps` at the last cell, routed over whatever fabric it
/// lands on.
fn transfer(cells: usize, reps: usize) -> Program {
    let last = cells - 1;
    systolic::model::parse_program(&format!(
        "cells {cells}\nmessage A: c0 -> c{last}\nprogram c0 {{ W(A)*{reps} }}\n\
         program c{last} {{ R(A)*{reps} }}\n",
    ))
    .expect("transfer parses")
}

/// The scheduler's sequential reference: split the mixed batch by
/// compiled-topology fingerprint, run each group through sequential
/// `verify_batch_compiled`, and scatter the reports back to input order.
fn sequential_reference(
    items: &[(Program, Arc<CompiledTopology>, Arc<CommPlan>)],
    sim: SimConfig,
) -> Vec<VerifyReport> {
    let mut groups: Vec<(u128, Vec<usize>)> = Vec::new();
    for (i, (_, compiled, _)) in items.iter().enumerate() {
        let key = compiled.fingerprint();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, indices)) => indices.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut reports: Vec<Option<VerifyReport>> = (0..items.len()).map(|_| None).collect();
    for (_, indices) in &groups {
        let compiled = &items[indices[0]].1;
        let group = verify_batch_compiled(
            indices.iter().map(|&i| {
                let (program, _, plan) = &items[i];
                (program, plan)
            }),
            compiled,
            sim,
        )
        .expect("group setup succeeds");
        for (&i, report) in indices.iter().zip(group) {
            reports[i] = Some(report);
        }
    }
    reports
        .into_iter()
        .map(|r| r.expect("every item verified"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property three: the cross-topology scheduler. An interleaved
    /// mesh/torus/linear batch (with fig5_p2 mixed in so latch replays
    /// deadlock) fanned out heterogeneously must be byte-identical to the
    /// per-fingerprint sequential reference — on both the default and the
    /// capacity-0 latch simulator, for 2–6 threads, and again when the
    /// same scheduler instance (warm arenas) runs the batch a second
    /// time.
    #[test]
    fn scheduler_is_byte_identical_on_mixed_topologies(
        threads in 2usize..=6,
        reps in 1usize..4,
    ) {
        let analysis = AnalysisConfig {
            queues_per_interval: 2,
            lookahead: Lookahead::Unbounded,
        };
        let topologies = [
            Topology::mesh(2, 2),
            Topology::torus(2, 2),
            Topology::linear(3),
            Topology::linear(2),
        ];
        let compiled: Vec<(Arc<CompiledTopology>, Analyzer)> = topologies
            .iter()
            .map(|topology| {
                let compiled = CompiledTopology::compile(topology, &analysis).into_shared();
                let analyzer = Analyzer::new(Arc::clone(&compiled));
                (compiled, analyzer)
            })
            .collect();

        // Round-robin interleave: consecutive items alternate topologies.
        // On linear:2, alternate plain transfers with fig5_p2, which
        // certifies under unbounded lookahead but deadlocks on latches.
        let mut items: Vec<(Program, Arc<CompiledTopology>, Arc<CommPlan>)> = Vec::new();
        for round in 0..3usize {
            for (i, (topology, (compiled, analyzer))) in
                topologies.iter().zip(&compiled).enumerate()
            {
                let program = if i == 3 && round % 2 == 0 {
                    fig5_p2()
                } else {
                    transfer(topology.num_cells(), reps + round)
                };
                let plan = Arc::new(
                    analyzer
                        .analyze(&program)
                        .expect("mixed batch certifies")
                        .into_plan(),
                );
                items.push((program, Arc::clone(compiled), plan));
            }
        }

        let latch = SimConfig {
            queues_per_interval: 2,
            queue: QueueConfig {
                capacity: 0,
                extension: false,
            },
            ..Default::default()
        };
        for sim in [SimConfig::default(), latch] {
            let expected = sequential_reference(&items, sim);
            let mut scheduler = VerifyScheduler::new(sim, threads, ArenaBudget::Auto);
            for round in 0..2 {
                let got = scheduler
                    .verify_batch(items.iter().map(|(p, c, plan)| (p, c, plan)))
                    .expect("scheduler setup succeeds");
                prop_assert_eq!(&got, &expected, "threads = {}, round = {}", threads, round);
                for (through_scheduler, reference) in got.iter().zip(&expected) {
                    prop_assert_eq!(&through_scheduler.deadlock, &reference.deadlock);
                }
            }
        }
        // The latch runs must actually exercise the deadlock path.
        let latched = sequential_reference(&items, latch);
        prop_assert!(
            latched.iter().any(|r| r.deadlock.is_some()),
            "fig5_p2 latch replays must deadlock"
        );
        prop_assert!(
            latched.iter().any(|r| r.completed),
            "plain transfers must complete"
        );
    }
}

/// Deadlock details cross the pool unchanged: a batch whose replays
/// (deliberately) stall on capacity-0 latch queues must produce the same
/// `ReplayDeadlock` — cycle, first blocked cell, reason text, blocked
/// count — from the parallel pool as from the sequential arena, merged
/// in input order.
#[test]
fn pool_merges_deadlock_details_identically() {
    let topology = Topology::linear(2);
    // P2 certifies only under lookahead (both cells write first) and
    // deadlocks when replayed on latch queues (Section 3.2); plain
    // transfers complete even on latches. Mixing them yields a batch of
    // interleaved completed/deadlocked reports.
    let config = AnalysisConfig {
        queues_per_interval: 2,
        lookahead: Lookahead::Unbounded,
    };
    let compiled = CompiledTopology::compile(&topology, &config).into_shared();
    let analyzer = Analyzer::new(Arc::clone(&compiled));
    let mut items: Vec<(Program, Arc<CommPlan>)> = Vec::new();
    for reps in 1..=4 {
        items.push({
            let program = fig5_p2();
            let plan = Arc::new(
                analyzer
                    .analyze(&program)
                    .expect("P2 certifies")
                    .into_plan(),
            );
            (program, plan)
        });
        let transfer = systolic::model::parse_program(&format!(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ W(A)*{reps} }}\n\
             program c1 {{ R(A)*{reps} }}\n",
        ))
        .expect("transfer parses");
        let plan = Arc::new(analyzer.analyze(&transfer).expect("certifies").into_plan());
        items.push((transfer, plan));
    }
    let sim = SimConfig {
        queues_per_interval: 2,
        queue: QueueConfig {
            capacity: 0,
            extension: false,
        },
        ..Default::default()
    };

    let sequential = verify_batch_compiled(items.iter().map(|(p, plan)| (p, plan)), &compiled, sim)
        .expect("setup succeeds");
    let deadlocked = sequential.iter().filter(|r| r.deadlock.is_some()).count();
    let completed = sequential.iter().filter(|r| r.completed).count();
    assert_eq!(deadlocked, 4, "every P2 latch replay deadlocks");
    assert_eq!(completed, 4, "every plain transfer completes");

    for threads in [2, 3, 4] {
        let mut pool = VerifyPool::from_compiled(Arc::clone(&compiled), sim, threads);
        let parallel = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .expect("pool setup succeeds");
        assert_eq!(parallel, sequential, "threads = {threads}");
        for (through_pool, through_arena) in parallel.iter().zip(&sequential) {
            assert_eq!(through_pool.deadlock, through_arena.deadlock);
        }
    }
}
