//! Simulator invariants over random programs: determinism, word
//! conservation, and stat sanity.

use proptest::prelude::*;
use systolic::core::{AnalysisConfig, Analyzer};
use systolic::sim::{
    run_simulation, CompatiblePolicy, CostModel, GreedyPolicy, QueueConfig, RunOutcome, SimConfig,
};
use systolic::workloads::{random_program, random_topology, RandomConfig};

fn config_strategy() -> impl Strategy<Value = RandomConfig> {
    (2usize..=5, 1usize..=8, 1usize..=4).prop_map(|(cells, messages, max_words)| RandomConfig {
        cells,
        messages,
        max_words,
        max_span: cells - 1,
        clustered: true,
    })
}

fn sim(queues: usize) -> SimConfig {
    SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity: 1,
            extension: false,
        },
        cost: CostModel::systolic(),
        max_cycles: 500_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulator is deterministic: identical inputs give identical
    /// statistics, event for event.
    #[test]
    fn simulation_is_deterministic(cfg in config_strategy(), seed in 0u64..500) {
        let program = random_program(&cfg, seed).unwrap();
        let topology = random_topology(&cfg);
        let queues = program.num_messages().max(1);
        let run = || {
            run_simulation(&program, &topology, Box::new(GreedyPolicy::new()), sim(queues))
                .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.is_completed(), b.is_completed());
    }

    /// Word conservation on completed runs: every word is delivered exactly
    /// once, and forwarding moves each word exactly (hops - 1) times.
    #[test]
    fn words_are_conserved(cfg in config_strategy(), seed in 0u64..500) {
        let program = random_program(&cfg, seed).unwrap();
        let topology = random_topology(&cfg);
        let generous = AnalysisConfig {
            queues_per_interval: program.num_messages().max(1) * 2,
            ..Default::default()
        };
        let analysis = Analyzer::for_topology(&topology, &generous).analyze(&program).unwrap();
        let expected_forwards: usize = analysis
            .plan()
            .routes()
            .iter()
            .map(|(m, r)| (r.num_hops() - 1) * program.word_count(m))
            .sum();
        let queues = program.num_messages().max(1) * 2;
        let out = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(analysis.into_plan())),
            sim(queues),
        )
        .unwrap();
        let RunOutcome::Completed(stats) = out else {
            return Err(TestCaseError::fail("expected completion"));
        };
        prop_assert_eq!(stats.words_delivered as usize, program.total_words());
        prop_assert_eq!(stats.words_forwarded as usize, expected_forwards);
        // Systolic cost model: no memory traffic ever.
        prop_assert_eq!(stats.memory_accesses, 0);
        // Each grant eventually pairs with a release on completed runs.
        let grants = stats.assignment_events.iter().filter(|e| e.granted).count();
        let releases = stats.assignment_events.iter().filter(|e| !e.granted).count();
        prop_assert_eq!(grants, releases);
    }

    /// Deadlocked runs still report a coherent state: at least one blocked
    /// cell, and every queue snapshot matches a real queue.
    #[test]
    fn deadlock_reports_are_coherent(cfg in config_strategy(), seed in 0u64..500, s2 in 0u64..500) {
        let program = systolic::workloads::scramble(&random_program(&cfg, seed).unwrap(), s2);
        let topology = random_topology(&cfg);
        let out = run_simulation(
            &program,
            &topology,
            Box::new(GreedyPolicy::new()),
            sim(1),
        )
        .unwrap();
        if let RunOutcome::Deadlocked { report, stats } = out {
            prop_assert!(!report.blocked.is_empty(), "a deadlock has blocked cells");
            prop_assert_eq!(report.cycle, stats.cycles);
            let text = report.render(&program);
            prop_assert!(text.contains("deadlock at cycle"));
        }
    }
}
