//! CI gate: no in-workspace code calls the legacy `analyze` entry point
//! directly. Formerly an ad-hoc source scan; now the `L-LEGACY-ANALYZE`
//! rule of `systolic-lint`, which lexes real tokens (so strings and all
//! comment forms can mention the old API freely). Allowed callers live in
//! `lint.toml` under `[rule.L-LEGACY-ANALYZE]`.

#[test]
fn workspace_does_not_call_legacy_analyze() {
    systolic_lint::assert_rule_clean(env!("CARGO_MANIFEST_DIR"), "L-LEGACY-ANALYZE");
}
