//! CI gate: no in-workspace code calls the legacy `analyze` entry point
//! directly. The wrapper survives for downstream compatibility, but the
//! workspace itself — crates, examples, integration tests, benches — uses
//! the staged `Analyzer` API. Allowed callers: the wrapper's own module
//! (`crates/core/src/pipeline.rs`, definition + its tests) and the parity
//! property tests (`tests/analyzer_parity.rs`), whose entire point is
//! comparing the two.
//!
//! The scan flags `analyze(` tokens that are plain calls: not method
//! calls (`.analyze(`), not part of a longer identifier, and not inside
//! line comments or doc comments.

use std::path::{Path, PathBuf};

const ALLOWED: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/core/src/analyzer.rs", // defines Analyzer::analyze + inline parity test
    "tests/analyzer_parity.rs",
    "tests/no_legacy_analyze.rs",
];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never appears under the scanned roots, but be safe.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `true` if `line` contains a direct call token `analyze(` — preceded by
/// nothing or by a character that is not part of an identifier, a method
/// dot, or a quote (so `.analyze(`, `reanalyze(` and `"analyze("` don't
/// count, while `analyze(`, `(analyze(` and `::analyze(` do).
fn has_direct_call(line: &str) -> bool {
    let needle = "analyze(";
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let ok_prefix = if at == 0 {
            true
        } else {
            let prev = bytes[at - 1];
            !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.' || prev == b'"')
        };
        // `fn analyze(` is a definition (e.g. a method named analyze on
        // some other type), not a call of the legacy entry point.
        let is_definition = line[..at].trim_end().ends_with("fn");
        if ok_prefix && !is_definition {
            return true;
        }
        from = at + needle.len();
    }
    false
}

#[test]
fn workspace_does_not_call_legacy_analyze() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    assert!(files.len() > 50, "scan found too few files — wrong root?");

    let mut offenders = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED.contains(&rel.as_str()) || rel.starts_with("vendor/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("//") {
                continue; // comments and doc comments may illustrate the old API
            }
            if has_direct_call(line) {
                offenders.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "direct legacy `analyze(` calls found — migrate to `Analyzer` \
         (see the systolic_core migration docs):\n{}",
        offenders.join("\n")
    );
}

#[test]
fn direct_call_detector_distinguishes_shapes() {
    assert!(has_direct_call("let a = analyze(&p, &t, &c);"));
    assert!(has_direct_call("systolic_core::analyze(&p, &t, &c)"));
    assert!(has_direct_call("(analyze(&p, &t, &c))"));
    assert!(!has_direct_call("analyzer.analyze(&p)"));
    assert!(!has_direct_call("session.reanalyze(&p)"));
    assert!(!has_direct_call("\"analyze(\" in a string"));
    assert!(!has_direct_call("let analyzer = Analyzer::new(c);"));
    assert!(!has_direct_call("pub fn analyze(&self, program: &Program)"));
    assert!(!has_direct_call("    fn analyze(text: &str)"));
}
