//! Labeling-quality comparisons across all workloads: both schemes stay
//! within the trivial labeling's queue requirement, and each scheme's own
//! requirement is feasible and runnable.

use systolic::core::{
    label_messages, label_messages_robust, CompetingSets, Labeling, LookaheadLimits,
    QueueRequirements,
};
use systolic::model::{MessageRoutes, Program, Topology};
use systolic::workloads as wl;

fn workloads() -> Vec<(String, Program, Topology)> {
    vec![
        ("fig2".into(), wl::fig2_fir(), wl::fig2_topology()),
        ("fig6".into(), wl::fig6_cycle(), wl::fig6_topology()),
        ("fig7(4)".into(), wl::fig7(4), wl::fig7_topology()),
        ("fig8".into(), wl::fig8(), wl::fig8_topology()),
        ("fig9".into(), wl::fig9(), wl::fig9_topology()),
        (
            "fir(4,10)".into(),
            wl::fir(4, 10).unwrap(),
            wl::fir_topology(4),
        ),
        (
            "matvec(4)".into(),
            wl::matvec(4).unwrap(),
            wl::matvec_topology(4),
        ),
        (
            "sort(5,5)".into(),
            wl::odd_even_sort(5, 5).unwrap(),
            wl::sort_topology(5),
        ),
        (
            "align(3,6)".into(),
            wl::seq_align(3, 6).unwrap(),
            wl::seq_align_topology(3),
        ),
        (
            "horner(3,5)".into(),
            wl::horner(3, 5).unwrap(),
            wl::horner_topology(3),
        ),
        (
            "backsub(4)".into(),
            wl::back_substitution(4).unwrap(),
            wl::back_substitution_topology(4),
        ),
        (
            "matmul(3,3,4)".into(),
            wl::mesh_matmul(3, 3, 4).unwrap(),
            wl::matmul_topology(3, 3),
        ),
        (
            "wave(3,3,2)".into(),
            wl::wavefront(3, 3, 2).unwrap(),
            wl::wavefront_topology(3, 3),
        ),
        (
            "ring(5,2)".into(),
            wl::token_ring(5, 2).unwrap(),
            wl::ring_topology(5),
        ),
    ]
}

#[test]
fn both_schemes_bounded_by_trivial_on_every_hop() {
    for (name, program, topology) in workloads() {
        let routes = MessageRoutes::compute(&program, &topology).unwrap();
        let competing = CompetingSets::compute(&routes);
        let limits = LookaheadLimits::disabled(&program);
        let trivial = QueueRequirements::compute(&competing, &Labeling::trivial(&program));

        let robust = label_messages_robust(&program, &limits).unwrap();
        let robust_req = QueueRequirements::compute(&competing, &robust);
        for (hop, need) in robust_req.iter_hops() {
            assert!(
                need <= trivial.on_hop(hop),
                "{name}: solver needs {need} > trivial {} on {hop}",
                trivial.on_hop(hop)
            );
        }

        if let Ok(report) = label_messages(&program, &limits) {
            let s6 = QueueRequirements::compute(&competing, report.labeling());
            for (hop, need) in s6.iter_hops() {
                assert!(
                    need <= trivial.on_hop(hop),
                    "{name}: section6 exceeds trivial on {hop}"
                );
            }
        }
    }
}

#[test]
fn section6_succeeds_on_all_structured_workloads() {
    // The wedges only bite on adversarial random programs; every structured
    // workload labels fine with the literal paper scheme.
    for (name, program, _) in workloads() {
        let limits = LookaheadLimits::disabled(&program);
        assert!(
            label_messages(&program, &limits).is_ok(),
            "{name}: Section 6 scheme should succeed"
        );
    }
}

#[test]
fn per_interval_requirement_bounds_per_hop() {
    for (name, program, topology) in workloads() {
        let routes = MessageRoutes::compute(&program, &topology).unwrap();
        let competing = CompetingSets::compute(&routes);
        let limits = LookaheadLimits::disabled(&program);
        let labeling = label_messages_robust(&program, &limits).unwrap();
        let req = QueueRequirements::compute(&competing, &labeling);
        for (hop, need) in req.iter_hops() {
            assert!(
                req.on_interval(hop.interval()) >= need,
                "{name}: interval total must cover each direction"
            );
        }
        assert!(req.check_feasible(req.max_per_interval()).is_ok(), "{name}");
    }
}
