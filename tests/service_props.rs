//! Property tests for the analysis service: cache hits must be
//! indistinguishable from cache misses, and concurrent identical requests
//! must converge on one cache entry.

use std::sync::Arc;

use proptest::prelude::*;
use systolic::core::{Analyzer, CoreError};
use systolic::service::{
    AnalysisRequest, AnalysisService, CacheProvenance, Certified, ServiceConfig, ServiceOutcome,
};
use systolic::workloads::{random_program, random_topology, scramble, RandomConfig};

fn shapes() -> impl Strategy<Value = RandomConfig> {
    (2usize..6, 1usize..8, 1usize..4, 1usize..3, any::<bool>()).prop_map(
        |(cells, messages, max_words, max_span, clustered)| RandomConfig {
            cells,
            messages,
            max_words,
            max_span: max_span.min(cells - 1).max(1),
            clustered,
        },
    )
}

fn request_for(config: &RandomConfig, seed: u64, scrambled: bool) -> AnalysisRequest {
    let program = random_program(config, seed).expect("random programs build");
    let program = if scrambled {
        scramble(&program, seed ^ 0x5eed)
    } else {
        program
    };
    let mut request =
        AnalysisRequest::new(format!("prop/{seed}"), program, random_topology(config));
    // Generous queue count: the requirement never exceeds the message count.
    request.config.queues_per_interval = config.messages;
    request
}

fn assert_same_outcome(a: &ServiceOutcome, b: &ServiceOutcome) -> Result<(), TestCaseError> {
    match (a.as_ref(), b.as_ref()) {
        (Ok(x), Ok(y)) => {
            prop_assert_eq!(&x.message_labels, &y.message_labels);
            prop_assert_eq!(x.max_queues_per_interval, y.max_queues_per_interval);
            prop_assert_eq!(x.labeling_method, y.labeling_method);
        }
        (Err(x), Err(y)) => prop_assert_eq!(x, y),
        _ => prop_assert!(false, "one outcome certified, the other rejected"),
    }
    Ok(())
}

fn certified_of(outcome: &ServiceOutcome) -> Option<&Certified> {
    outcome.as_ref().as_ref().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_hit_equals_cache_miss(
        shape in shapes(),
        seed in 0u64..1_000_000,
        scrambled in any::<bool>(),
    ) {
        let request = request_for(&shape, seed, scrambled);
        let service = AnalysisService::new(ServiceConfig::default());

        let miss = service.submit(request.clone()).wait();
        prop_assert_eq!(miss.provenance, CacheProvenance::Miss);
        let hit = service.submit(request.clone()).wait();
        prop_assert_eq!(hit.provenance, CacheProvenance::Hit);
        prop_assert_eq!(miss.fingerprint, hit.fingerprint);
        assert_same_outcome(&miss.outcome, &hit.outcome)?;

        // Both agree with a direct, service-free analysis.
        let direct = Analyzer::for_topology(&request.topology, &request.config)
            .analyze(&request.program);
        match (&direct, certified_of(&hit.outcome)) {
            (Ok(analysis), Some(certified)) => {
                prop_assert_eq!(
                    certified.max_queues_per_interval,
                    analysis.plan().requirements().max_per_interval()
                );
                for (m, (_, label)) in request
                    .program
                    .message_ids()
                    .zip(certified.message_labels.iter())
                {
                    prop_assert_eq!(*label, analysis.plan().label(m));
                }
            }
            (Err(expected), None) => {
                let served = hit.outcome.as_ref().as_ref().expect_err("rejected");
                prop_assert_eq!(served.as_analysis(), Some(expected));
            }
            _ => prop_assert!(false, "service and direct analysis disagree"),
        }
    }

    #[test]
    fn concurrent_identical_requests_make_one_cache_entry(
        shape in shapes(),
        seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let request = request_for(&shape, seed, false);
        let service = Arc::new(AnalysisService::new(ServiceConfig {
            workers: 4,
            ..Default::default()
        }));

        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = Arc::clone(&service);
                let request = request.clone();
                std::thread::spawn(move || service.submit(request).wait())
            })
            .collect();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("submitting thread completes"))
            .collect();

        prop_assert_eq!(service.cache_entries(), 1);
        let first = &responses[0];
        for other in &responses[1..] {
            prop_assert_eq!(first.fingerprint, other.fingerprint);
            // Every thread observed the *same* shared outcome object.
            prop_assert!(Arc::ptr_eq(&first.outcome, &other.outcome));
        }
        let stats = service.cache_stats();
        prop_assert_eq!(stats.insertions, 1);
        prop_assert_eq!(stats.hits + stats.misses, threads as u64);
    }

    #[test]
    fn scrambled_programs_never_crash_the_service(
        shape in shapes(),
        seed in 0u64..1_000_000,
    ) {
        // Scrambles are candidate deadlocks: whatever the verdict, the
        // service must answer (certified or rejected), and cache it.
        let request = request_for(&shape, seed, true);
        let service = AnalysisService::new(ServiceConfig::default());
        let first = service.submit(request.clone()).wait();
        let again = service.submit(request).wait();
        prop_assert_eq!(again.provenance, CacheProvenance::Hit);
        if let Err(e) = first.outcome.as_ref() {
            let expected_kind = matches!(
                e.as_analysis(),
                Some(CoreError::ProgramDeadlocked { .. } | CoreError::Infeasible { .. })
            );
            prop_assert!(expected_kind, "unexpected rejection kind: {:?}", e);
        }
    }
}
