//! Property-based tests of the paper's central claims (Theorem 1 and the
//! Section 6 labeling scheme), over randomly generated programs.

use proptest::prelude::*;
use systolic::core::CompetingSets;
use systolic::core::{
    check_consistency, classify, label_messages, label_messages_robust, AnalysisConfig, Analyzer,
    CoreError, Labeling, LookaheadLimits, QueueRequirements, RelatedMessages,
};
use systolic::model::MessageRoutes;
use systolic::sim::{run_simulation, CompatiblePolicy, CostModel, QueueConfig, SimConfig};
use systolic::workloads::{random_program, random_topology, RandomConfig};

fn config_strategy() -> impl Strategy<Value = RandomConfig> {
    (2usize..=6, 1usize..=10, 1usize..=5, any::<bool>()).prop_map(
        |(cells, messages, max_words, clustered)| RandomConfig {
            cells,
            messages,
            max_words,
            max_span: cells - 1,
            clustered,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Schedule-projected programs are deadlock-free by construction
    /// (Section 3.3's strategy, generalized).
    #[test]
    fn projected_programs_are_deadlock_free(cfg in config_strategy(), seed in 0u64..1000) {
        let program = random_program(&cfg, seed).unwrap();
        prop_assert!(classify(&program).is_deadlock_free());
    }

    /// The Section 6 scheme never produces an inconsistent labeling
    /// silently: it either succeeds with a consistent labeling or reports
    /// the wedge explicitly (`LabelConflict`) — a gap in the literal paper
    /// scheme that the constraint solver covers (see DESIGN.md).
    #[test]
    fn section6_scheme_is_consistent_or_reports_conflict(
        cfg in config_strategy(),
        seed in 0u64..1000,
        cap in 0usize..4,
    ) {
        let program = random_program(&cfg, seed).unwrap();
        let limits = LookaheadLimits::uniform(&program, cap);
        match label_messages(&program, &limits) {
            Ok(report) => {
                prop_assert!(check_consistency(&program, report.labeling()).is_empty());
            }
            Err(
                CoreError::LabelConflict { .. } | CoreError::InconsistentLabeling { .. },
            ) => {} // explicit, acceptable — the pipeline falls back
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// The constraint-solving scheme always succeeds and is always
    /// consistent, with or without lookahead.
    #[test]
    fn robust_labeling_is_consistent(
        cfg in config_strategy(),
        seed in 0u64..1000,
        cap in 0usize..4,
    ) {
        let program = random_program(&cfg, seed).unwrap();
        let limits = LookaheadLimits::uniform(&program, cap);
        let labeling = label_messages_robust(&program, &limits).unwrap();
        prop_assert!(check_consistency(&program, &labeling).is_empty());
    }

    /// Related messages always share a label under both schemes (rule 1c).
    #[test]
    fn related_messages_share_labels(cfg in config_strategy(), seed in 0u64..1000) {
        let program = random_program(&cfg, seed).unwrap();
        let limits = LookaheadLimits::disabled(&program);
        let related = RelatedMessages::of(&program);
        let robust = label_messages_robust(&program, &limits).unwrap();
        let section6 = label_messages(&program, &limits)
            .ok()
            .map(systolic::core::LabelingReport::into_labeling);
        for a in program.message_ids() {
            for b in program.message_ids() {
                if related.are_related(a, b) {
                    prop_assert_eq!(robust.label(a), robust.label(b));
                    if let Some(l) = &section6 {
                        prop_assert_eq!(l.label(a), l.label(b));
                    }
                }
            }
        }
    }

    /// THEOREM 1: deadlock-free program + consistent labeling + compatible
    /// assignment with sufficient queues => the run completes.
    #[test]
    fn theorem1_compatible_assignment_never_deadlocks(
        cfg in config_strategy(),
        seed in 0u64..1000,
        extra_queues in 0usize..2,
    ) {
        let program = random_program(&cfg, seed).unwrap();
        let topology = random_topology(&cfg);
        // Give the hardware exactly what assumption (ii) demands (plus an
        // optional surplus), computed from the plan itself: analyze with a
        // generous pool first to learn the requirement, then re-check at
        // the tight count.
        let generous = AnalysisConfig {
            queues_per_interval: program.num_messages().max(1) * 2,
            ..Default::default()
        };
        let probe = Analyzer::for_topology(&topology, &generous).analyze(&program).unwrap();
        let needed = probe.plan().requirements().max_per_interval().max(1);
        let queues = needed + extra_queues;

        let tight = AnalysisConfig { queues_per_interval: queues, ..Default::default() };
        let analysis = Analyzer::for_topology(&topology, &tight).analyze(&program).unwrap();
        let out = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(analysis.into_plan())),
            SimConfig {
                queues_per_interval: queues,
                queue: QueueConfig { capacity: 1, extension: false },
                cost: CostModel::systolic(),
                max_cycles: 1_000_000,
            },
        )
        .unwrap();
        prop_assert!(out.is_completed(), "Theorem 1 violated: {out:?}");
    }

    /// The Section 6 labeling never requires more queues than the trivial
    /// all-equal labeling (it can only split groups, not merge them).
    #[test]
    fn scheme_labeling_requirement_is_no_worse_than_trivial(
        cfg in config_strategy(),
        seed in 0u64..1000,
    ) {
        let program = random_program(&cfg, seed).unwrap();
        let topology = random_topology(&cfg);
        let routes = MessageRoutes::compute(&program, &topology).unwrap();
        let competing = CompetingSets::compute(&routes);
        let limits = LookaheadLimits::disabled(&program);
        let labeling = label_messages_robust(&program, &limits).unwrap();
        let scheme = QueueRequirements::compute(&competing, &labeling);
        let trivial = QueueRequirements::compute(&competing, &Labeling::trivial(&program));
        for (hop, need) in scheme.iter_hops() {
            prop_assert!(need <= trivial.on_hop(hop));
        }
    }
}

/// Regression: the exact random program (5 cells, 8 single-word messages,
/// unclustered, seed 959) on which a direction-blind compatible policy
/// deadlocked — opposite-direction messages shared the interval pools and
/// held-and-waited across intervals. With per-direction sub-pools it
/// completes.
#[test]
fn cross_direction_starvation_regression() {
    let cfg = RandomConfig {
        cells: 5,
        messages: 8,
        max_words: 1,
        max_span: 4,
        clustered: false,
    };
    let program = random_program(&cfg, 959).unwrap();
    let topology = random_topology(&cfg);
    let generous = AnalysisConfig {
        queues_per_interval: program.num_messages().max(1) * 2,
        ..Default::default()
    };
    let probe = Analyzer::for_topology(&topology, &generous)
        .analyze(&program)
        .unwrap();
    let needed = probe.plan().requirements().max_per_interval().max(1);
    let tight = AnalysisConfig {
        queues_per_interval: needed,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &tight)
        .analyze(&program)
        .unwrap();
    let out = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        SimConfig {
            queues_per_interval: needed,
            queue: QueueConfig {
                capacity: 1,
                extension: false,
            },
            cost: CostModel::systolic(),
            max_cycles: 1_000_000,
        },
    )
    .unwrap();
    assert!(out.is_completed(), "{out:?}");
}
