//! End-to-end coverage of non-linear topologies: rings, meshes and custom
//! graphs — the paper's "results apply to arrays of higher dimensionalities
//! and other distributed computing systems using any interconnection
//! topology" (Section 2.1).

use systolic::core::{AnalysisConfig, Analyzer};
use systolic::model::{CellId, Topology};
use systolic::sim::{run_simulation, CompatiblePolicy, SimConfig};
use systolic::workloads::ScheduleBuilder;

fn c(i: u32) -> CellId {
    CellId::new(i)
}

/// A program over a custom graph: a star with centre 0 and leaves 1..4,
/// where every leaf sends to the opposite leaf *through* the centre.
#[test]
fn star_graph_relay_completes() {
    let topology =
        Topology::graph(5, [(c(0), c(1)), (c(0), c(2)), (c(0), c(3)), (c(0), c(4))]).unwrap();

    let mut s = ScheduleBuilder::new(5);
    let m12 = s.message("A", 1, 2).unwrap(); // routes 1 -> 0 -> 2
    let m34 = s.message("B", 3, 4).unwrap(); // routes 3 -> 0 -> 4
    s.transfer_n(m12, 0, 1, 3);
    s.transfer_n(m34, 0, 1, 3);
    let program = s.build().unwrap();

    let config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .unwrap();
    // Both messages relay through the centre but on different intervals.
    let routes = analysis.plan().routes();
    assert_eq!(routes.route(m12).cells(), &[c(1), c(0), c(2)]);
    assert_eq!(routes.route(m34).cells(), &[c(3), c(0), c(4)]);

    let out = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        SimConfig {
            queues_per_interval: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(out.is_completed(), "{out:?}");
    assert_eq!(
        out.stats().words_forwarded,
        6,
        "each word crosses one relay hop"
    );
}

/// Ring workload on the actual ring topology, including the wraparound hop.
#[test]
fn ring_with_wraparound_completes() {
    let program = systolic::workloads::token_ring(5, 4).unwrap();
    let topology = systolic::workloads::ring_topology(5);
    let analysis = Analyzer::for_topology(&topology, &AnalysisConfig::default())
        .analyze(&program)
        .unwrap();
    let out = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        SimConfig::default(),
    )
    .unwrap();
    assert!(out.is_completed());
}

/// Mesh program where a message is routed around a corner by XY routing.
#[test]
fn mesh_corner_turn_routes_and_completes() {
    let topology = Topology::mesh(3, 3);
    let mut s = ScheduleBuilder::new(9);
    // From (0,0)=0 to (2,2)=8: XY goes east along row 0, then south.
    let m = s.message("DIAG", 0, 8).unwrap();
    s.transfer_n(m, 0, 1, 4);
    let program = s.build().unwrap();

    let config = AnalysisConfig {
        queues_per_interval: 1,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .unwrap();
    assert_eq!(
        analysis.plan().route(m).cells(),
        &[c(0), c(1), c(2), c(5), c(8)],
        "XY routing: column-first, then row"
    );
    let out = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        SimConfig::default(),
    )
    .unwrap();
    assert!(out.is_completed());
    // 4 words x 3 forwarding hops.
    assert_eq!(out.stats().words_forwarded, 12);
}

/// Queue occupancy never exceeds configured capacity (high-water check).
#[test]
fn high_water_respects_capacity() {
    let program = systolic::workloads::fig5_p1();
    let topology = Topology::linear(2);
    let out = run_simulation(
        &program,
        &topology,
        Box::new(systolic::sim::GreedyPolicy::new()),
        SimConfig {
            queues_per_interval: 2,
            queue: systolic::sim::QueueConfig {
                capacity: 2,
                extension: false,
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(out.is_completed());
    assert!(out.stats().max_queue_occupancy() <= 2);
    assert!(out.stats().max_queue_occupancy() > 0);
}

/// Torus program exercising both wraparound dimensions: a message that XY
/// routing sends through the column wrap and then the row wrap, verified
/// end-to-end through analysis, the arena simulator, and the batch
/// verifier.
#[test]
fn torus_wraparound_routes_and_completes() {
    let topology = Topology::from_spec("torus:4x4").unwrap();
    let mut s = ScheduleBuilder::new(16);
    // From (0,0)=0 to (3,3)=15: one hop west through the column wrap to
    // (0,3), one hop north through the row wrap to (3,3).
    let m = s.message("WRAP", 0, 15).unwrap();
    s.transfer_n(m, 0, 1, 4);
    let program = s.build().unwrap();

    let config = AnalysisConfig {
        queues_per_interval: 1,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .unwrap();
    assert_eq!(
        analysis.plan().route(m).cells(),
        &[c(0), c(3), c(15)],
        "shorter-way-around XY routing uses both wraps"
    );
    let plan = std::sync::Arc::new(analysis.into_plan());
    let report =
        systolic::sim::verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
    assert!(report.completed);
    assert_eq!(report.words_delivered, 4);

    // The same plan replays identically through a shared batch arena.
    let compiled = systolic::core::CompiledTopology::compile(&topology, &config).into_shared();
    let reports = systolic::sim::verify_batch_compiled(
        [(&program, &plan), (&program, &plan)],
        &compiled,
        SimConfig::default(),
    )
    .unwrap();
    assert!(reports
        .iter()
        .all(|r| r.completed && r.cycles == report.cycles));
}
