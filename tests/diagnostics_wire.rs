//! Acceptance: an unsafe program yields ≥ 1 structured diagnostic —
//! machine-readable code plus offending cell/message ids — end to end
//! through the JSONL wire format, exactly as a `systolicd` client sees it.

use systolic::service::wire::{parse_request, WireResponse};
use systolic::service::{AnalysisService, Json, ServiceConfig};

fn serve_line(line: &str) -> Json {
    let service = AnalysisService::new(ServiceConfig::default());
    let request = parse_request(line, 1).expect("request parses");
    let response = service.submit(request).wait();
    WireResponse::Analysis(&response).to_json()
}

fn diagnostics(json: &Json) -> &[Json] {
    match json.get("diagnostics") {
        Some(Json::Arr(items)) => items,
        other => panic!("expected a diagnostics array, got {other:?}"),
    }
}

#[test]
fn deadlocked_request_reports_structured_diagnostics() {
    let deadlock = "cells 2\nmessage A: c0 -> c1\nmessage B: c1 -> c0\n\
                    program c0 { R(B) W(A) }\nprogram c1 { R(A) W(B) }\n";
    let line = format!(
        r#"{{"id":"unsafe-1","program":{},"topology":"linear:2"}}"#,
        Json::Str(deadlock.to_owned())
    );
    let json = serve_line(&line);
    assert_eq!(json.get("status").and_then(Json::as_str), Some("rejected"));

    let diagnostics = diagnostics(&json);
    assert!(
        !diagnostics.is_empty(),
        "unsafe programs carry >= 1 diagnostic"
    );
    let d = &diagnostics[0];
    assert_eq!(d.get("code").and_then(Json::as_str), Some("E-DEADLOCK"));
    assert_eq!(d.get("severity").and_then(Json::as_str), Some("error"));
    // Offending ids: both cells are stuck, both messages involved.
    let Some(Json::Arr(cells)) = d.get("cells") else {
        panic!("cells array")
    };
    assert_eq!(cells.len(), 2);
    let Some(Json::Arr(messages)) = d.get("messages") else {
        panic!("messages array")
    };
    assert!(!messages.is_empty());
    // The line is valid JSON all the way through.
    assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
}

#[test]
fn infeasible_request_names_the_short_interval_and_competitors() {
    // Fig. 9 shape: two same-label messages on hop c0->c1 need 2 queues,
    // but the request grants only 1.
    let program = "cells 3\nmessage A: c0 -> c1\nmessage B: c0 -> c2\n\
                   program c0 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
                   program c1 { R(A)*4 }\nprogram c2 { R(B)*3 }\n";
    let line = format!(
        r#"{{"id":"unsafe-2","program":{},"topology":"linear:3","queues":1}}"#,
        Json::Str(program.to_owned())
    );
    let json = serve_line(&line);
    assert_eq!(json.get("status").and_then(Json::as_str), Some("rejected"));
    assert_eq!(
        json.get("error_kind").and_then(Json::as_str),
        Some("infeasible")
    );

    let diagnostics = diagnostics(&json);
    let d = diagnostics
        .iter()
        .find(|d| d.get("code").and_then(Json::as_str) == Some("E-INFEASIBLE"))
        .expect("infeasible diagnostic present");
    let Some(Json::Arr(cells)) = d.get("cells") else {
        panic!("cells array")
    };
    assert_eq!(cells.len(), 2, "the short interval's two endpoints");
    let Some(Json::Arr(messages)) = d.get("messages") else {
        panic!("messages array")
    };
    assert_eq!(messages.len(), 2, "both same-label competitors named");
}

#[test]
fn certified_requests_have_no_error_diagnostics() {
    let safe = "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*3 }\nprogram c1 { R(A)*3 }\n";
    let line = format!(
        r#"{{"id":"safe","program":{},"topology":"linear:2"}}"#,
        Json::Str(safe.to_owned())
    );
    let json = serve_line(&line);
    assert_eq!(json.get("status").and_then(Json::as_str), Some("certified"));
    if let Some(Json::Arr(items)) = json.get("diagnostics") {
        for d in items {
            assert_ne!(
                d.get("severity").and_then(Json::as_str),
                Some("error"),
                "certified responses must not carry error diagnostics"
            );
        }
    }
}
