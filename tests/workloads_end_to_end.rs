//! Every workload generator, end-to-end: analyze → plan → simulate under
//! the compatible policy → complete. A few also run on the threaded
//! runtime and under static assignment.

use systolic::core::{AnalysisConfig, Analyzer};
use systolic::model::{Program, Topology};
use systolic::sim::{
    run_simulation, CompatiblePolicy, CostModel, QueueConfig, SimConfig, StaticPolicy,
};
use systolic::threaded::{run_threaded, ControlMode, ThreadedConfig};
use systolic::workloads as wl;

fn all_workloads() -> Vec<(String, Program, Topology)> {
    vec![
        (
            "fir(1,4)".into(),
            wl::fir(1, 4).unwrap(),
            wl::fir_topology(1),
        ),
        (
            "fir(3,12)".into(),
            wl::fir(3, 12).unwrap(),
            wl::fir_topology(3),
        ),
        (
            "fir(5,9)".into(),
            wl::fir(5, 9).unwrap(),
            wl::fir_topology(5),
        ),
        (
            "matvec(1)".into(),
            wl::matvec(1).unwrap(),
            wl::matvec_topology(1),
        ),
        (
            "matvec(5)".into(),
            wl::matvec(5).unwrap(),
            wl::matvec_topology(5),
        ),
        (
            "sort(4,4)".into(),
            wl::odd_even_sort(4, 4).unwrap(),
            wl::sort_topology(4),
        ),
        (
            "sort(7,7)".into(),
            wl::odd_even_sort(7, 7).unwrap(),
            wl::sort_topology(7),
        ),
        (
            "align(2,5)".into(),
            wl::seq_align(2, 5).unwrap(),
            wl::seq_align_topology(2),
        ),
        (
            "align(4,6)".into(),
            wl::seq_align(4, 6).unwrap(),
            wl::seq_align_topology(4),
        ),
        (
            "horner(2,6)".into(),
            wl::horner(2, 6).unwrap(),
            wl::horner_topology(2),
        ),
        (
            "ring(5,3)".into(),
            wl::token_ring(5, 3).unwrap(),
            wl::ring_topology(5),
        ),
        (
            "matmul(2,2,3)".into(),
            wl::mesh_matmul(2, 2, 3).unwrap(),
            wl::matmul_topology(2, 2),
        ),
        (
            "matmul(3,4,5)".into(),
            wl::mesh_matmul(3, 4, 5).unwrap(),
            wl::matmul_topology(3, 4),
        ),
        (
            "wave(2,4,3)".into(),
            wl::wavefront(2, 4, 3).unwrap(),
            wl::wavefront_topology(2, 4),
        ),
        (
            "backsub(1)".into(),
            wl::back_substitution(1).unwrap(),
            wl::back_substitution_topology(1),
        ),
        (
            "backsub(5)".into(),
            wl::back_substitution(5).unwrap(),
            wl::back_substitution_topology(5),
        ),
        ("fig2".into(), wl::fig2_fir(), wl::fig2_topology()),
        ("fig3".into(), wl::fig3_messages(), Topology::linear(4)),
        ("fig6".into(), wl::fig6_cycle(), wl::fig6_topology()),
        ("fig7(5)".into(), wl::fig7(5), wl::fig7_topology()),
    ]
}

#[test]
fn every_workload_completes_under_compatible_assignment() {
    for (name, program, topology) in all_workloads() {
        // Learn the requirement from a generous analysis, then run tight.
        let generous = AnalysisConfig {
            queues_per_interval: program.num_messages().max(1) * 2,
            ..Default::default()
        };
        let probe = Analyzer::for_topology(&topology, &generous)
            .analyze(&program)
            .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        let queues = probe.plan().requirements().max_per_interval().max(1);
        let tight = AnalysisConfig {
            queues_per_interval: queues,
            ..Default::default()
        };
        let analysis = Analyzer::for_topology(&topology, &tight)
            .analyze(&program)
            .unwrap_or_else(|e| panic!("{name}: tight analysis failed: {e}"));
        let out = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(analysis.into_plan())),
            SimConfig {
                queues_per_interval: queues,
                queue: QueueConfig {
                    capacity: 1,
                    extension: false,
                },
                cost: CostModel::systolic(),
                max_cycles: 10_000_000,
            },
        )
        .unwrap();
        assert!(out.is_completed(), "{name} did not complete: {out:?}");
        assert_eq!(
            out.stats().words_delivered as usize,
            program.total_words(),
            "{name}: every word must arrive"
        );
    }
}

#[test]
fn workloads_complete_under_static_assignment_with_dedicated_queues() {
    for (name, program, topology) in all_workloads() {
        // Enough queues to dedicate one per crossing message per interval.
        let queues = program.num_messages().max(1);
        let config = AnalysisConfig {
            queues_per_interval: queues,
            ..Default::default()
        };
        let analysis = Analyzer::for_topology(&topology, &config)
            .analyze(&program)
            .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        let policy = StaticPolicy::new(analysis.plan(), queues)
            .unwrap_or_else(|_| panic!("{name}: static assignment must fit"));
        let out = run_simulation(
            &program,
            &topology,
            Box::new(policy),
            SimConfig {
                queues_per_interval: queues,
                queue: QueueConfig {
                    capacity: 1,
                    extension: false,
                },
                cost: CostModel::systolic(),
                max_cycles: 10_000_000,
            },
        )
        .unwrap();
        assert!(out.is_completed(), "{name} under static: {out:?}");
    }
}

#[test]
fn representative_workloads_complete_on_threads() {
    let cases: Vec<(String, Program, Topology)> = vec![
        (
            "fir(3,8)".into(),
            wl::fir(3, 8).unwrap(),
            wl::fir_topology(3),
        ),
        (
            "backsub(3)".into(),
            wl::back_substitution(3).unwrap(),
            wl::back_substitution_topology(3),
        ),
        (
            "sort(4,4)".into(),
            wl::odd_even_sort(4, 4).unwrap(),
            wl::sort_topology(4),
        ),
        (
            "matmul(2,3,3)".into(),
            wl::mesh_matmul(2, 3, 3).unwrap(),
            wl::matmul_topology(2, 3),
        ),
    ];
    for (name, program, topology) in cases {
        let generous = AnalysisConfig {
            queues_per_interval: program.num_messages().max(1) * 2,
            ..Default::default()
        };
        let probe = Analyzer::for_topology(&topology, &generous)
            .analyze(&program)
            .unwrap();
        let queues = probe.plan().requirements().max_per_interval().max(1);
        let tight = AnalysisConfig {
            queues_per_interval: queues,
            ..Default::default()
        };
        let analysis = Analyzer::for_topology(&topology, &tight)
            .analyze(&program)
            .unwrap();
        let out = run_threaded(
            &program,
            &topology,
            ControlMode::compatible(analysis.into_plan()),
            ThreadedConfig {
                queues_per_interval: queues,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.is_completed(), "{name} on threads: {out:?}");
    }
}

#[test]
fn threaded_static_mode_completes_fig7() {
    let program = wl::fig7(3);
    let topology = wl::fig7_topology();
    // Static needs a dedicated queue per crossing message: interval c2-c3
    // carries A and C (2), interval c3-c4 carries B and C (2).
    let config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .unwrap();
    let out = run_threaded(
        &program,
        &topology,
        ControlMode::dedicated(analysis.into_plan()),
        ThreadedConfig {
            queues_per_interval: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(out.is_completed(), "{out:?}");
}

#[test]
fn strict_alignment_deadlocks_then_buffers_out() {
    let program = wl::seq_align_strict(3, 7).unwrap();
    let topology = wl::seq_align_topology(3);
    // Latch queues: deadlock.
    let out = run_simulation(
        &program,
        &topology,
        Box::new(systolic::sim::GreedyPolicy::new()),
        SimConfig {
            queues_per_interval: 3,
            queue: QueueConfig {
                capacity: 0,
                extension: false,
            },
            cost: CostModel::systolic(),
            max_cycles: 1_000_000,
        },
    )
    .unwrap();
    assert!(out.is_deadlocked());
    // One word of buffering: completes.
    let out = run_simulation(
        &program,
        &topology,
        Box::new(systolic::sim::GreedyPolicy::new()),
        SimConfig {
            queues_per_interval: 3,
            queue: QueueConfig {
                capacity: 1,
                extension: false,
            },
            cost: CostModel::systolic(),
            max_cycles: 1_000_000,
        },
    )
    .unwrap();
    assert!(out.is_completed());
}
