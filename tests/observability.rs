//! End-to-end observability: a 300-request mixed-topology batch through a
//! verifying service must leave behind (a) a metrics exposition carrying
//! analyzer per-stage duration histograms, scheduler fan-out counters, and
//! arena-cache hit/miss counters, and (b) a span log whose stage spans
//! nest under request root spans with trace ids matching the wire
//! responses.

use std::collections::HashSet;

use systolic::obs::names;
use systolic::service::wire::WireResponse;
use systolic::service::{AnalysisRequest, AnalysisService, CacheProvenance, Json, ServiceConfig};
use systolic::workloads::{traffic, TrafficConfig};

const BATCH: usize = 300;

#[test]
fn mixed_topology_batch_exports_metrics_and_nested_spans() {
    let config = ServiceConfig {
        workers: 4,
        verify: true,
        verify_threads: 2,
        ..Default::default()
    };
    let service = AnalysisService::new(config);
    let requests: Vec<AnalysisRequest> = traffic(&TrafficConfig::default(), 42, BATCH)
        .iter()
        .map(AnalysisRequest::from_traffic)
        .collect();
    let responses = service.run_batch(requests);
    assert_eq!(responses.len(), BATCH);

    // Every response carries its own trace id, echoed on the wire.
    let mut trace_ids = HashSet::new();
    for response in &responses {
        assert!(response.trace_id > 0);
        assert!(
            trace_ids.insert(response.trace_id),
            "trace ids are unique per request"
        );
        let json = WireResponse::Analysis(response).to_json();
        assert_eq!(
            json.get("trace").and_then(Json::as_u64),
            Some(response.trace_id),
            "wire response echoes the trace id"
        );
    }

    // (a) The metrics exposition carries the three advertised families.
    let snapshot = service.registry_snapshot();
    let text = snapshot.render_prometheus();
    assert!(
        text.contains("systolic_analyzer_stage_duration_micros_bucket{"),
        "{text}"
    );
    for stage in ["routes", "classification", "labeling", "plan"] {
        assert!(
            text.contains(&format!("stage=\"{stage}\"")),
            "exposition carries the {stage} stage histogram:\n{text}"
        );
    }
    assert!(text.contains("systolic_scheduler_fanouts_total"), "{text}");
    assert!(text.contains("systolic_arena_cache_hits_total"), "{text}");
    assert!(text.contains("systolic_arena_cache_misses_total"), "{text}");
    assert!(
        text.contains("systolic_service_requests_total 300"),
        "{text}"
    );

    // Per-request instruments agree with the batch.
    assert_eq!(
        snapshot.counter_value(names::SERVICE_REQUESTS, &[]),
        BATCH as u64
    );
    assert_eq!(
        snapshot
            .histogram_value(names::SERVICE_HANDLE_DURATION, &[])
            .count,
        BATCH as u64
    );
    // Every certified miss was chased (rejected misses never reach the
    // simulator), and the scheduler fanned at least once.
    let misses = responses
        .iter()
        .filter(|r| r.provenance == CacheProvenance::Miss)
        .count() as u64;
    let chased = responses
        .iter()
        .filter(|r| r.provenance == CacheProvenance::Miss && r.is_certified())
        .count() as u64;
    assert!(misses > 0);
    assert!(chased > 0);
    assert!(snapshot.counter_total(names::SCHED_FANOUTS) >= 1);
    assert_eq!(
        snapshot.counter_total(names::ARENA_CACHE_HITS)
            + snapshot.counter_total(names::ARENA_CACHE_MISSES),
        chased,
        "every certified miss was chased through an arena LRU exactly once"
    );

    // (b) The span log: stage spans nest under request roots, one root per
    // response trace, and stage-span counts match the miss count (hits
    // never run the analyzer).
    let spans = service.obs().tracer().snapshot();
    assert_eq!(service.obs().tracer().dropped(), 0, "ring stayed bounded");
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "request").collect();
    assert_eq!(roots.len(), BATCH, "one request root span per response");
    let root_traces: HashSet<u64> = roots.iter().map(|s| s.trace.0).collect();
    assert_eq!(
        root_traces, trace_ids,
        "request spans and wire responses agree on trace ids"
    );
    let routes_spans = spans.iter().filter(|s| s.name == "routes").count() as u64;
    assert_eq!(
        routes_spans, misses,
        "one analyzer pipeline (stage spans) per cache miss"
    );
    for span in spans.iter().filter(|s| s.name != "request") {
        let root = roots
            .iter()
            .find(|r| r.trace == span.trace)
            .unwrap_or_else(|| panic!("span {:?} has no request root", span.name));
        assert_eq!(
            span.parent,
            Some(root.span),
            "{} spans nest directly under their request root",
            span.name
        );
    }
}
