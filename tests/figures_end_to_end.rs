//! End-to-end reproduction of every figure of the paper, exercised through
//! the public umbrella API (`systolic::…`) exactly as a downstream user
//! would.

use systolic::core::{
    classify, classify_with, AnalysisConfig, Analyzer, CoreError, Label, Lookahead, LookaheadLimits,
};
use systolic::model::Topology;
use systolic::sim::{
    run_simulation, CompatiblePolicy, CostModel, FifoPolicy, GreedyPolicy, QueueConfig, RunOutcome,
    SimConfig, StaticPolicy,
};
use systolic::workloads as wl;

fn sim(queues: usize, capacity: usize) -> SimConfig {
    SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity,
            extension: false,
        },
        cost: CostModel::systolic(),
        max_cycles: 1_000_000,
    }
}

#[test]
fn fig1_systolic_beats_memory_to_memory() {
    let program = wl::fir(3, 32).unwrap();
    let topology = wl::fir_topology(3);
    let mut cycles = Vec::new();
    let mut accesses = Vec::new();
    for cost in [CostModel::systolic(), CostModel::memory_to_memory()] {
        let config2 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(&topology, &config2)
            .analyze(&program)
            .unwrap()
            .into_plan();
        let config = SimConfig { cost, ..sim(2, 1) };
        let out = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(plan)),
            config,
        )
        .unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("FIR completes")
        };
        cycles.push(stats.cycles);
        accesses.push(stats.accesses_per_word());
    }
    assert!(cycles[0] < cycles[1], "systolic is faster: {cycles:?}");
    assert_eq!(accesses[0], 0.0);
    assert_eq!(accesses[1], 4.0, "paper: >= 4 accesses per updated word");
}

#[test]
fn fig2_and_fig4_crossing_off_trace_matches_figure() {
    let program = wl::fig2_fir();
    let c = classify(&program);
    assert!(c.is_deadlock_free());
    let trace = c.trace();
    assert_eq!(trace.steps().len(), 12);
    let doubles: Vec<usize> = trace
        .steps()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.pairs.len() == 2)
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(
        doubles,
        vec![3, 5, 9],
        "Fig. 4: steps 3, 5, 9 cross off two pairs"
    );
    assert_eq!(trace.total_pairs(), 15);

    // Step 1 is the first W(XA)/R(XA) pair, as the paper narrates.
    let first = &trace.steps()[0].pairs[0];
    assert_eq!(program.message(first.message).name(), "XA");
    assert_eq!(first.word, 0);
}

#[test]
fn fig3_static_assignment_gives_each_message_a_queue_sequence() {
    let program = wl::fig3_messages();
    let topology = Topology::linear(4);
    let config = AnalysisConfig {
        queues_per_interval: 4,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .unwrap()
        .into_plan();
    let policy = StaticPolicy::new(&plan, 4).unwrap();
    let a = program.message_id("A").unwrap();
    // A crosses all three intervals and owns a queue on each.
    let route = plan.route(a).clone();
    assert_eq!(route.num_hops(), 3);
    for interval in route.intervals() {
        assert!(policy.queue_of(a, interval).is_some());
    }
    let out = run_simulation(&program, &topology, Box::new(policy), sim(4, 1)).unwrap();
    assert!(out.is_completed());
}

#[test]
fn fig5_classification_ladder() {
    let p1 = wl::fig5_p1();
    let p2 = wl::fig5_p2();
    let p3 = wl::fig5_p3();
    // Without lookahead: all three deadlocked.
    for p in [&p1, &p2, &p3] {
        assert!(!classify(p).is_deadlock_free());
    }
    // P1 needs capacity 2; P2 needs 1; P3 is incurable (rule R1).
    assert!(!classify_with(&p1, &LookaheadLimits::uniform(&p1, 1)).is_deadlock_free());
    assert!(classify_with(&p1, &LookaheadLimits::uniform(&p1, 2)).is_deadlock_free());
    assert!(classify_with(&p2, &LookaheadLimits::uniform(&p2, 1)).is_deadlock_free());
    assert!(!classify_with(&p3, &LookaheadLimits::unbounded(&p3)).is_deadlock_free());
}

#[test]
fn fig6_cycle_is_not_a_deadlock() {
    let program = wl::fig6_cycle();
    assert!(classify(&program).is_deadlock_free());
    let out = run_simulation(
        &program,
        &wl::fig6_topology(),
        Box::new(GreedyPolicy::new()),
        sim(1, 1),
    )
    .unwrap();
    assert!(out.is_completed());
}

#[test]
fn fig7_full_story() {
    for len in [1usize, 3, 7] {
        let program = wl::fig7(len);
        let topology = wl::fig7_topology();

        // Labels 1, 3, 2 (paper, Section 6 worked example).
        let analysis = Analyzer::for_topology(&topology, &AnalysisConfig::default())
            .analyze(&program)
            .unwrap();
        let labels = analysis.plan().labeling();
        assert_eq!(
            labels.label(program.message_id("A").unwrap()),
            Label::integer(1)
        );
        assert_eq!(
            labels.label(program.message_id("B").unwrap()),
            Label::integer(3)
        );
        assert_eq!(
            labels.label(program.message_id("C").unwrap()),
            Label::integer(2)
        );

        // Naive runtimes deadlock; compatible completes.
        for naive in [
            Box::new(FifoPolicy::new()) as Box<dyn systolic::sim::AssignmentPolicy>,
            Box::new(GreedyPolicy::new()),
        ] {
            let out = run_simulation(&program, &topology, naive, sim(1, 1)).unwrap();
            assert!(out.is_deadlocked(), "len {len}: naive policy must deadlock");
        }
        let out = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(analysis.into_plan())),
            sim(1, 1),
        )
        .unwrap();
        assert!(out.is_completed(), "len {len}: compatible must complete");
    }
}

#[test]
fn fig8_fig9_need_two_queues() {
    for (program, topology) in [
        (wl::fig8(), wl::fig8_topology()),
        (wl::fig9(), wl::fig9_topology()),
    ] {
        // One queue: analysis rejects (assumption ii), naive runtime deadlocks.
        let err = Analyzer::for_topology(&topology, &AnalysisConfig::default())
            .analyze(&program)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Infeasible {
                required: 2,
                available: 1,
                ..
            }
        ));
        let out =
            run_simulation(&program, &topology, Box::new(FifoPolicy::new()), sim(1, 1)).unwrap();
        assert!(out.is_deadlocked());

        // Two queues: feasible and completes.
        let config2 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let analysis = Analyzer::for_topology(&topology, &config2)
            .analyze(&program)
            .unwrap();
        let out = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(analysis.into_plan())),
            sim(2, 1),
        )
        .unwrap();
        assert!(out.is_completed());
    }
}

#[test]
fn fig10_lookahead_capacity_ladder_matches_runtime() {
    let program = wl::fig5_p1();
    let topology = Topology::linear(2);
    for cap in [0usize, 1, 2, 4] {
        let limits = LookaheadLimits::uniform(&program, cap);
        let classified_free = classify_with(&program, &limits).is_deadlock_free();
        let out = run_simulation(
            &program,
            &topology,
            Box::new(GreedyPolicy::new()),
            sim(2, cap),
        )
        .unwrap();
        assert_eq!(
            classified_free,
            out.is_completed(),
            "capacity {cap}: classification and runtime must agree"
        );
    }
}

#[test]
fn lookahead_pipeline_reserves_queues_for_colabeled_messages() {
    // P1 under the full pipeline with capacity-2 lookahead: A and B share a
    // label, so 2 queues are required and the compatible policy reserves
    // both at once.
    let program = wl::fig5_p1();
    let topology = Topology::linear(2);
    let lookahead_config = AnalysisConfig {
        lookahead: Lookahead::PerQueueCapacity(2),
        queues_per_interval: 2,
    };
    let analysis = Analyzer::for_topology(&topology, &lookahead_config)
        .analyze(&program)
        .unwrap();
    let out = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        sim(2, 2),
    )
    .unwrap();
    assert!(out.is_completed());
}
