#!/usr/bin/env python3
"""Compare bench artifacts (``BENCH_*.json``) and warn on ratio regressions.

Usage: bench_trend.py PREVIOUS CURRENT

``PREVIOUS`` and ``CURRENT`` are each either a single artifact file or a
directory holding any number of ``BENCH_*.json`` artifacts (the bench
suite writes one per bench: ``BENCH_verify.json``,
``BENCH_incremental.json``, ...). Section names are prefixed with the
artifact's ``bench`` field, so ratios from different artifacts never
collide.

Prints each measured speedup ratio side by side and emits a GitHub
``::warning::`` annotation when one dropped more than 10% against the
previous run. Sections present in only one run are reported as ``new``
(current only) or ``removed`` (previous only) — a freshly added bench is
not a regression. Ratios measured on different ``hw_threads`` are
reported but never warned about — they are not comparable — and a ratio
recorded on a single hardware thread is skipped outright (parallel
speedups are meaningless there). The script never exits nonzero: trends
inform, CI gating stays with the asserted floors inside the benches
themselves.
"""

import glob
import json
import os
import sys

THRESHOLD = 0.9


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def sections(doc):
    """name -> (ratio, hw_threads or None) for every ratio the file has."""
    out = {}
    prefix = doc.get("bench") or "bench"
    if isinstance(doc.get("ratio"), (int, float)):
        out[prefix] = (doc["ratio"], doc.get("hw_threads"))
    for name, section in doc.items():
        if isinstance(section, dict) and isinstance(section.get("ratio"), (int, float)):
            out[f"{prefix}/{name}"] = (section["ratio"], section.get("hw_threads"))
    return out


def gather(path):
    """All sections from one artifact file, or every BENCH_*.json in a
    directory. Unreadable files are reported and skipped."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    else:
        files = [path]
    out = {}
    for name in files:
        try:
            out.update(sections(load(name)))
        except (OSError, ValueError) as error:
            print(f"bench trend: skipping {name}: {error}", file=sys.stderr)
    return out


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS CURRENT", file=sys.stderr)
        return
    previous = gather(sys.argv[1])
    current = gather(sys.argv[2])

    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            ratio, _ = current[name]
            print(f"{name}: new in this run ({ratio:.2f}x), nothing to compare")
            continue
        if name not in current:
            ratio, _ = previous[name]
            print(f"{name}: removed since the previous run (was {ratio:.2f}x)")
            continue
        prev_ratio, prev_hw = previous[name]
        cur_ratio, cur_hw = current[name]
        if 1 in (prev_hw, cur_hw):
            print(f"{name}: skipped: single-core")
            continue
        note = ""
        if prev_hw is not None and cur_hw is not None and prev_hw != cur_hw:
            note = f" (hw_threads {prev_hw} -> {cur_hw}, not comparable)"
        elif cur_ratio < prev_ratio * THRESHOLD:
            note = " [regressed]"
            print(
                f"::warning title=bench ratio regression::{name} speedup "
                f"fell {prev_ratio:.2f}x -> {cur_ratio:.2f}x (>10% drop)"
            )
        print(f"{name}: previous {prev_ratio:.2f}x, current {cur_ratio:.2f}x{note}")


if __name__ == "__main__":
    main()
