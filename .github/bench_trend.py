#!/usr/bin/env python3
"""Compare two BENCH_verify.json files and warn on ratio regressions.

Usage: bench_trend.py PREVIOUS CURRENT

Prints each measured speedup ratio side by side and emits a GitHub
``::warning::`` annotation when one dropped more than 10% against the
previous run's artifact. Ratios measured on different ``hw_threads`` are
reported but never warned about — they are not comparable — and a run
recorded on a single hardware thread is skipped outright (parallel
speedups are meaningless there). The script
never exits nonzero: trends inform, CI gating stays with the asserted
floors inside the bench itself.
"""

import json
import sys

THRESHOLD = 0.9


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def sections(doc):
    """name -> (ratio, hw_threads or None) for every ratio the file has."""
    out = {}
    if isinstance(doc.get("ratio"), (int, float)):
        out["shared_arena"] = (doc["ratio"], None)
    for name in ("parallel", "mixed"):
        section = doc.get(name)
        if isinstance(section, dict) and isinstance(section.get("ratio"), (int, float)):
            out[name] = (section["ratio"], section.get("hw_threads"))
    return out


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS CURRENT", file=sys.stderr)
        return
    try:
        previous = sections(load(sys.argv[1]))
        current = sections(load(sys.argv[2]))
    except (OSError, ValueError) as error:
        print(f"bench trend: could not read inputs: {error}", file=sys.stderr)
        return

    for name in sorted(set(previous) | set(current)):
        if name not in previous or name not in current:
            print(f"{name}: present in only one run, skipping")
            continue
        prev_ratio, prev_hw = previous[name]
        cur_ratio, cur_hw = current[name]
        if 1 in (prev_hw, cur_hw):
            print(f"{name}: skipped: single-core")
            continue
        note = ""
        if prev_hw is not None and cur_hw is not None and prev_hw != cur_hw:
            note = f" (hw_threads {prev_hw} -> {cur_hw}, not comparable)"
        elif cur_ratio < prev_ratio * THRESHOLD:
            note = " [regressed]"
            print(
                f"::warning title=bench ratio regression::{name} speedup "
                f"fell {prev_ratio:.2f}x -> {cur_ratio:.2f}x (>10% drop)"
            )
        print(f"{name}: previous {prev_ratio:.2f}x, current {cur_ratio:.2f}x{note}")


if __name__ == "__main__":
    main()
