//! Beyond 1-D: systolic matrix multiplication on a 2-D mesh.
//!
//! ```text
//! cargo run --example mesh_matmul -- [rows] [cols] [k]
//! ```
//!
//! The paper notes its results "apply to arrays of higher dimensionalities
//! and other distributed computing systems using any interconnection
//! topology" (Section 2.1). This example analyzes and runs the classic
//! skewed matmul dataflow (A east, B south) on a mesh, plus a wavefront
//! sweep, reporting per-interval queue requirements.

use systolic::core::{AnalysisConfig, Analyzer};
use systolic::report::Table;
use systolic::sim::{run_simulation, CompatiblePolicy, RunOutcome, SimConfig};
use systolic::workloads::{matmul_topology, mesh_matmul, wavefront, wavefront_topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().map_or(Ok(3), |a| a.parse())?;
    let cols: usize = args.next().map_or(Ok(3), |a| a.parse())?;
    let k: usize = args.next().map_or(Ok(4), |a| a.parse())?;

    let program = mesh_matmul(rows, cols, k)?;
    let topology = matmul_topology(rows, cols);
    println!(
        "matmul on a {rows}x{cols} mesh, inner dimension {k}: {} messages, {} words",
        program.num_messages(),
        program.total_words()
    );

    let config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config).analyze(&program)?;
    let mut table = Table::new(["interval", "queues required"]);
    for (interval, need) in analysis.plan().requirements().iter_intervals() {
        table.row([interval.to_string(), need.to_string()]);
    }
    println!("{}", table.to_text());

    let outcome = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        SimConfig {
            queues_per_interval: 2,
            ..Default::default()
        },
    )?;
    let RunOutcome::Completed(stats) = outcome else {
        return Err("matmul did not complete".into());
    };
    println!(
        "matmul completed in {} cycles ({} words forwarded between queues)\n",
        stats.cycles, stats.words_forwarded
    );

    let sweep = wavefront(rows, cols, 2)?;
    let sweep_top = wavefront_topology(rows, cols);
    let analysis = Analyzer::for_topology(&sweep_top, &config).analyze(&sweep)?;
    let outcome = run_simulation(
        &sweep,
        &sweep_top,
        Box::new(CompatiblePolicy::new(analysis.into_plan())),
        SimConfig {
            queues_per_interval: 2,
            ..Default::default()
        },
    )?;
    let RunOutcome::Completed(stats) = outcome else {
        return Err("wavefront did not complete".into());
    };
    println!("wavefront (2 sweeps) completed in {} cycles", stats.cycles);
    Ok(())
}
