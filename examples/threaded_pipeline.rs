//! Theorem 1 on real OS threads.
//!
//! ```text
//! cargo run --example threaded_pipeline
//! ```
//!
//! Runs the paper's programs on the `systolic-threaded` runtime: each cell
//! is a thread, queues are real bounded buffers, and the OS scheduler
//! interleaves freely. Compatible assignment completes every time (Theorem
//! 1 is scheduling independent); the naive FIFO discipline deadlocks and is
//! caught by the quiescence watchdog.

use systolic::core::{AnalysisConfig, Analyzer};
use systolic::threaded::{run_threaded, ControlMode, ThreadedConfig, ThreadedOutcome};
use systolic::workloads::{
    fig2_fir, fig2_topology, fig7, fig7_topology, seq_align, seq_align_topology,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 7 under compatible assignment: five runs, five completions,
    // regardless of scheduling.
    let program = fig7(3);
    let topology = fig7_topology();
    // One compilation for all five runs.
    let analyzer = Analyzer::for_topology(&topology, &AnalysisConfig::default());
    for attempt in 1..=5 {
        let plan = analyzer.analyze(&program)?.into_plan();
        let outcome = run_threaded(
            &program,
            &topology,
            ControlMode::compatible(plan),
            ThreadedConfig::default(),
        )?;
        match outcome {
            ThreadedOutcome::Completed {
                words_delivered,
                elapsed,
            } => {
                println!(
                    "fig7 compatible, run {attempt}: {words_delivered} words in {elapsed:.2?}"
                );
            }
            other => println!("fig7 compatible, run {attempt}: unexpected {other:?}"),
        }
    }

    // The same program under FIFO: deadlock, caught by the watchdog.
    let outcome = run_threaded(
        &program,
        &topology,
        ControlMode::Fifo,
        ThreadedConfig::default(),
    )?;
    if let ThreadedOutcome::Deadlocked { blocked } = outcome {
        println!("\nfig7 fifo: watchdog caught a deadlock; blocked threads:");
        for b in blocked {
            println!("  {b}");
        }
    }

    // The FIR filter and a P-NAC-style alignment, on threads.
    let fir = fig2_fir();
    let fir_top = fig2_topology();
    let fir_config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(&fir_top, &fir_config)
        .analyze(&fir)?
        .into_plan();
    let outcome = run_threaded(
        &fir,
        &fir_top,
        ControlMode::compatible(plan),
        ThreadedConfig {
            queues_per_interval: 2,
            ..Default::default()
        },
    )?;
    println!("\nfig2 FIR on threads: {outcome:?}");

    let align = seq_align(4, 16)?;
    let align_top = seq_align_topology(4);
    let align_config = AnalysisConfig {
        queues_per_interval: 3,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(&align_top, &align_config)
        .analyze(&align)?
        .into_plan();
    let outcome = run_threaded(
        &align,
        &align_top,
        ControlMode::compatible(plan),
        ThreadedConfig {
            queues_per_interval: 3,
            ..Default::default()
        },
    )?;
    println!("seq_align(4,16) on threads: {outcome:?}");
    Ok(())
}
