//! A gallery of every deadlock in the paper — and every cure.
//!
//! ```text
//! cargo run --example deadlock_gallery
//! ```
//!
//! Walks Figs. 5–10: program deadlocks (P1–P3), the cycle that is *not* a
//! deadlock (Fig. 6), the three queue-induced deadlocks (Figs. 7–9) and
//! the buffering/lookahead story (Fig. 10).

use systolic::core::{classify, classify_with, LookaheadLimits};
use systolic::model::{side_by_side, Program, Topology};
use systolic::sim::{run_simulation, CostModel, GreedyPolicy, QueueConfig, RunOutcome, SimConfig};
use systolic::workloads as wl;

fn show(
    name: &str,
    program: &Program,
    topology: &Topology,
    queues: usize,
    capacity: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {name} ===");
    println!("{}", side_by_side(program));
    let verdict = if classify(program).is_deadlock_free() {
        "deadlock-free"
    } else {
        "DEADLOCKED"
    };
    println!("crossing-off classification: {verdict}");
    let config = SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity,
            extension: false,
        },
        cost: CostModel::systolic(),
        max_cycles: 1_000_000,
    };
    let outcome = run_simulation(program, topology, Box::new(GreedyPolicy::new()), config)?;
    match outcome {
        RunOutcome::Completed(stats) => {
            println!(
                "run ({queues} queues, capacity {capacity}): completed in {} cycles\n",
                stats.cycles
            );
        }
        RunOutcome::Deadlocked { report, .. } => {
            println!(
                "run ({queues} queues, capacity {capacity}):\n{}",
                report.render(program)
            );
        }
        RunOutcome::CycleLimit(_) => println!("run: hit cycle limit\n"),
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let two = Topology::linear(2);

    show(
        "Fig. 5 P1 (needs 2 words of buffering)",
        &wl::fig5_p1(),
        &two,
        2,
        0,
    )?;
    show(
        "Fig. 5 P1 again, capacity 2: cured",
        &wl::fig5_p1(),
        &two,
        2,
        2,
    )?;
    show(
        "Fig. 5 P2 (write-first exchange)",
        &wl::fig5_p2(),
        &two,
        2,
        0,
    )?;
    show(
        "Fig. 5 P3 (circular dependency, incurable)",
        &wl::fig5_p3(),
        &two,
        2,
        8,
    )?;
    show(
        "Fig. 6 (message cycle, NOT a deadlock)",
        &wl::fig6_cycle(),
        &wl::fig6_topology(),
        1,
        1,
    )?;
    show(
        "Fig. 7 (ordering deadlock under greedy assignment)",
        &wl::fig7(3),
        &wl::fig7_topology(),
        1,
        1,
    )?;
    show(
        "Fig. 8 (interleaved reads, one queue)",
        &wl::fig8(),
        &wl::fig8_topology(),
        1,
        1,
    )?;
    show(
        "Fig. 8 again with two queues: cured",
        &wl::fig8(),
        &wl::fig8_topology(),
        2,
        1,
    )?;
    show(
        "Fig. 9 (interleaved writes, one queue)",
        &wl::fig9(),
        &wl::fig9_topology(),
        1,
        1,
    )?;

    // Fig. 10: the lookahead classification ladder for P1.
    println!("=== Fig. 10: lookahead classification of P1 vs queue capacity ===");
    let p1 = wl::fig5_p1();
    for cap in [0usize, 1, 2, 4] {
        let limits = LookaheadLimits::uniform(&p1, cap);
        let verdict = if classify_with(&p1, &limits).is_deadlock_free() {
            "deadlock-free"
        } else {
            "deadlocked"
        };
        println!("  capacity {cap}: {verdict}");
    }
    Ok(())
}
