//! Quickstart: reproduce the paper's Fig. 7 deadlock and its cure.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the Fig. 7 program (three messages competing for single-queue
//! intervals), shows the naive runtime deadlocking, then runs the paper's
//! pipeline — crossing-off, consistent labeling, compatible queue
//! assignment — through the staged `Analyzer` API and shows the same
//! program completing. Finally analyzes a genuinely deadlocked program to
//! show the structured diagnostics a rejection carries.

use systolic::core::{AnalysisConfig, Analyzer, CompiledTopology};
use systolic::model::parse_program;
use systolic::sim::{run_simulation, CompatiblePolicy, FifoPolicy, RunOutcome, SimConfig};
use systolic::workloads::{fig7, fig7_topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = fig7(3);
    let topology = fig7_topology();
    println!(
        "Fig. 7 program:\n{}",
        systolic::model::side_by_side(&program)
    );

    // 1. A label-blind first-come-first-served runtime deadlocks.
    let naive = run_simulation(
        &program,
        &topology,
        Box::new(FifoPolicy::new()),
        SimConfig::default(),
    )?;
    match &naive {
        RunOutcome::Deadlocked { report, .. } => {
            println!("naive FIFO assignment:\n{}", report.render(&program));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // 2. Compile the topology once, then run the paper's staged analysis:
    //    crossing-off, consistent labeling, queue requirements.
    let compiled = CompiledTopology::compile(&topology, &AnalysisConfig::default()).into_shared();
    let analyzer = Analyzer::new(compiled);
    let session = analyzer.session(&program);
    println!(
        "crossing-off: deadlock-free in {} steps",
        session.classification()?.trace().steps().len()
    );
    println!("labels (consistent, per Section 6):");
    for (m, label) in session.labeling()?.iter() {
        println!("  {} -> {}", program.message(m).name(), label);
    }
    println!(
        "queue requirement: {} per interval",
        session.requirements()?.max_per_interval()
    );

    // 3. ...and compatible assignment completes the run (Theorem 1).
    let plan = session.plan()?.clone();
    let safe = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(plan)),
        SimConfig::default(),
    )?;
    match safe {
        RunOutcome::Completed(stats) => {
            println!(
                "compatible assignment: completed in {} cycles ({} words delivered)",
                stats.cycles, stats.words_delivered
            );
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // 4. A genuinely deadlocked program is rejected with structured
    //    diagnostics: a machine-readable code plus the offending ids.
    let deadlocked = parse_program(
        "cells 2\n\
         message A: c0 -> c1\n\
         message B: c1 -> c0\n\
         program c0 { R(B) W(A) }\n\
         program c1 { R(A) W(B) }\n",
    )?;
    let bad = Analyzer::for_topology(
        &systolic::model::Topology::linear(2),
        &AnalysisConfig::default(),
    );
    let outcome = bad.diagnose(&deadlocked);
    println!("\ncross-reading pair:");
    for diagnostic in outcome.diagnostics() {
        println!(
            "  {} (cells {:?}, messages {:?})",
            diagnostic,
            diagnostic.cell_ids(),
            diagnostic.message_ids()
        );
    }
    Ok(())
}
