//! Quickstart: reproduce the paper's Fig. 7 deadlock and its cure.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the Fig. 7 program (three messages competing for single-queue
//! intervals), shows the naive runtime deadlocking, then runs the paper's
//! pipeline — crossing-off, consistent labeling, compatible queue
//! assignment — and shows the same program completing.

use systolic::core::{analyze, AnalysisConfig};
use systolic::sim::{run_simulation, CompatiblePolicy, FifoPolicy, RunOutcome, SimConfig};
use systolic::workloads::{fig7, fig7_topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = fig7(3);
    let topology = fig7_topology();
    println!("Fig. 7 program:\n{}", systolic::model::side_by_side(&program));

    // 1. A label-blind first-come-first-served runtime deadlocks.
    let naive = run_simulation(
        &program,
        &topology,
        Box::new(FifoPolicy::new()),
        SimConfig::default(),
    )?;
    match &naive {
        RunOutcome::Deadlocked { report, .. } => {
            println!("naive FIFO assignment:\n{}", report.render(&program));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // 2. The paper's analysis produces consistent labels...
    let analysis = analyze(&program, &topology, &AnalysisConfig::default())?;
    println!("labels (consistent, per Section 6):");
    for (m, label) in analysis.plan().labeling().iter() {
        println!("  {} -> {}", program.message(m).name(), label);
    }

    // 3. ...and compatible assignment completes the run (Theorem 1).
    let plan = analysis.into_plan();
    let safe = run_simulation(
        &program,
        &topology,
        Box::new(CompatiblePolicy::new(plan)),
        SimConfig::default(),
    )?;
    match safe {
        RunOutcome::Completed(stats) => {
            println!(
                "compatible assignment: completed in {} cycles ({} words delivered)",
                stats.cycles, stats.words_delivered
            );
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    Ok(())
}
