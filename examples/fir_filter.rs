//! The paper's headline workload: a k-tap FIR filter on a linear array,
//! comparing systolic against memory-to-memory communication (Fig. 1).
//!
//! ```text
//! cargo run --example fir_filter -- [taps] [inputs]
//! ```

use systolic::core::{AnalysisConfig, Analyzer};
use systolic::report::Table;
use systolic::sim::{
    run_simulation, CompatiblePolicy, CostModel, QueueConfig, RunOutcome, SimConfig,
};
use systolic::workloads::{fir, fir_topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let taps: usize = args.next().map_or(Ok(3), |a| a.parse())?;
    let inputs: usize = args.next().map_or(Ok(64), |a| a.parse())?;

    let program = fir(taps, inputs)?;
    let topology = fir_topology(taps);
    println!(
        "{taps}-tap FIR over {inputs} samples: {} cells, {} messages, {} words\n",
        program.num_cells(),
        program.num_messages(),
        program.total_words()
    );

    let config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config).analyze(&program)?;
    println!(
        "analysis: deadlock-free, {} queue(s) per interval required\n",
        analysis.plan().requirements().max_per_interval()
    );

    let mut table = Table::new(["model", "cycles", "memory accesses", "accesses/word"]);
    for (name, cost) in [
        ("systolic", CostModel::systolic()),
        ("memory-to-memory", CostModel::memory_to_memory()),
    ] {
        let plan = analysis.plan().clone();
        let config = SimConfig {
            queues_per_interval: 2,
            queue: QueueConfig::default(),
            cost,
            max_cycles: 100_000_000,
        };
        let outcome = run_simulation(
            &program,
            &topology,
            Box::new(CompatiblePolicy::new(plan)),
            config,
        )?;
        let RunOutcome::Completed(stats) = outcome else {
            return Err(format!("{name} run did not complete").into());
        };
        table.row([
            name.to_owned(),
            stats.cycles.to_string(),
            stats.memory_accesses.to_string(),
            format!("{:.1}", stats.accesses_per_word()),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "The paper's Fig. 1 argument: memory-to-memory needs >= 4 local memory\n\
         accesses per word a cell updates; systolic communication needs none."
    );
    Ok(())
}
