//! # systolic — deadlock avoidance for systolic communication
//!
//! A full reproduction of H.T. Kung, *Deadlock Avoidance for Systolic
//! Communication* (Journal of Complexity **4**, 87–105, 1988), as a Rust
//! workspace. This umbrella crate re-exports the sub-crates:
//!
//! * [`model`] — programs, messages, topologies, routes (Section 2);
//! * [`core`] — the paper's contribution: the crossing-off procedure,
//!   lookahead, consistent labeling, compatible-assignment requirements and
//!   the staged [`core::Analyzer`] pipeline over precompiled topologies
//!   ([`core::CompiledTopology`]), with structured diagnostics
//!   (Sections 3–8);
//! * [`sim`] — a cycle-stepped array simulator with hardware queues, I/O
//!   forwarding, runtime assignment policies and deadlock diagnosis;
//! * [`threaded`] — an OS-thread runtime demonstrating that Theorem 1 is
//!   scheduling independent;
//! * [`workloads`] — the paper's figure programs, classic systolic
//!   algorithm generators and mixed service traffic;
//! * [`report`] — tables and statistics for the experiment harness;
//! * [`service`] — the sharded, cached, batch analysis service with the
//!   `systolicd` JSONL front end;
//! * [`obs`] — the shared observability spine: a lock-light metrics
//!   registry (counters, gauges, log2-bucket histograms) and a span
//!   tracer that the analyzer, simulator, and service all record into,
//!   exported as Prometheus text (`systolicd --metrics-file`) or JSONL
//!   span logs (`--trace-file`).
//!
//! # Quickstart
//!
//! ```
//! use systolic::core::{AnalysisConfig, Analyzer};
//! use systolic::sim::{run_simulation, CompatiblePolicy, FifoPolicy, SimConfig};
//! use systolic::workloads::{fig7, fig7_topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 7: three messages, one queue per interval.
//! let program = fig7(3);
//! let topology = fig7_topology();
//!
//! // A label-blind runtime deadlocks...
//! let naive = run_simulation(
//!     &program,
//!     &topology,
//!     Box::new(FifoPolicy::new()),
//!     SimConfig::default(),
//! )?;
//! assert!(naive.is_deadlocked());
//!
//! // ...while the paper's compile-time labels + compatible assignment complete.
//! let analyzer = Analyzer::for_topology(&topology, &AnalysisConfig::default());
//! let plan = analyzer.analyze(&program)?.into_plan();
//! let safe = run_simulation(
//!     &program,
//!     &topology,
//!     Box::new(CompatiblePolicy::new(plan)),
//!     SimConfig::default(),
//! )?;
//! assert!(safe.is_completed());
//! # Ok(())
//! # }
//! ```
//!
//! # Verifying at scale
//!
//! Batch replays share one [`sim::SimArena`]: the immutable world
//! (topology + config) is built once and the run state is reset in place
//! per replay. With a precompiled topology, routes come from the shared
//! closure and certified plans travel as `Arc`s. On a multi-core node,
//! [`sim::VerifyScheduler`] fans a **heterogeneous** batch — `(program,
//! compiled topology, plan)` triples over any mix of fabrics — across N
//! worker threads, each holding a budgeted LRU of warm arenas keyed by
//! compiled-topology fingerprint ([`sim::ArenaBudget`]: fixed, auto, or
//! bytes), with work-stealing and reports merged back into input order —
//! byte-identical to the sequential path per topology group.
//! [`sim::VerifyPool`] stays as the single-topology adapter. The serving
//! layer (`ServiceConfig::verify_threads`) coalesces the chases of a
//! batch window into one scheduler fan-out. Tuning: one scheduler thread
//! per spare core — replays are CPU-bound and share no mutable state, so
//! throughput scales until the batch runs out of plans to steal — and an
//! arena budget matching the distinct topologies each worker sees.
//!
//! ```
//! use std::sync::Arc;
//! use systolic::core::{AnalysisConfig, Analyzer, CompiledTopology};
//! use systolic::sim::{verify_batch_compiled, SimConfig};
//! use systolic::workloads::{fig7, fig7_topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled =
//!     CompiledTopology::compile(&fig7_topology(), &AnalysisConfig::default()).into_shared();
//! let analyzer = Analyzer::new(Arc::clone(&compiled));
//! let batch: Vec<_> = (2..5)
//!     .map(|reps| {
//!         let program = fig7(reps);
//!         let plan = Arc::new(analyzer.analyze(&program)?.into_plan());
//!         Ok::<_, systolic::core::CoreError>((program, plan))
//!     })
//!     .collect::<Result<_, _>>()?;
//! let reports = verify_batch_compiled(
//!     batch.iter().map(|(program, plan)| (program, plan)),
//!     &compiled,
//!     SimConfig::default(),
//! )?;
//! assert!(reports.iter().all(|r| r.completed));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use systolic_core as core;
pub use systolic_model as model;
pub use systolic_obs as obs;
pub use systolic_report as report;
pub use systolic_service as service;
pub use systolic_sim as sim;
pub use systolic_threaded as threaded;
pub use systolic_workloads as workloads;
