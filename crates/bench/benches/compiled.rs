//! Criterion bench for the shared-compilation win (acceptance target of
//! the `Analyzer` redesign): a batch of ≥ 64 cache-miss requests that all
//! name one topology must run ≥ 1.3× faster when the misses share one
//! [`CompiledTopology`] than when each request compiles its own — the
//! difference between `Analyzer::new(shared)` in a loop and the legacy
//! per-call `analyze` shape.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
use systolic_model::{CellId, Program, ProgramBuilder, Topology};

const BATCH: usize = 64;
const CELLS: usize = 64;

/// A 64-cell chorded ring: enough diameter that graph routing (BFS)
/// does real work per message, which is exactly what the compiled route
/// closure amortizes.
fn topology() -> Topology {
    let mut edges = Vec::new();
    for i in 0..CELLS {
        edges.push((CellId::new(i as u32), CellId::new(((i + 1) % CELLS) as u32)));
        if i % 4 == 0 {
            edges.push((
                CellId::new(i as u32),
                CellId::new(((i + 19) % CELLS) as u32),
            ));
        }
    }
    Topology::graph(CELLS, edges).expect("chorded ring builds")
}

/// A deadlock-free program with `CELLS` messages between pseudo-random
/// far-apart pairs: every cell accesses its messages in ascending global
/// message order, so the crossing-off procedure consumes them
/// sequentially. Distinct per `seed`.
fn program(seed: u64) -> Program {
    let mut builder = ProgramBuilder::new(CELLS);
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    for k in 0..CELLS {
        let sender = next(CELLS);
        // A far receiver: at least a quarter of the ring away.
        let receiver = (sender + CELLS / 4 + next(CELLS / 2)) % CELLS;
        let name = format!("M{k}");
        builder
            .message(&name, sender as u32, receiver as u32)
            .expect("message declares");
        let words = 1 + next(2);
        builder
            .write_n(sender as u32, &name, words)
            .expect("writes append");
        builder
            .read_n(receiver as u32, &name, words)
            .expect("reads append");
    }
    builder.build().expect("bench programs are valid")
}

fn batch() -> Vec<Program> {
    (0..BATCH as u64).map(program).collect()
}

fn config() -> AnalysisConfig {
    AnalysisConfig {
        queues_per_interval: 64,
        ..Default::default()
    }
}

fn run_per_request(topology: &Topology, config: &AnalysisConfig, programs: &[Program]) -> usize {
    // Each request compiles its own topology — the legacy `analyze` shape.
    programs
        .iter()
        .filter(|p| Analyzer::for_topology(topology, config).analyze(p).is_ok())
        .count()
}

fn run_shared(topology: &Topology, config: &AnalysisConfig, programs: &[Program]) -> usize {
    // One compilation, shared by every miss of the batch.
    let analyzer = Analyzer::new(CompiledTopology::compile(topology, config));
    programs
        .iter()
        .filter(|p| analyzer.analyze(p).is_ok())
        .count()
}

fn bench_batch(c: &mut Criterion) {
    let topology = topology();
    let config = config();
    let programs = batch();
    let mut group = c.benchmark_group("compiled_topology");
    group.sample_size(10);
    group.bench_function(format!("per_request_batch{BATCH}"), |b| {
        b.iter(|| run_per_request(&topology, &config, std::hint::black_box(&programs)));
    });
    group.bench_function(format!("shared_batch{BATCH}"), |b| {
        b.iter(|| run_shared(&topology, &config, std::hint::black_box(&programs)));
    });
    group.finish();
}

/// The acceptance ratio, measured explicitly and asserted: sharing one
/// `CompiledTopology` across a 64-request cache-miss batch must beat
/// per-request compilation by ≥ 1.3×.
fn shared_vs_per_request_ratio(_c: &mut Criterion) {
    let topology = topology();
    let config = config();
    let programs = batch();
    const ROUNDS: usize = 6;

    // Both paths certify the same number of programs (sanity first).
    let certified = run_shared(&topology, &config, &programs);
    assert_eq!(certified, run_per_request(&topology, &config, &programs));
    assert!(
        certified >= BATCH / 2,
        "bench programs should mostly certify"
    );

    let per_request_started = Instant::now();
    for _ in 0..ROUNDS {
        assert_eq!(run_per_request(&topology, &config, &programs), certified);
    }
    let per_request = per_request_started.elapsed();

    let shared_started = Instant::now();
    for _ in 0..ROUNDS {
        assert_eq!(run_shared(&topology, &config, &programs), certified);
    }
    let shared = shared_started.elapsed();

    let ratio = per_request.as_secs_f64() / shared.as_secs_f64().max(f64::EPSILON);
    println!(
        "compiled_shared_vs_per_request           per-request {per_request:>12?}   \
         shared {shared:>12?}   ratio {ratio:>6.1}x (target >= 1.3x)"
    );
    assert!(
        ratio >= 1.3,
        "shared compilation must be at least 1.3x faster than per-request \
         compilation over a {BATCH}-request batch, measured {ratio:.2}x"
    );
}

criterion_group!(benches, bench_batch, shared_vs_per_request_ratio);
criterion_main!(benches);
