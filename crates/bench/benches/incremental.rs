//! Criterion bench for the incremental-reanalysis acceptance target:
//! applying a small append-only edit script to a *warm*
//! [`IncrementalSession`] must beat a from-scratch `Analyzer::diagnose`
//! of the edited program — same precompiled topology, so the measured win
//! is stage reuse (resumed crossing-off, reused routes/competing sets,
//! early-stopped labeling), not topology compilation.
//!
//! Shape: a 16×16 mesh (256 cells) running a 255-message relay pipeline
//! (cell *k* interleaves `R(M_{k-1})`/`W(M_k)` word by word — the classic
//! systolic wavefront), where labeling dominates analysis time but every
//! message is labeled within the first wave, so the warm session's
//! early-stopping Section 6 driver skips the long post-label tail that a
//! from-scratch run must cross in full. The edit appends one balanced
//! write/read word to the first 4 relay messages (8 ops, 5 dirty cells,
//! dirty ratio ≈ 0.02). Each warm round re-seeds its session *outside*
//! the timed region, so the timer sees exactly one `apply`.
//!
//! Parity is asserted before timing (identical plan fingerprints and
//! diagnostics vs from-scratch), the measured ratio is recorded in
//! `BENCH_incremental.json` at the workspace root, and the floor is
//! asserted afterwards: ≥ 3× warm-session speedup in full mode, ≥ 2×
//! under `SYSTOLIC_BENCH_QUICK=1` (headroom for noisy shared runners).
//! All arms are timed by their per-round minimum, the noise-robust
//! statistic.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use systolic_core::{
    AnalysisConfig, Analyzer, CompiledTopology, EditOp, IncrementalConfig, IncrementalSession,
};
use systolic_model::{Op, Program, ProgramBuilder, Topology};

/// Mesh side: 16×16 = 256 cells.
const SIDE: usize = 16;
const CELLS: usize = SIDE * SIDE;
/// Relay messages: M_k carries cell k -> cell k+1.
const CHAIN: usize = CELLS - 1;
/// Words per relay message (wavefront rounds).
const WORDS: usize = 12;
/// Messages extended by the edit batch (one balanced W/R pair each).
const APPENDED_PAIRS: usize = 4;

fn topology() -> Topology {
    Topology::mesh(SIDE, SIDE)
}

/// The base program: a relay pipeline. Cell `k`'s program interleaves
/// `R(M_{k-1})` and `W(M_k)` one word at a time, so crossing-off sweeps
/// a wavefront down the chain: every message is crossed (and therefore
/// labeled) within the first round, and the remaining `WORDS - 1` rounds
/// assign no further labels — exactly the shape the early-stopping
/// labeling driver exploits.
fn base_program() -> Program {
    let mut builder = ProgramBuilder::new(CELLS);
    for k in 0..CHAIN {
        builder
            .message(format!("M{k}"), k as u32, k as u32 + 1)
            .expect("message declares");
    }
    for _round in 0..WORDS {
        for k in 0..CHAIN {
            let name = format!("M{k}");
            builder.write_n(k as u32, &name, 1).expect("writes append");
            builder
                .read_n(k as u32 + 1, &name, 1)
                .expect("reads append");
        }
    }
    builder.build().expect("bench program is valid")
}

/// The edit batch: one more relay word on each of the first
/// `APPENDED_PAIRS` messages — 8 ops over 5 distinct cells, dirty
/// ratio ≈ 0.02.
fn edit_batch(program: &Program) -> Vec<EditOp> {
    (0..APPENDED_PAIRS)
        .flat_map(|k| {
            let m = program
                .message_id(&format!("M{k}"))
                .expect("message exists");
            let decl = program.message(m);
            [
                EditOp::AppendOp {
                    cell: decl.sender(),
                    op: Op::write(m),
                },
                EditOp::AppendOp {
                    cell: decl.receiver(),
                    op: Op::read(m),
                },
            ]
        })
        .collect()
}

fn config() -> AnalysisConfig {
    AnalysisConfig {
        // Plenty of hardware queues: this bench is about analysis
        // speed, not queue feasibility.
        queues_per_interval: 64,
        ..Default::default()
    }
}

fn seed_session(compiled: &Arc<CompiledTopology>, program: &Arc<Program>) -> IncrementalSession {
    IncrementalSession::seed(
        Analyzer::new(Arc::clone(compiled)),
        Arc::clone(program),
        IncrementalConfig::default(),
    )
}

fn bench_incremental(c: &mut Criterion) {
    let compiled = CompiledTopology::compile(&topology(), &config()).into_shared();
    let program = Arc::new(base_program());
    let edits = edit_batch(&program);

    // The edited program, as committed by one apply — the from-scratch
    // arm's input.
    let mut session = seed_session(&compiled, &program);
    let _ = session.apply(&edits).expect("edit batch applies");
    let edited = Arc::clone(session.program());

    let analyzer = Analyzer::new(Arc::clone(&compiled));
    let mut group = c.benchmark_group("incremental_edit");
    group.sample_size(10);
    group.bench_function(format!("from_scratch_{CHAIN}relay"), |b| {
        b.iter(|| analyzer.diagnose(std::hint::black_box(&edited)));
    });
    // The vendored criterion has no `iter_batched`, so this arm times
    // seed + apply together; `incremental_acceptance_ratio` below times
    // the pure warm apply by seeding outside its timer.
    group.bench_function(format!("seed_plus_apply_{CHAIN}relay"), |b| {
        b.iter(|| {
            let mut session = seed_session(&compiled, &program);
            session.apply(std::hint::black_box(&edits)).unwrap()
        });
    });
    group.finish();
}

/// The acceptance ratio, measured explicitly, asserted, and recorded in
/// `BENCH_incremental.json`.
fn incremental_acceptance_ratio(_c: &mut Criterion) {
    let quick = std::env::var("SYSTOLIC_BENCH_QUICK").is_ok_and(|v| v != "0");
    let rounds: usize = if quick { 4 } else { 6 };
    let target = if quick { 2.0 } else { 3.0 };

    let compiled = CompiledTopology::compile(&topology(), &config()).into_shared();
    let program = Arc::new(base_program());
    let edits = edit_batch(&program);
    let analyzer = Analyzer::new(Arc::clone(&compiled));

    // Parity first: the warm apply must commit exactly the outcome a
    // from-scratch diagnose of the edited program produces.
    let mut session = seed_session(&compiled, &program);
    let report = session.apply(&edits).expect("edit batch applies");
    assert!(
        report.fallback.is_none(),
        "dirty ratio must stay incremental"
    );
    assert!(report.resumed_classification, "appends resume crossing-off");
    assert!(report.reused_routes && report.reused_competing);
    let edited = Arc::clone(session.program());
    let fresh = analyzer.diagnose(&edited);
    let (a, b) = (
        session.outcome().result().expect("bench program certifies"),
        fresh.result().expect("bench program certifies"),
    );
    assert_eq!(
        a.plan().fingerprint(),
        b.plan().fingerprint(),
        "incremental and from-scratch plans must be byte-identical"
    );
    assert_eq!(session.outcome().diagnostics(), fresh.diagnostics());

    // From-scratch arm: full diagnose of the edited program on the shared
    // precompiled topology.
    let scratch_time = (0..rounds)
        .map(|_| {
            let started = Instant::now();
            std::hint::black_box(analyzer.diagnose(std::hint::black_box(&edited)));
            started.elapsed()
        })
        .min()
        .expect("rounds >= 1");

    // Warm arm: each round re-seeds outside the timer, then times one
    // apply of the same batch.
    let incremental_time = (0..rounds)
        .map(|_| {
            let mut session = seed_session(&compiled, &program);
            let started = Instant::now();
            let _ = std::hint::black_box(session.apply(std::hint::black_box(&edits)).unwrap());
            started.elapsed()
        })
        .min()
        .expect("rounds >= 1");

    let ratio = scratch_time.as_secs_f64() / incremental_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "incremental_warm_apply_vs_from_scratch   scratch {scratch_time:>12?}   \
         warm {incremental_time:>12?}   ratio {ratio:>6.1}x (target >= {target}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"incremental_edit\",\n  \"mesh\": \"{SIDE}x{SIDE}\",\n  \
         \"relay_messages\": {CHAIN},\n  \"words_per_message\": {WORDS},\n  \
         \"appended_ops\": {},\n  \"rounds\": {rounds},\n  \
         \"dirty_cells\": {},\n  \"total_cells\": {},\n  \
         \"from_scratch_min_secs\": {:.6},\n  \"warm_apply_min_secs\": {:.6},\n  \
         \"ratio\": {:.2},\n  \"target_ratio\": {target}\n}}\n",
        edits.len(),
        report.dirty_cells,
        report.total_cells,
        scratch_time.as_secs_f64(),
        incremental_time.as_secs_f64(),
        ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }

    assert!(
        ratio >= target,
        "a warm incremental apply of {} appended ops must be at least {target}x faster \
         than a from-scratch analysis of the {CHAIN}-message relay program, measured {ratio:.2}x",
        edits.len()
    );
}

criterion_group!(benches, bench_incremental, incremental_acceptance_ratio);
criterion_main!(benches);
