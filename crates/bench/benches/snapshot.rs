//! Criterion bench for the snapshot warm-start acceptance target: a
//! freshly constructed [`AnalysisService`] that imports a snapshot of a
//! previous run's plan cache must serve the same 300-request mixed
//! working set at least 5× faster end-to-end than a cold service that
//! has to analyze every distinct program from scratch (≥ 2× under
//! `SYSTOLIC_BENCH_QUICK=1`, headroom for noisy shared runners).
//!
//! Shape: half the stream is the standard daemon traffic mix
//! ([`traffic`]: hot kernels plus small parameter sweeps), half is a
//! 150-program library of heavyweight random kernels whose analyses —
//! and, with `verify` on, simulator chases — cost milliseconds each, so
//! the work a snapshot amortizes dominates per-request queue overhead,
//! as it does for real workloads. A donor service serves the working
//! set once and exports its snapshot; the warm arm then times *import +
//! replay* on a fresh service (the import is inside the timer — it is
//! the price of warming), while the cold arm times a fresh service
//! replaying the same stream with an empty cache. Request construction
//! happens outside the timers in both arms: the bench measures serving,
//! not traffic generation.
//!
//! Parity is asserted before timing: the warmed service must answer
//! every request with the same fingerprint and the same outcome as the
//! donor, and every answer must carry warm-cache provenance. The
//! measured ratio is recorded in `BENCH_snapshot.json` at the workspace
//! root (with `hw_threads` noted, since both arms use the same worker
//! pool) and the floor is asserted after the file is written. All arms
//! are timed by their per-round minimum, the noise-robust statistic.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use systolic_service::{AnalysisRequest, AnalysisService, CacheProvenance, ServiceConfig};
use systolic_workloads::{random_program, random_topology, traffic, RandomConfig, TrafficConfig};

/// Working-set size (requests per replay).
const REQUESTS: usize = 300;
/// Distinct heavyweight programs in the library half of the stream.
const HEAVY_POOL: usize = 150;
/// Traffic stream seed.
const SEED: u64 = 97;

/// The heavyweight library kernels: large clustered random programs
/// (24-cell arrays, 200 messages, up to 16 words each) whose analyses
/// cost milliseconds — the plans a snapshot is worth persisting.
fn heavy_config() -> RandomConfig {
    RandomConfig {
        cells: 24,
        messages: 200,
        max_words: 16,
        max_span: 6,
        clustered: true,
    }
}

/// The 300-request mixed working set: half the standard daemon traffic
/// stream (hot kernels plus small parameter sweeps, the `systolicd gen`
/// mix), half a [`HEAVY_POOL`]-program library of large kernels — the
/// long tail a daemon accumulates and a restart would otherwise have to
/// reanalyze from scratch.
fn working_set() -> Vec<AnalysisRequest> {
    let mut requests: Vec<AnalysisRequest> = traffic(&TrafficConfig::default(), SEED, REQUESTS / 2)
        .iter()
        .map(AnalysisRequest::from_traffic)
        .collect();
    let heavy = heavy_config();
    let topology = random_topology(&heavy);
    for i in 0..REQUESTS / 2 {
        let pool_seed = SEED + (i % HEAVY_POOL) as u64;
        let program = random_program(&heavy, pool_seed).expect("random program builds");
        let mut request =
            AnalysisRequest::new(format!("heavy/{pool_seed}"), program, topology.clone());
        // Generously queued: the bench measures analysis cost, not
        // queue feasibility.
        request.config.queues_per_interval = 64;
        requests.push(request);
    }
    requests
}

fn config() -> ServiceConfig {
    ServiceConfig {
        // Chase every miss with a simulator replay: a cold start pays
        // analysis + verification per distinct program, a warm start
        // restores the already-verified plans from the snapshot.
        verify: true,
        ..ServiceConfig::default()
    }
}

fn bench_snapshot(c: &mut Criterion) {
    let requests = working_set();
    let donor = AnalysisService::new(config());
    let _ = donor.run_batch(requests.clone());
    let snapshot = donor.export_snapshot();

    let mut group = c.benchmark_group("snapshot_warm_start");
    group.sample_size(10);
    group.bench_function(format!("cold_{REQUESTS}req"), |b| {
        b.iter(|| {
            let service = AnalysisService::new(config());
            std::hint::black_box(service.run_batch(std::hint::black_box(requests.clone())))
        });
    });
    group.bench_function(format!("warm_{REQUESTS}req"), |b| {
        b.iter(|| {
            let service = AnalysisService::new(config());
            service
                .import_snapshot(std::hint::black_box(&snapshot))
                .expect("snapshot imports");
            std::hint::black_box(service.run_batch(std::hint::black_box(requests.clone())))
        });
    });
    group.finish();
}

/// The acceptance ratio, measured explicitly, asserted, and recorded in
/// `BENCH_snapshot.json`.
fn snapshot_acceptance_ratio(_c: &mut Criterion) {
    let quick = std::env::var("SYSTOLIC_BENCH_QUICK").is_ok_and(|v| v != "0");
    let rounds: usize = if quick { 2 } else { 3 };
    let target = if quick { 2.0 } else { 5.0 };
    let hw_threads = std::thread::available_parallelism().map_or(0, usize::from);

    // The donor run: serve the working set cold once, export the
    // snapshot the warm arm starts from.
    let requests = working_set();
    let donor = AnalysisService::new(config());
    let donor_responses = donor.run_batch(requests.clone());
    let snapshot = donor.export_snapshot();
    let donor_stats = donor.stats();

    // Parity first: a warmed service must answer every request with the
    // donor's exact outcome, and serve all of them from the warm cache.
    let warmed = AnalysisService::new(config());
    let report = warmed.import_snapshot(&snapshot).expect("snapshot imports");
    assert_eq!(
        report.plans as usize,
        donor.cache_entries(),
        "every cached plan must survive the round trip"
    );
    let warm_responses = warmed.run_batch(requests.clone());
    assert_eq!(donor_responses.len(), warm_responses.len());
    for (cold, warm) in donor_responses.iter().zip(&warm_responses) {
        assert_eq!(cold.fingerprint, warm.fingerprint, "requests must agree");
        assert_eq!(
            warm.provenance,
            CacheProvenance::Warm,
            "every warmed answer must come from the snapshot"
        );
        match (cold.outcome.as_ref(), warm.outcome.as_ref()) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.plan.fingerprint(),
                b.plan.fingerprint(),
                "warmed plans must be byte-identical"
            ),
            (Err(a), Err(b)) => assert_eq!(a.diagnostics, b.diagnostics),
            _ => panic!("cold and warm outcomes must agree"),
        }
    }

    // Cold arm: a fresh service replays the stream with an empty cache.
    // Request construction stays outside the timer in both arms.
    let cold_time = (0..rounds)
        .map(|_| {
            let service = AnalysisService::new(config());
            let batch = requests.clone();
            let started = Instant::now();
            std::hint::black_box(service.run_batch(batch));
            started.elapsed()
        })
        .min()
        .expect("rounds >= 1");

    // Warm arm: import + replay, both inside the timer — the import is
    // the price of warming and the bench claims end-to-end speedup.
    let warm_time = (0..rounds)
        .map(|_| {
            let service = AnalysisService::new(config());
            let batch = requests.clone();
            let started = Instant::now();
            service
                .import_snapshot(std::hint::black_box(&snapshot))
                .expect("snapshot imports");
            std::hint::black_box(service.run_batch(batch));
            started.elapsed()
        })
        .min()
        .expect("rounds >= 1");

    let ratio = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "snapshot_warm_start_vs_cold   cold {cold_time:>12?}   warm {warm_time:>12?}   \
         ratio {ratio:>6.1}x (target >= {target}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"snapshot_warm_start\",\n  \"requests\": {REQUESTS},\n  \
         \"seed\": {SEED},\n  \"distinct_plans\": {},\n  \"snapshot_bytes\": {},\n  \
         \"rounds\": {rounds},\n  \"hw_threads\": {hw_threads},\n  \
         \"cold_min_secs\": {:.6},\n  \"warm_min_secs\": {:.6},\n  \
         \"ratio\": {:.2},\n  \"target_ratio\": {target}\n}}\n",
        donor_stats.cache.misses,
        snapshot.len(),
        cold_time.as_secs_f64(),
        warm_time.as_secs_f64(),
        ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }

    assert!(
        ratio >= target,
        "a snapshot-warmed service must replay the {REQUESTS}-request working set at least \
         {target}x faster end-to-end than a cold start, measured {ratio:.2}x"
    );
}

criterion_group!(benches, bench_snapshot, snapshot_acceptance_ratio);
criterion_main!(benches);
