//! Criterion benches for the cycle-stepped simulator (F1, F7): systolic vs
//! memory-to-memory cost models, the policy comparison on Fig. 7, and
//! arena reuse (one `SimArena` across a stream of replays vs a fresh
//! `Simulation` per run).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use systolic_core::{AnalysisConfig, Analyzer, CommPlan};
use systolic_sim::{
    run_simulation, AssignmentPolicy, CompatiblePolicy, CostModel, FifoPolicy, QueueConfig,
    SimArena, SimConfig,
};
use systolic_workloads as wl;

fn config(queues: usize, capacity: usize, cost: CostModel) -> SimConfig {
    SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity,
            extension: false,
        },
        cost,
        max_cycles: 10_000_000,
    }
}

fn compatible(
    program: &systolic_model::Program,
    topology: &systolic_model::Topology,
    queues: usize,
) -> Box<dyn AssignmentPolicy> {
    let config = AnalysisConfig {
        queues_per_interval: queues,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(topology, &config)
        .analyze(program)
        .expect("analyzes")
        .into_plan();
    Box::new(CompatiblePolicy::new(plan))
}

/// F1: the communication-model comparison at simulator level.
fn bench_comm_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_comm_models");
    group.sample_size(20);
    for n in [64usize, 256] {
        let program = wl::fir(3, n).expect("valid");
        let topology = wl::fir_topology(3);
        group.bench_with_input(BenchmarkId::new("systolic", n), &program, |b, p| {
            b.iter(|| {
                let policy = compatible(p, &topology, 2);
                run_simulation(p, &topology, policy, config(2, 1, CostModel::systolic()))
                    .expect("sim builds")
                    .is_completed()
            });
        });
        group.bench_with_input(BenchmarkId::new("mem2mem", n), &program, |b, p| {
            b.iter(|| {
                let policy = compatible(p, &topology, 2);
                run_simulation(
                    p,
                    &topology,
                    policy,
                    config(2, 1, CostModel::memory_to_memory()),
                )
                .expect("sim builds")
                .is_completed()
            });
        });
    }
    group.finish();
}

/// F7: deadlock detection (fifo) vs completion (compatible).
fn bench_fig7_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_policies");
    group.sample_size(20);
    for len in [8usize, 32] {
        let program = wl::fig7(len);
        let topology = wl::fig7_topology();
        group.bench_with_input(BenchmarkId::new("fifo_deadlock", len), &program, |b, p| {
            b.iter(|| {
                run_simulation(
                    p,
                    &topology,
                    Box::new(FifoPolicy::new()),
                    config(1, 1, CostModel::systolic()),
                )
                .expect("sim builds")
                .is_deadlocked()
            });
        });
        group.bench_with_input(BenchmarkId::new("compatible", len), &program, |b, p| {
            b.iter(|| {
                let policy = compatible(p, &topology, 1);
                run_simulation(p, &topology, policy, config(1, 1, CostModel::systolic()))
                    .expect("sim builds")
                    .is_completed()
            });
        });
    }
    group.finish();
}

/// Simulator throughput on larger structured workloads.
fn bench_workload_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_sim");
    group.sample_size(10);
    let cases: Vec<(&str, systolic_model::Program, systolic_model::Topology)> = vec![
        (
            "fir(8,256)",
            wl::fir(8, 256).expect("valid"),
            wl::fir_topology(8),
        ),
        (
            "wavefront(4,4,8)",
            wl::wavefront(4, 4, 8).expect("valid"),
            wl::wavefront_topology(4, 4),
        ),
        (
            "seq_align(8,64)",
            wl::seq_align(8, 64).expect("valid"),
            wl::seq_align_topology(8),
        ),
    ];
    for (name, program, topology) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let policy = compatible(&program, &topology, 8);
                run_simulation(
                    &program,
                    &topology,
                    policy,
                    config(8, 2, CostModel::systolic()),
                )
                .expect("sim builds")
                .is_completed()
            });
        });
    }
    group.finish();
}

/// Arena reuse on a replay stream: one `SimArena` resetting in place vs a
/// fresh `Simulation` (world + pools + routing) per run.
fn bench_arena_replay(c: &mut Criterion) {
    let topology = wl::fig7_topology();
    let a_config = AnalysisConfig::default();
    let items: Vec<(systolic_model::Program, Arc<CommPlan>)> = (2..10)
        .map(|reps| {
            let program = wl::fig7(reps);
            let plan = Analyzer::for_topology(&topology, &a_config)
                .analyze(&program)
                .expect("fig7 certifies")
                .into_plan();
            (program, Arc::new(plan))
        })
        .collect();
    let sim = config(1, 1, CostModel::systolic());

    let mut group = c.benchmark_group("arena_replay");
    group.sample_size(20);
    group.bench_function("fresh_simulation_per_run", |b| {
        b.iter(|| {
            items
                .iter()
                .filter(|(program, plan)| {
                    run_simulation(
                        program,
                        &topology,
                        Box::new(CompatiblePolicy::new(Arc::clone(plan))),
                        sim,
                    )
                    .expect("sim builds")
                    .is_completed()
                })
                .count()
        });
    });
    group.bench_function("shared_arena", |b| {
        b.iter(|| {
            let mut arena = SimArena::from_topology(&topology, sim);
            items
                .iter()
                .filter(|(program, plan)| {
                    let mut policy = CompatiblePolicy::new(Arc::clone(plan));
                    arena
                        .run(program, &mut policy)
                        .expect("sim builds")
                        .is_completed()
                })
                .count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_comm_models,
    bench_fig7_policies,
    bench_workload_sim,
    bench_arena_replay
);
criterion_main!(benches);
