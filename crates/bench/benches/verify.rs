//! Criterion bench for the shared-arena batch verification win (acceptance
//! target of the `SimArena` refactor): replaying a 64-plan batch through
//! one arena (`verify_batch_compiled`) must beat per-run setup
//! (`verify_plan` in a loop, which routes every message and builds fresh
//! queue pools per call) by ≥ 1.5×. The measured ratio is asserted and
//! recorded in `BENCH_verify.json` at the workspace root.
//!
//! `SYSTOLIC_BENCH_QUICK=1` shrinks the round count and relaxes the
//! asserted floor to 1.2× (headroom for noisy shared CI runners); full
//! mode asserts the 1.5× acceptance target. Both arms are timed by their
//! per-round minimum, the noise-robust statistic.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use systolic_core::{AnalysisConfig, Analyzer, CommPlan, CompiledTopology};
use systolic_model::{CellId, Program, ProgramBuilder, Topology};
use systolic_sim::{verify_batch_compiled, verify_plan, SimConfig, VerifyReport};

const BATCH: usize = 64;
const CELLS: usize = 256;
const MESSAGES: usize = 8;

/// A 256-cell chorded ring — a large fabric, the service shape where one
/// topology serves many small requests. Per-run setup scales with the
/// *fabric* (topology clone, one BFS per message, pool construction for
/// every interval); the shared arena pays it once per batch.
fn topology() -> Topology {
    let mut edges = Vec::new();
    for i in 0..CELLS {
        edges.push((CellId::new(i as u32), CellId::new(((i + 1) % CELLS) as u32)));
        if i % 4 == 0 {
            edges.push((CellId::new(i as u32), CellId::new(((i + 19) % CELLS) as u32)));
        }
    }
    Topology::graph(CELLS, edges).expect("chorded ring builds")
}

/// A small deadlock-free program: `MESSAGES` messages between
/// pseudo-random far-apart pairs (every cell accesses its messages in
/// ascending global order, so crossing-off consumes them sequentially).
/// Distinct per `seed`.
fn program(seed: u64) -> Program {
    let mut builder = ProgramBuilder::new(CELLS);
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    for k in 0..MESSAGES {
        let sender = next(CELLS);
        // A nearby receiver (a few hops): replays are short, so the
        // per-replay *setup* — not the cycle loop — is what the two bench
        // arms disagree on.
        let receiver = (sender + 4 + next(12)) % CELLS;
        let name = format!("M{k}");
        builder.message(&name, sender as u32, receiver as u32).expect("message declares");
        builder.write_n(sender as u32, &name, 1).expect("writes append");
        builder.read_n(receiver as u32, &name, 1).expect("reads append");
    }
    builder.build().expect("bench programs are valid")
}

struct Batch {
    compiled: Arc<CompiledTopology>,
    topology: Topology,
    items: Vec<(Program, Arc<CommPlan>)>,
    sim: SimConfig,
}

fn certified_batch() -> Batch {
    let topology = topology();
    let config = AnalysisConfig { queues_per_interval: MESSAGES, ..Default::default() };
    let compiled = CompiledTopology::compile(&topology, &config).into_shared();
    let analyzer = Analyzer::new(Arc::clone(&compiled));
    let items: Vec<(Program, Arc<CommPlan>)> = (0..BATCH as u64 * 2)
        .map(program)
        .filter_map(|p| {
            let plan = analyzer.analyze(&p).ok()?.into_plan();
            Some((p, Arc::new(plan)))
        })
        .take(BATCH)
        .collect();
    assert_eq!(items.len(), BATCH, "enough bench programs certify");
    Batch { compiled, topology, items, sim: SimConfig::default() }
}

fn run_per_plan(batch: &Batch) -> Vec<VerifyReport> {
    // The pre-arena shape: every replay routes its messages over the
    // topology and builds fresh queue pools and run state.
    batch
        .items
        .iter()
        .map(|(program, plan)| {
            verify_plan(program, &batch.topology, plan, batch.sim).expect("setup succeeds")
        })
        .collect()
}

fn run_shared_arena(batch: &Batch) -> Vec<VerifyReport> {
    // One arena for the whole batch: pools and state reset in place.
    verify_batch_compiled(
        batch.items.iter().map(|(p, plan)| (p, plan)),
        &batch.compiled,
        batch.sim,
    )
    .expect("setup succeeds")
}

fn bench_verify(c: &mut Criterion) {
    let batch = certified_batch();
    let mut group = c.benchmark_group("verify_batch");
    group.sample_size(10);
    group.bench_function(format!("per_run_setup_batch{BATCH}"), |b| {
        b.iter(|| run_per_plan(std::hint::black_box(&batch)));
    });
    group.bench_function(format!("shared_arena_batch{BATCH}"), |b| {
        b.iter(|| run_shared_arena(std::hint::black_box(&batch)));
    });
    group.finish();
}

/// The acceptance ratio, measured explicitly, asserted, and recorded in
/// `BENCH_verify.json`.
fn shared_arena_vs_per_run_ratio(_c: &mut Criterion) {
    let batch = certified_batch();
    let quick = std::env::var("SYSTOLIC_BENCH_QUICK").is_ok_and(|v| v != "0");
    let rounds: usize = if quick { 4 } else { 6 };
    // The full-mode assert is the acceptance target; the quick-mode smoke
    // (CI, noisy shared runners, millisecond-scale timings) keeps wide
    // headroom while still catching a regression to parity.
    let target = if quick { 1.2 } else { 1.5 };

    // Parity first: both paths must report identical verification results.
    let per_run = run_per_plan(&batch);
    let shared = run_shared_arena(&batch);
    assert_eq!(per_run.len(), shared.len());
    for (a, b) in per_run.iter().zip(&shared) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.words_delivered, b.words_delivered);
    }
    let completed = shared.iter().filter(|r| r.completed).count();
    assert_eq!(completed, BATCH, "certified plans complete (Theorem 1)");

    // Per-round minimum: the noise-robust statistic for wall-clock
    // comparisons on shared machines.
    let min_time = |f: &dyn Fn() -> Vec<VerifyReport>| {
        (0..rounds)
            .map(|_| {
                let started = Instant::now();
                std::hint::black_box(f());
                started.elapsed()
            })
            .min()
            .expect("rounds >= 1")
    };
    let per_run_time = min_time(&|| run_per_plan(&batch));
    let shared_time = min_time(&|| run_shared_arena(&batch));

    let ratio = per_run_time.as_secs_f64() / shared_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "verify_shared_arena_vs_per_run           per-run {per_run_time:>12?}   \
         shared {shared_time:>12?}   ratio {ratio:>6.1}x (target >= {target}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"verify_batch\",\n  \"batch\": {BATCH},\n  \"rounds\": {rounds},\n  \
         \"per_run_min_secs\": {:.6},\n  \"shared_arena_min_secs\": {:.6},\n  \"ratio\": {:.2},\n  \
         \"target_ratio\": {target}\n}}\n",
        per_run_time.as_secs_f64(),
        shared_time.as_secs_f64(),
        ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }

    assert!(
        ratio >= target,
        "shared-arena batch verification must be at least {target}x faster than \
         per-run setup over a {BATCH}-plan batch, measured {ratio:.2}x"
    );
}

criterion_group!(benches, bench_verify, shared_arena_vs_per_run_ratio);
criterion_main!(benches);
