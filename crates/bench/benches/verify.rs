//! Criterion bench for the batch-verification acceptance targets:
//!
//! 1. **Shared arena** (PR 4): replaying a 64-plan batch through one
//!    arena (`verify_batch_compiled`) must beat per-run setup
//!    (`verify_plan` in a loop, which routes every message and builds
//!    fresh queue pools per call) by ≥ 1.5×.
//! 2. **Parallel pool** (PR 5): fanning a 256-plan batch over a
//!    [`VerifyPool`] of 4 arenas must beat the sequential
//!    `verify_batch_compiled` by ≥ 2× — on hardware with ≥ 4 cores. The
//!    asserted floor scales down with `available_parallelism` (a 1-core
//!    runner can only assert that the pool's coordination overhead is
//!    bounded), and the actual core count is recorded alongside the
//!    ratio.
//! 3. **Mixed-topology scheduler** (PR 6): one persistent
//!    [`VerifyScheduler`] fanning an interleaved mesh+torus 256-plan
//!    batch out in a single heterogeneous dispatch must at least match
//!    splitting the batch by topology into per-topology [`VerifyPool`]s
//!    rebuilt per call (the pre-scheduler service shape, which pays cold
//!    arenas and one fan-out per topology every time).
//!
//! All ratios are measured explicitly, asserted, and recorded in
//! `BENCH_verify.json` at the workspace root.
//!
//! `SYSTOLIC_BENCH_QUICK=1` shrinks the round count and relaxes the
//! asserted floors (shared arena 1.2×, parallel ≥ sequential) — headroom
//! for noisy shared CI runners; full mode asserts the acceptance
//! targets. All arms are timed by their per-round minimum, the
//! noise-robust statistic.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use systolic_core::{AnalysisConfig, Analyzer, CommPlan, CompiledTopology};
use systolic_model::{CellId, Program, ProgramBuilder, Topology};
use systolic_sim::{
    verify_batch_compiled, verify_plan, ArenaBudget, SimConfig, VerifyPool, VerifyReport,
    VerifyScheduler,
};

const BATCH: usize = 64;
const PARALLEL_BATCH: usize = 256;
const PARALLEL_THREADS: usize = 4;
const CELLS: usize = 256;
const MESSAGES: usize = 8;
const MIXED_BATCH: usize = 256;
const MIXED_THREADS: usize = 4;
/// Mesh/torus side for the mixed-topology batch (8×8 = 64 cells each).
const MIXED_SIDE: usize = 8;

/// A 256-cell chorded ring — a large fabric, the service shape where one
/// topology serves many small requests. Per-run setup scales with the
/// *fabric* (topology clone, one BFS per message, pool construction for
/// every interval); the shared arena pays it once per batch.
fn topology() -> Topology {
    let mut edges = Vec::new();
    for i in 0..CELLS {
        edges.push((CellId::new(i as u32), CellId::new(((i + 1) % CELLS) as u32)));
        if i % 4 == 0 {
            edges.push((
                CellId::new(i as u32),
                CellId::new(((i + 19) % CELLS) as u32),
            ));
        }
    }
    Topology::graph(CELLS, edges).expect("chorded ring builds")
}

/// A small deadlock-free program: `MESSAGES` messages between
/// pseudo-random far-apart pairs (every cell accesses its messages in
/// ascending global order, so crossing-off consumes them sequentially).
/// Distinct per `seed`.
fn program(seed: u64) -> Program {
    program_on(CELLS, seed)
}

fn program_on(cells: usize, seed: u64) -> Program {
    let mut builder = ProgramBuilder::new(cells);
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    for k in 0..MESSAGES {
        let sender = next(cells);
        // A nearby receiver (a few hops): replays are short, so the
        // per-replay *setup* — not the cycle loop — is what the bench
        // arms disagree on.
        let receiver = (sender + 4 + next(12)) % cells;
        let name = format!("M{k}");
        builder
            .message(&name, sender as u32, receiver as u32)
            .expect("message declares");
        builder
            .write_n(sender as u32, &name, 1)
            .expect("writes append");
        builder
            .read_n(receiver as u32, &name, 1)
            .expect("reads append");
    }
    builder.build().expect("bench programs are valid")
}

struct Batch {
    compiled: Arc<CompiledTopology>,
    topology: Topology,
    items: Vec<(Program, Arc<CommPlan>)>,
    sim: SimConfig,
}

fn certified_batch(size: usize) -> Batch {
    let topology = topology();
    let config = AnalysisConfig {
        queues_per_interval: MESSAGES,
        ..Default::default()
    };
    let compiled = CompiledTopology::compile(&topology, &config).into_shared();
    let analyzer = Analyzer::new(Arc::clone(&compiled));
    let items: Vec<(Program, Arc<CommPlan>)> = (0..size as u64 * 2)
        .map(program)
        .filter_map(|p| {
            let plan = analyzer.analyze(&p).ok()?.into_plan();
            Some((p, Arc::new(plan)))
        })
        .take(size)
        .collect();
    assert_eq!(items.len(), size, "enough bench programs certify");
    Batch {
        compiled,
        topology,
        items,
        sim: SimConfig::default(),
    }
}

fn run_per_plan(batch: &Batch) -> Vec<VerifyReport> {
    // The pre-arena shape: every replay routes its messages over the
    // topology and builds fresh queue pools and run state.
    batch
        .items
        .iter()
        .map(|(program, plan)| {
            verify_plan(program, &batch.topology, plan, batch.sim).expect("setup succeeds")
        })
        .collect()
}

fn run_shared_arena(batch: &Batch) -> Vec<VerifyReport> {
    // One arena for the whole batch: pools and state reset in place.
    verify_batch_compiled(
        batch.items.iter().map(|(p, plan)| (p, plan)),
        &batch.compiled,
        batch.sim,
    )
    .expect("setup succeeds")
}

fn run_pool(pool: &mut VerifyPool, batch: &Batch) -> Vec<VerifyReport> {
    // N arenas, work-stealing over the batch, reports in input order.
    pool.verify_batch(batch.items.iter().map(|(p, plan)| (p, plan)))
        .expect("setup succeeds")
}

/// An interleaved mesh/torus batch — the service shape the scheduler was
/// built for: one coalescing window holding chases against several
/// topologies at once.
type MixedItem = (Program, Arc<CompiledTopology>, Arc<CommPlan>);

struct MixedBatch {
    items: Vec<MixedItem>,
    sim: SimConfig,
}

fn mixed_batch(size: usize) -> MixedBatch {
    let topologies = [
        Topology::mesh(MIXED_SIDE, MIXED_SIDE),
        Topology::torus(MIXED_SIDE, MIXED_SIDE),
    ];
    let per_topology = size / topologies.len();
    let config = AnalysisConfig {
        queues_per_interval: MESSAGES,
        ..Default::default()
    };
    let mut streams: Vec<Vec<MixedItem>> = Vec::new();
    for topology in &topologies {
        let compiled = CompiledTopology::compile(topology, &config).into_shared();
        let analyzer = Analyzer::new(Arc::clone(&compiled));
        let cells = topology.num_cells();
        let stream: Vec<_> = (0..per_topology as u64 * 2)
            .map(|seed| program_on(cells, seed))
            .filter_map(|p| {
                let plan = analyzer.analyze(&p).ok()?.into_plan();
                Some((p, Arc::clone(&compiled), Arc::new(plan)))
            })
            .take(per_topology)
            .collect();
        assert_eq!(stream.len(), per_topology, "enough mixed programs certify");
        streams.push(stream);
    }
    // Round-robin interleave: consecutive items alternate topologies, the
    // worst case for any per-topology batching that relies on runs.
    let mut iters: Vec<_> = streams.into_iter().map(Vec::into_iter).collect();
    let mut items = Vec::with_capacity(per_topology * iters.len());
    for _ in 0..per_topology {
        for iter in &mut iters {
            items.push(iter.next().expect("streams are equal length"));
        }
    }
    MixedBatch {
        items,
        sim: SimConfig::default(),
    }
}

/// The pre-scheduler service shape: split the window by topology, build a
/// fresh per-topology [`VerifyPool`] each call (cold arenas), fan out once
/// per topology, and scatter the reports back to input order.
fn run_per_topology_pools(batch: &MixedBatch) -> Vec<VerifyReport> {
    let mut groups: Vec<(u128, Vec<usize>)> = Vec::new();
    for (i, (_, compiled, _)) in batch.items.iter().enumerate() {
        let key = compiled.fingerprint();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, indices)) => indices.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut reports: Vec<Option<VerifyReport>> = (0..batch.items.len()).map(|_| None).collect();
    for (_, indices) in &groups {
        let compiled = Arc::clone(&batch.items[indices[0]].1);
        let mut pool = VerifyPool::from_compiled(compiled, batch.sim, MIXED_THREADS);
        let group_reports = pool
            .verify_batch(indices.iter().map(|&i| {
                let (program, _, plan) = &batch.items[i];
                (program, plan)
            }))
            .expect("setup succeeds");
        for (&i, report) in indices.iter().zip(group_reports) {
            reports[i] = Some(report);
        }
    }
    reports
        .into_iter()
        .map(|r| r.expect("every item verified"))
        .collect()
}

fn run_scheduler(scheduler: &mut VerifyScheduler, batch: &MixedBatch) -> Vec<VerifyReport> {
    // One heterogeneous fan-out, warm arenas, reports in input order.
    scheduler
        .verify_batch(batch.items.iter().map(|(p, c, plan)| (p, c, plan)))
        .expect("setup succeeds")
}

fn bench_verify(c: &mut Criterion) {
    let batch = certified_batch(BATCH);
    let mut group = c.benchmark_group("verify_batch");
    group.sample_size(10);
    group.bench_function(format!("per_run_setup_batch{BATCH}"), |b| {
        b.iter(|| run_per_plan(std::hint::black_box(&batch)));
    });
    group.bench_function(format!("shared_arena_batch{BATCH}"), |b| {
        b.iter(|| run_shared_arena(std::hint::black_box(&batch)));
    });
    group.finish();
}

fn bench_parallel_verify(c: &mut Criterion) {
    let batch = certified_batch(PARALLEL_BATCH);
    let mut pool =
        VerifyPool::from_compiled(Arc::clone(&batch.compiled), batch.sim, PARALLEL_THREADS);
    let mut group = c.benchmark_group("parallel_verify");
    group.sample_size(10);
    group.bench_function(format!("sequential_arena_batch{PARALLEL_BATCH}"), |b| {
        b.iter(|| run_shared_arena(std::hint::black_box(&batch)));
    });
    group.bench_function(
        format!("pool{PARALLEL_THREADS}_batch{PARALLEL_BATCH}"),
        |b| {
            b.iter(|| run_pool(&mut pool, std::hint::black_box(&batch)));
        },
    );
    group.finish();
}

fn bench_mixed_verify(c: &mut Criterion) {
    let batch = mixed_batch(MIXED_BATCH);
    let mut scheduler = VerifyScheduler::new(batch.sim, MIXED_THREADS, ArenaBudget::Auto);
    let mut group = c.benchmark_group("mixed_topology_verify");
    group.sample_size(10);
    group.bench_function(
        format!("per_topology_pools{MIXED_THREADS}_batch{MIXED_BATCH}"),
        |b| {
            b.iter(|| run_per_topology_pools(std::hint::black_box(&batch)));
        },
    );
    group.bench_function(
        format!("scheduler{MIXED_THREADS}_batch{MIXED_BATCH}"),
        |b| {
            b.iter(|| run_scheduler(&mut scheduler, std::hint::black_box(&batch)));
        },
    );
    group.finish();
}

/// Per-round minimum: the noise-robust statistic for wall-clock
/// comparisons on shared machines.
fn min_time(rounds: usize, mut f: impl FnMut() -> Vec<VerifyReport>) -> std::time::Duration {
    (0..rounds)
        .map(|_| {
            let started = Instant::now();
            std::hint::black_box(f());
            started.elapsed()
        })
        .min()
        .expect("rounds >= 1")
}

/// The acceptance ratios, measured explicitly, asserted, and recorded in
/// `BENCH_verify.json`.
fn verify_acceptance_ratios(_c: &mut Criterion) {
    let quick = std::env::var("SYSTOLIC_BENCH_QUICK").is_ok_and(|v| v != "0");
    let rounds: usize = if quick { 4 } else { 6 };
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- Shared arena vs per-run setup (64-plan batch). ----
    // The full-mode assert is the acceptance target; the quick-mode smoke
    // (CI, noisy shared runners, millisecond-scale timings) keeps wide
    // headroom while still catching a regression to parity.
    let batch = certified_batch(BATCH);
    let shared_target = if quick { 1.2 } else { 1.5 };

    // Parity first: both paths must report identical verification results.
    let per_run = run_per_plan(&batch);
    let shared = run_shared_arena(&batch);
    assert_eq!(per_run, shared, "shared arena must match per-run reports");
    let completed = shared.iter().filter(|r| r.completed).count();
    assert_eq!(completed, BATCH, "certified plans complete (Theorem 1)");

    let per_run_time = min_time(rounds, || run_per_plan(&batch));
    let shared_time = min_time(rounds, || run_shared_arena(&batch));
    let shared_ratio = per_run_time.as_secs_f64() / shared_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "verify_shared_arena_vs_per_run           per-run {per_run_time:>12?}   \
         shared {shared_time:>12?}   ratio {shared_ratio:>6.1}x (target >= {shared_target}x)"
    );

    // ---- Parallel pool vs sequential arena (256-plan batch). ----
    // The 2x acceptance floor presumes >= 4 cores (GitHub's standard
    // runners); fewer cores can at most assert the pool's coordination
    // overhead is bounded, so the floor degrades with the hardware and
    // the JSON records how many threads the ratio was measured on.
    let parallel_batch = certified_batch(PARALLEL_BATCH);
    let parallel_target = match (quick, hw_threads) {
        (_, 1) => 0.7,
        (true, _) => 1.0,
        (false, hw) if hw >= 4 => 2.0,
        (false, _) => 1.2,
    };
    let mut pool = VerifyPool::from_compiled(
        Arc::clone(&parallel_batch.compiled),
        parallel_batch.sim,
        PARALLEL_THREADS,
    );

    // Parity again: the pool must be byte-identical to the sequential
    // path, reports in input order.
    let sequential = run_shared_arena(&parallel_batch);
    let pooled = run_pool(&mut pool, &parallel_batch);
    assert_eq!(
        pooled, sequential,
        "pool must match sequential reports in order"
    );

    let sequential_time = min_time(rounds, || run_shared_arena(&parallel_batch));
    let pool_time = min_time(rounds, || run_pool(&mut pool, &parallel_batch));
    let parallel_ratio = sequential_time.as_secs_f64() / pool_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "verify_pool{PARALLEL_THREADS}_vs_sequential              seq {sequential_time:>12?}   \
         pool {pool_time:>12?}   ratio {parallel_ratio:>6.1}x \
         (target >= {parallel_target}x on {hw_threads} hw threads)"
    );

    // ---- Mixed-topology scheduler vs per-topology pools (PR 6). ----
    // The baseline splits each interleaved window by topology and rebuilds
    // a cold per-topology pool every call; the persistent scheduler keeps
    // its arenas warm and dispatches the whole window in one fan-out. On a
    // 1-core or quick run the floor only bounds coordination overhead; a
    // full multi-core run must show the scheduler at least breaking even.
    let mixed = mixed_batch(MIXED_BATCH);
    let mixed_target = if quick || hw_threads == 1 { 0.8 } else { 1.0 };
    let mut scheduler = VerifyScheduler::new(mixed.sim, MIXED_THREADS, ArenaBudget::Auto);

    // Parity: the heterogeneous fan-out must be byte-identical to the
    // split-by-topology reference, reports in input order.
    let split = run_per_topology_pools(&mixed);
    let scheduled = run_scheduler(&mut scheduler, &mixed);
    assert_eq!(
        scheduled, split,
        "scheduler must match per-topology pools in input order"
    );

    let split_time = min_time(rounds, || run_per_topology_pools(&mixed));
    let scheduler_time = min_time(rounds, || run_scheduler(&mut scheduler, &mixed));
    let mixed_ratio = split_time.as_secs_f64() / scheduler_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "verify_scheduler{MIXED_THREADS}_vs_split_pools       split {split_time:>12?}   \
         sched {scheduler_time:>12?}   ratio {mixed_ratio:>6.1}x \
         (target >= {mixed_target}x on {hw_threads} hw threads)"
    );

    let json = format!(
        "{{\n  \"bench\": \"verify_batch\",\n  \"batch\": {BATCH},\n  \"rounds\": {rounds},\n  \
         \"per_run_min_secs\": {:.6},\n  \"shared_arena_min_secs\": {:.6},\n  \"ratio\": {:.2},\n  \
         \"target_ratio\": {shared_target},\n  \"parallel\": {{\n    \
         \"batch\": {PARALLEL_BATCH},\n    \"threads\": {PARALLEL_THREADS},\n    \
         \"hw_threads\": {hw_threads},\n    \"sequential_min_secs\": {:.6},\n    \
         \"pool_min_secs\": {:.6},\n    \"ratio\": {:.2},\n    \
         \"target_ratio\": {parallel_target}\n  }},\n  \"mixed\": {{\n    \
         \"batch\": {MIXED_BATCH},\n    \"threads\": {MIXED_THREADS},\n    \
         \"hw_threads\": {hw_threads},\n    \"per_topology_min_secs\": {:.6},\n    \
         \"scheduler_min_secs\": {:.6},\n    \"ratio\": {:.2},\n    \
         \"target_ratio\": {mixed_target}\n  }}\n}}\n",
        per_run_time.as_secs_f64(),
        shared_time.as_secs_f64(),
        shared_ratio,
        sequential_time.as_secs_f64(),
        pool_time.as_secs_f64(),
        parallel_ratio,
        split_time.as_secs_f64(),
        scheduler_time.as_secs_f64(),
        mixed_ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }

    assert!(
        shared_ratio >= shared_target,
        "shared-arena batch verification must be at least {shared_target}x faster than \
         per-run setup over a {BATCH}-plan batch, measured {shared_ratio:.2}x"
    );
    assert!(
        parallel_ratio >= parallel_target,
        "a {PARALLEL_THREADS}-thread VerifyPool must measure at least {parallel_target}x \
         the sequential arena over a {PARALLEL_BATCH}-plan batch on {hw_threads} hw \
         threads, measured {parallel_ratio:.2}x"
    );
    assert!(
        mixed_ratio >= mixed_target,
        "one {MIXED_THREADS}-thread VerifyScheduler fan-out must measure at least \
         {mixed_target}x the split-by-topology pools over a {MIXED_BATCH}-plan mixed \
         batch on {hw_threads} hw threads, measured {mixed_ratio:.2}x"
    );
}

criterion_group!(
    benches,
    bench_verify,
    bench_parallel_verify,
    bench_mixed_verify,
    verify_acceptance_ratios
);
criterion_main!(benches);
