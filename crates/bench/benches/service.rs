//! Criterion benches for the analysis service: cold vs. warm cache and
//! shard-count scaling, plus an explicit warm/cold throughput ratio
//! (acceptance target: warm ≥ 5× cold on repeated requests).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use systolic_service::{AnalysisRequest, AnalysisService, CacheConfig, ServiceConfig};
use systolic_workloads::{fir, fir_topology};

const BATCH: usize = 64;

/// 64 distinct production-sized FIR kernels (a parameter sweep, so a cold
/// cache analyzes every one and a warm cache serves every one).
fn batch() -> Vec<AnalysisRequest> {
    let mut requests = Vec::with_capacity(BATCH);
    for taps in 2usize..6 {
        for i in 0..BATCH / 4 {
            let inputs = 32 + i;
            let program = fir(taps, inputs).expect("fir builds");
            let mut request =
                AnalysisRequest::new(format!("fir/{taps}x{inputs}"), program, fir_topology(taps));
            request.config.queues_per_interval = 2;
            requests.push(request);
        }
    }
    requests
}

fn service(shards: usize) -> AnalysisService {
    AnalysisService::new(ServiceConfig {
        workers: 4,
        cache: CacheConfig {
            shards,
            capacity_per_shard: 1024,
        },
        queue_depth: 64,
        ..Default::default()
    })
}

/// Cold cache: every iteration starts a fresh service, so every request is
/// a miss (thread spawn cost is shared by all 64 requests of the batch).
fn bench_cold(c: &mut Criterion) {
    let requests = batch();
    let mut group = c.benchmark_group("service_cold");
    group.sample_size(10);
    group.bench_function(format!("batch{BATCH}"), |b| {
        b.iter(|| {
            let service = service(8);
            service
                .run_batch(std::hint::black_box(requests.clone()))
                .len()
        });
    });
    group.finish();
}

/// Warm cache: the service outlives iterations and the batch was already
/// run once, so every request is a pure fingerprint + cache hit.
fn bench_warm(c: &mut Criterion) {
    let requests = batch();
    let mut group = c.benchmark_group("service_warm");
    group.sample_size(20);
    for shards in [1usize, 8] {
        let service = service(shards);
        let _ = service.run_batch(requests.clone()); // fill the cache
        group.bench_with_input(
            BenchmarkId::new(format!("batch{BATCH}"), format!("{shards}shard")),
            &service,
            |b, service| {
                b.iter(|| {
                    service
                        .run_batch(std::hint::black_box(requests.clone()))
                        .len()
                });
            },
        );
    }
    group.finish();
}

/// The acceptance ratio, measured explicitly: repeated batches against a
/// warm cache must run ≥ 5× faster than cold-cache analysis of the same
/// batches.
fn warm_vs_cold_ratio(_c: &mut Criterion) {
    let requests = batch();
    const ROUNDS: usize = 8;

    let cold_started = Instant::now();
    for _ in 0..ROUNDS {
        let service = service(8);
        assert_eq!(service.run_batch(requests.clone()).len(), BATCH);
    }
    let cold = cold_started.elapsed();

    let service = service(8);
    let _ = service.run_batch(requests.clone());
    let warm_started = Instant::now();
    for _ in 0..ROUNDS {
        assert_eq!(service.run_batch(requests.clone()).len(), BATCH);
    }
    let warm = warm_started.elapsed();

    let ratio = cold.as_secs_f64() / warm.as_secs_f64().max(f64::EPSILON);
    println!(
        "service_warm_vs_cold                     cold {cold:>12?}   warm {warm:>12?}   \
         ratio {ratio:>6.1}x (target >= 5x)"
    );
    assert!(
        ratio >= 5.0,
        "warm-cache throughput must be at least 5x cold-cache, measured {ratio:.1}x"
    );
}

criterion_group!(benches, bench_cold, bench_warm, warm_vs_cold_ratio);
criterion_main!(benches);
