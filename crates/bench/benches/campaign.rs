//! Criterion benches for the random-program campaign (T1/E2): end-to-end
//! analyze + simulate throughput, and the deadlock-rate measurement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
use systolic_sim::{
    run_simulation, AssignmentPolicy, CompatiblePolicy, CostModel, GreedyPolicy, QueueConfig,
    SimConfig,
};
use systolic_workloads as wl;

fn config(queues: usize) -> SimConfig {
    SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity: 1,
            extension: false,
        },
        cost: CostModel::systolic(),
        max_cycles: 1_000_000,
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_end_to_end");
    group.sample_size(10);
    let cfg = wl::RandomConfig {
        cells: 6,
        messages: 12,
        max_words: 4,
        max_span: 3,
        clustered: true,
    };
    let topology = wl::random_topology(&cfg);
    let programs: Vec<_> = (0..16u64)
        .map(|seed| wl::random_program(&cfg, seed).expect("valid"))
        .collect();
    // One compilation for the whole batch: the batch shares a topology.
    let analysis_config = AnalysisConfig {
        queues_per_interval: 4,
        ..Default::default()
    };
    let analyzer = Analyzer::new(CompiledTopology::compile(&topology, &analysis_config));

    group.bench_function("compatible_batch16", |b| {
        b.iter(|| {
            let mut completed = 0usize;
            for p in &programs {
                let Ok(a) = analyzer.analyze(p) else {
                    continue;
                };
                let policy: Box<dyn AssignmentPolicy> =
                    Box::new(CompatiblePolicy::new(a.into_plan()));
                if run_simulation(p, &topology, policy, config(4))
                    .expect("sim builds")
                    .is_completed()
                {
                    completed += 1;
                }
            }
            completed
        });
    });

    group.bench_function("greedy_batch16", |b| {
        b.iter(|| {
            let mut done = 0usize;
            for p in &programs {
                let out = run_simulation(p, &topology, Box::new(GreedyPolicy::new()), config(4))
                    .expect("sim builds");
                if out.is_completed() || out.is_deadlocked() {
                    done += 1;
                }
            }
            done
        });
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_program_generation");
    group.sample_size(20);
    for messages in [8usize, 32] {
        let cfg = wl::RandomConfig {
            cells: 8,
            messages,
            max_words: 4,
            max_span: 4,
            clustered: true,
        };
        group.bench_with_input(BenchmarkId::new("messages", messages), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                wl::random_program(cfg, seed).expect("valid").total_ops()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_generation);
criterion_main!(benches);
