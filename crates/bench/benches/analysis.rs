//! Criterion benches for the compile-time analysis passes (E1):
//! crossing-off classification, lookahead, labeling, and the full pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use systolic_core::{
    classify, classify_with, label_messages, AnalysisConfig, Analyzer, LookaheadLimits,
};
use systolic_workloads as wl;

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let program = wl::fir(3, n).expect("valid FIR");
        group.bench_with_input(BenchmarkId::new("fir3", n), &program, |b, p| {
            b.iter(|| classify(std::hint::black_box(p)).is_deadlock_free());
        });
    }
    let wide = wl::seq_align(16, 64).expect("valid");
    group.bench_function("seq_align(16,64)", |b| {
        b.iter(|| classify(std::hint::black_box(&wide)).is_deadlock_free());
    });
    group.finish();
}

fn bench_lookahead(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_lookahead");
    group.sample_size(20);
    let p1 = wl::fig5_p1();
    for cap in [1usize, 2, 8] {
        let limits = LookaheadLimits::uniform(&p1, cap);
        group.bench_with_input(BenchmarkId::new("p1_cap", cap), &limits, |b, l| {
            b.iter(|| classify_with(std::hint::black_box(&p1), l).is_deadlock_free());
        });
    }
    // A deep skip: W(A)*n W(B) pattern forces long scans.
    for n in [32usize, 128] {
        let text = format!(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c0 -> c1\n\
             program c0 {{ W(A)*{n} W(B) }}\nprogram c1 {{ R(B) R(A)*{n} }}\n"
        );
        let program = systolic_model::parse_program(&text).expect("valid");
        let limits = LookaheadLimits::unbounded(&program);
        group.bench_with_input(BenchmarkId::new("deep_skip", n), &program, |b, p| {
            b.iter(|| classify_with(std::hint::black_box(p), &limits).is_deadlock_free());
        });
    }
    group.finish();
}

fn bench_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_messages");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let program = wl::fir(3, n).expect("valid FIR");
        let limits = LookaheadLimits::disabled(&program);
        group.bench_with_input(BenchmarkId::new("fir3", n), &program, |b, p| {
            b.iter(|| label_messages(std::hint::black_box(p), &limits).expect("labels"));
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_pipeline");
    group.sample_size(20);
    let cases: Vec<(&str, systolic_model::Program, systolic_model::Topology)> = vec![
        ("fig7(16)", wl::fig7(16), wl::fig7_topology()),
        (
            "fir(3,256)",
            wl::fir(3, 256).expect("valid"),
            wl::fir_topology(3),
        ),
        (
            "matmul(4,4,16)",
            wl::mesh_matmul(4, 4, 16).expect("valid"),
            wl::matmul_topology(4, 4),
        ),
    ];
    for (name, program, topology) in cases {
        let config = AnalysisConfig {
            queues_per_interval: 8,
            ..Default::default()
        };
        let analyzer = Analyzer::for_topology(&topology, &config);
        group.bench_function(name, |b| {
            b.iter(|| {
                analyzer
                    .analyze(std::hint::black_box(&program))
                    .expect("analyzes")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_classify,
    bench_lookahead,
    bench_labeling,
    bench_pipeline
);
criterion_main!(benches);
