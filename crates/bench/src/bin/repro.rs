//! Regenerates every figure of the paper plus the extension experiments,
//! printing the tables recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! repro            # print all experiments as text
//! repro --markdown # print as markdown (for EXPERIMENTS.md)
//! repro F7 T1      # print selected experiments only
//! ```

use systolic_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    for e in all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.eq_ignore_ascii_case(e.id)) {
            continue;
        }
        println!("## {} — {}", e.id, e.title);
        println!();
        if markdown {
            println!("{}", e.table.to_markdown());
        } else {
            println!("{}", e.table.to_text());
        }
        for note in &e.notes {
            println!("note: {note}");
        }
        println!();
    }
}
