//! The experiment suite: one function per paper figure plus the extension
//! experiments from DESIGN.md. Each returns an [`Experiment`] with a table
//! that the `repro` binary prints and `EXPERIMENTS.md` records.

use std::time::Instant;

use systolic_core::CompetingSets;
use systolic_core::{
    classify, classify_with, label_messages, label_messages_robust, AnalysisConfig, Analyzer,
    Classification, Label, Labeling, Lookahead, LookaheadLimits, QueueRequirements,
};
use systolic_model::{MessageRoutes, Program, Topology};
use systolic_report::Table;
use systolic_sim::{
    run_simulation, AssignmentPolicy, CompatiblePolicy, CostModel, FifoPolicy, GreedyPolicy,
    QueueConfig, RunOutcome, SimConfig, StaticPolicy,
};
use systolic_threaded::{run_threaded, ControlMode, ThreadedConfig, ThreadedOutcome};
use systolic_workloads as wl;

/// One experiment's rendered results.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Short id (`F1`…`F10`, `T1`, `E1`…).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Free-form observations (the "what the paper predicts" notes).
    pub notes: Vec<String>,
}

fn outcome_name(outcome: &RunOutcome) -> String {
    match outcome {
        RunOutcome::Completed(s) => format!("completed in {} cycles", s.cycles),
        RunOutcome::Deadlocked { stats, .. } => format!("DEADLOCK at cycle {}", stats.cycles),
        RunOutcome::CycleLimit(_) => "cycle limit".to_owned(),
    }
}

fn sim_config(queues: usize, capacity: usize, cost: CostModel) -> SimConfig {
    SimConfig {
        queues_per_interval: queues,
        queue: QueueConfig {
            capacity,
            extension: false,
        },
        cost,
        max_cycles: 10_000_000,
    }
}

fn compatible(program: &Program, topology: &Topology, queues: usize) -> Box<dyn AssignmentPolicy> {
    let config = AnalysisConfig {
        queues_per_interval: queues,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(topology, &config)
        .analyze(program)
        .expect("program analyzes")
        .into_plan();
    Box::new(CompatiblePolicy::new(plan))
}

/// F1 (Fig. 1): systolic vs memory-to-memory communication on the FIR
/// filter — cycles and local-memory accesses per transferred word.
#[must_use]
pub fn fig01_comm_models() -> Experiment {
    let mut table = Table::new([
        "inputs",
        "model",
        "cycles",
        "mem accesses",
        "accesses/word",
        "slowdown",
    ]);
    for n in [4usize, 64, 1024] {
        let program = wl::fir(3, n).expect("valid FIR");
        let topology = wl::fir_topology(3);
        let mut cycles = Vec::new();
        for cost in [CostModel::systolic(), CostModel::memory_to_memory()] {
            let policy = compatible(&program, &topology, 2);
            let out = run_simulation(&program, &topology, policy, sim_config(2, 1, cost))
                .expect("sim builds");
            let RunOutcome::Completed(stats) = out else {
                panic!("FIR completes")
            };
            cycles.push(stats.cycles);
            let model = if cost == CostModel::systolic() {
                "systolic"
            } else {
                "mem-to-mem"
            };
            let slowdown = if cycles.len() == 2 {
                format!("{:.2}x", cycles[1] as f64 / cycles[0] as f64)
            } else {
                "1.00x".to_owned()
            };
            table.row([
                n.to_string(),
                model.to_owned(),
                stats.cycles.to_string(),
                stats.memory_accesses.to_string(),
                format!("{:.1}", stats.accesses_per_word()),
                slowdown,
            ]);
        }
    }
    Experiment {
        id: "F1",
        title: "Fig. 1 — systolic vs memory-to-memory communication (3-tap FIR)".into(),
        table,
        notes: vec![
            "Paper: the memory-to-memory model needs >= 4 local memory accesses per word \
             a cell updates; the systolic model can need none."
                .into(),
        ],
    }
}

/// F2 (Fig. 2): the FIR program itself, plus its analysis summary.
#[must_use]
pub fn fig02_fir_program() -> Experiment {
    let program = wl::fig2_fir();
    let mut table = Table::new(["message", "route", "words", "label"]);
    let topology = wl::fig2_topology();
    let config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let analysis = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .expect("Fig. 2 analyzes");
    let routes = MessageRoutes::compute(&program, &topology).expect("routes");
    for m in program.message_ids() {
        table.row([
            program.message(m).name().to_owned(),
            routes.route(m).to_string(),
            program.word_count(m).to_string(),
            analysis.plan().label(m).to_string(),
        ]);
    }
    Experiment {
        id: "F2",
        title: "Fig. 2 — the 3-tap FIR filter program (host + 3 cells)".into(),
        table,
        notes: vec![
            format!(
                "program listing:\n{}",
                systolic_model::side_by_side(&program)
            ),
            "All six messages are mutually related (interleaved access), so they share \
             one label; each interval carries one message per direction."
                .into(),
        ],
    }
}

/// F3 (Fig. 3): message-to-queue assignment over a 4-queue interval pool.
#[must_use]
pub fn fig03_queue_assignment() -> Experiment {
    let program = wl::fig3_messages();
    let topology = Topology::linear(4);
    let config = AnalysisConfig {
        queues_per_interval: 4,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(&topology, &config)
        .analyze(&program)
        .expect("Fig. 3 analyzes")
        .into_plan();
    let static_policy = StaticPolicy::new(&plan, 4).expect("4 queues dedicate all");
    let mut table = Table::new(["message", "route", "queues used"]);
    for m in program.message_ids() {
        let seq: Vec<String> = plan
            .route(m)
            .intervals()
            .map(|iv| format!("{iv}#{}", static_policy.queue_of(m, iv).expect("assigned")))
            .collect();
        table.row([
            program.message(m).name().to_owned(),
            plan.route(m).to_string(),
            seq.join(" -> "),
        ]);
    }
    Experiment {
        id: "F3",
        title: "Fig. 3 — every message is assigned a sequence of queues along its route".into(),
        table,
        notes: vec!["Static assignment with 4 queues per interval, as drawn in the figure.".into()],
    }
}

/// F4 (Fig. 4): the crossing-off trace of the FIR program.
#[must_use]
pub fn fig04_crossing_off() -> Experiment {
    let program = wl::fig2_fir();
    let Classification::DeadlockFree(trace) = classify(&program) else {
        panic!("Fig. 2 is deadlock-free")
    };
    let mut table = Table::new(["step", "pairs crossed off"]);
    for (i, step) in trace.steps().iter().enumerate() {
        let pairs: Vec<String> = step
            .pairs
            .iter()
            .map(|p| {
                format!(
                    "W({name})/R({name}) word {w}",
                    name = program.message(p.message).name(),
                    w = p.word + 1
                )
            })
            .collect();
        table.row([(i + 1).to_string(), pairs.join(", ")]);
    }
    Experiment {
        id: "F4",
        title: "Fig. 4 — crossing-off procedure on the FIR program".into(),
        table,
        notes: vec![
            "Paper: 12 steps; steps 3, 5 and 9 each cross off two executable pairs.".into(),
        ],
    }
}

/// F5 (Fig. 5): classification of the three deadlocked programs, with and
/// without lookahead.
#[must_use]
pub fn fig05_deadlocked_programs() -> Experiment {
    let mut table = Table::new([
        "program",
        "lookahead",
        "classification",
        "run (latch queues)",
    ]);
    let programs = [
        ("P1", wl::fig5_p1()),
        ("P2", wl::fig5_p2()),
        ("P3", wl::fig5_p3()),
    ];
    for (name, p) in &programs {
        for (la_name, limits) in [
            ("none", LookaheadLimits::disabled(p)),
            ("cap 1", LookaheadLimits::uniform(p, 1)),
            ("cap 2", LookaheadLimits::uniform(p, 2)),
            ("unbounded", LookaheadLimits::unbounded(p)),
        ] {
            let verdict = if classify_with(p, &limits).is_deadlock_free() {
                "deadlock-free"
            } else {
                "deadlocked"
            };
            let run = if la_name == "none" {
                let out = run_simulation(
                    p,
                    &Topology::linear(2),
                    Box::new(GreedyPolicy::new()),
                    sim_config(2, 0, CostModel::systolic()),
                )
                .expect("sim builds");
                outcome_name(&out)
            } else {
                String::new()
            };
            table.row([
                (*name).to_owned(),
                la_name.to_owned(),
                verdict.to_owned(),
                run,
            ]);
        }
    }
    Experiment {
        id: "F5",
        title: "Fig. 5 — deadlocked programs P1, P2, P3".into(),
        table,
        notes: vec![
            "P1 becomes deadlock-free with 2 words of buffering (Fig. 10); P2 with any \
             buffering; P3 never (true circular dependency, protected by rule R1)."
                .into(),
        ],
    }
}

/// F6 (Fig. 6): a message cycle that is deadlock-free.
#[must_use]
pub fn fig06_cycle() -> Experiment {
    let program = wl::fig6_cycle();
    let topology = wl::fig6_topology();
    let mut table = Table::new(["check", "result"]);
    table.row([
        "crossing-off classification".to_owned(),
        if classify(&program).is_deadlock_free() {
            "deadlock-free"
        } else {
            "deadlocked"
        }
        .to_owned(),
    ]);
    let out = run_simulation(
        &program,
        &topology,
        Box::new(GreedyPolicy::new()),
        sim_config(1, 1, CostModel::systolic()),
    )
    .expect("sim builds");
    table.row([
        "simulation (1 queue/interval)".to_owned(),
        outcome_name(&out),
    ]);
    Experiment {
        id: "F6",
        title: "Fig. 6 — messages form a cycle, yet the program is deadlock-free".into(),
        table,
        notes: vec![
            "Checking for sender/receiver cycles is NOT a valid deadlock test; the \
             crossing-off procedure is."
                .into(),
        ],
    }
}

/// F7 (Fig. 7): the ordering deadlock, across policies and sequence lengths.
#[must_use]
pub fn fig07_ordering(lens: &[usize]) -> Experiment {
    let mut table = Table::new(["len", "policy", "outcome"]);
    for &len in lens {
        let program = wl::fig7(len);
        let topology = wl::fig7_topology();
        let policies: Vec<Box<dyn AssignmentPolicy>> = vec![
            Box::new(FifoPolicy::new()),
            Box::new(GreedyPolicy::new()),
            compatible(&program, &topology, 1),
        ];
        for policy in policies {
            let name = policy.name();
            let out = run_simulation(
                &program,
                &topology,
                policy,
                sim_config(1, 1, CostModel::systolic()),
            )
            .expect("sim builds");
            table.row([len.to_string(), name.to_owned(), outcome_name(&out)]);
        }
    }
    let timeline = {
        let program = wl::fig7(3);
        let topology = wl::fig7_topology();
        let policy = compatible(&program, &topology, 1);
        let out = run_simulation(
            &program,
            &topology,
            policy,
            sim_config(1, 1, CostModel::systolic()),
        )
        .expect("sim builds");
        out.stats()
            .render_timeline(|m| program.message(m).name().to_owned())
    };
    Experiment {
        id: "F7",
        title: "Fig. 7 — queue-ordering deadlock (labels A=1, C=2, B=3)".into(),
        table,
        notes: vec![
            "One queue per interval. The naive policies hand the c3-c4 queue to B first \
             and deadlock; compatible assignment forces C (label 2) before B (label 3)."
                .into(),
            format!(
                "queue assignment at run time under compatible assignment (len 3), \
                 mirroring the figure's lower half:\n{timeline}"
            ),
        ],
    }
}

/// F8 (Fig. 8): interleaved reads need one queue per related message.
#[must_use]
pub fn fig08_interleaved_reads() -> Experiment {
    interleave_experiment(
        "F8",
        "Fig. 8 — interleaved reads by c3: A and B are related",
        wl::fig8(),
        wl::fig8_topology(),
    )
}

/// F9 (Fig. 9): interleaved writes — the symmetric case.
#[must_use]
pub fn fig09_interleaved_writes() -> Experiment {
    interleave_experiment(
        "F9",
        "Fig. 9 — interleaved writes by c1: A and B are related",
        wl::fig9(),
        wl::fig9_topology(),
    )
}

fn interleave_experiment(
    id: &'static str,
    title: &str,
    program: Program,
    topology: Topology,
) -> Experiment {
    let mut table = Table::new(["queues/interval", "policy", "outcome"]);
    for queues in [1usize, 2] {
        let mut policies: Vec<Box<dyn AssignmentPolicy>> =
            vec![Box::new(FifoPolicy::new()), Box::new(GreedyPolicy::new())];
        // Compatible assignment requires feasibility (assumption ii): with
        // one queue the equal-label pair can never be granted, which the
        // analysis rejects up front.
        let config = AnalysisConfig {
            queues_per_interval: queues,
            ..Default::default()
        };
        let analysis = Analyzer::for_topology(&topology, &config).analyze(&program);
        match analysis {
            Ok(a) => policies.push(Box::new(CompatiblePolicy::new(a.into_plan()))),
            Err(e) => {
                table.row([
                    queues.to_string(),
                    "compatible".into(),
                    format!("rejected: {e}"),
                ]);
            }
        }
        for policy in policies {
            let name = policy.name();
            let out = run_simulation(
                &program,
                &topology,
                policy,
                sim_config(queues, 1, CostModel::systolic()),
            )
            .expect("sim builds");
            table.row([queues.to_string(), name.to_owned(), outcome_name(&out)]);
        }
    }
    Experiment {
        id,
        title: title.to_owned(),
        table,
        notes: vec![
            "Related messages share a label; the simultaneous-assignment rule then demands \
             one queue each, so one queue per interval is infeasible and two suffice."
                .into(),
        ],
    }
}

/// F10 (Fig. 10): lookahead on P1 — classification and runtime vs capacity.
#[must_use]
pub fn fig10_lookahead() -> Experiment {
    let program = wl::fig5_p1();
    let topology = Topology::linear(2);
    let mut table = Table::new([
        "queue capacity",
        "classification (lookahead)",
        "run (2 queues)",
    ]);
    for cap in [0usize, 1, 2, 4] {
        let limits = LookaheadLimits::uniform(&program, cap);
        let verdict = if classify_with(&program, &limits).is_deadlock_free() {
            "deadlock-free"
        } else {
            "deadlocked"
        };
        let out = run_simulation(
            &program,
            &topology,
            Box::new(GreedyPolicy::new()),
            sim_config(2, cap, CostModel::systolic()),
        )
        .expect("sim builds");
        table.row([cap.to_string(), verdict.to_owned(), outcome_name(&out)]);
    }
    let limits = LookaheadLimits::uniform(&program, 2);
    let Classification::DeadlockFree(trace) = classify_with(&program, &limits) else {
        panic!("P1 with capacity 2 is deadlock-free")
    };
    let first_three: Vec<String> = trace
        .steps()
        .iter()
        .take(3)
        .flat_map(|s| s.pairs.iter())
        .map(|p| {
            format!(
                "{}: W@{}/R@{} (skipped {})",
                program.message(p.message).name(),
                p.write_pos + 1,
                p.read_pos + 1,
                p.skipped.values().sum::<usize>()
            )
        })
        .collect();
    Experiment {
        id: "F10",
        title: "Fig. 10 — crossing-off with lookahead on P1".into(),
        table,
        notes: vec![format!(
            "first three executable pairs (1-based op positions, as in the figure): {}",
            first_three.join("; ")
        )],
    }
}

/// T1 (Theorem 1): random deadlock-free programs never deadlock under
/// compatible assignment; the naive policies do.
#[must_use]
pub fn t1_theorem_campaign(seeds: u64, queues: usize) -> Experiment {
    let cfg = wl::RandomConfig {
        cells: 5,
        messages: 8,
        max_words: 4,
        max_span: 3,
        clustered: true,
    };
    let topology = wl::random_topology(&cfg);
    let mut rows: Vec<(String, usize, usize, usize)> = vec![
        ("fifo".into(), 0, 0, 0),
        ("greedy".into(), 0, 0, 0),
        ("compatible".into(), 0, 0, 0),
    ];
    let analysis_config = AnalysisConfig {
        queues_per_interval: queues,
        ..Default::default()
    };
    let analyzer = Analyzer::for_topology(&topology, &analysis_config);
    for seed in 0..seeds {
        let program = wl::random_program(&cfg, seed).expect("valid random program");
        let analysis = analyzer.analyze(&program);
        for (i, policy) in [
            Box::new(FifoPolicy::new()) as Box<dyn AssignmentPolicy>,
            Box::new(GreedyPolicy::new()),
        ]
        .into_iter()
        .enumerate()
        {
            let out = run_simulation(
                &program,
                &topology,
                policy,
                sim_config(queues, 1, CostModel::systolic()),
            )
            .expect("sim builds");
            match out {
                RunOutcome::Completed(_) => rows[i].1 += 1,
                RunOutcome::Deadlocked { .. } => rows[i].2 += 1,
                RunOutcome::CycleLimit(_) => {}
            }
        }
        match analysis {
            Ok(a) => {
                let out = run_simulation(
                    &program,
                    &topology,
                    Box::new(CompatiblePolicy::new(a.into_plan())),
                    sim_config(queues, 1, CostModel::systolic()),
                )
                .expect("sim builds");
                match out {
                    RunOutcome::Completed(_) => rows[2].1 += 1,
                    RunOutcome::Deadlocked { .. } => rows[2].2 += 1,
                    RunOutcome::CycleLimit(_) => {}
                }
            }
            Err(_) => rows[2].3 += 1, // infeasible: assumption (ii) fails
        }
    }
    let mut table = Table::new(["policy", "completed", "deadlocked", "infeasible"]);
    for (name, ok, dead, infeasible) in rows {
        table.row([
            name,
            ok.to_string(),
            dead.to_string(),
            infeasible.to_string(),
        ]);
    }
    Experiment {
        id: "T1",
        title: format!(
            "Theorem 1 — {seeds} random deadlock-free programs, {queues} queue(s)/interval"
        ),
        table,
        notes: vec![
            "Theorem 1 predicts ZERO deadlocks in the compatible row whenever the plan is \
             feasible; the label-blind policies deadlock at some rate."
                .into(),
        ],
    }
}

/// E1: analysis cost scaling (crossing-off + labeling wall time).
#[must_use]
pub fn e1_scaling() -> Experiment {
    let mut table = Table::new(["workload", "ops", "classify", "label", "ops/ms (classify)"]);
    let cases: Vec<(String, Program)> = vec![
        ("fir(3,64)".into(), wl::fir(3, 64).expect("valid")),
        ("fir(3,256)".into(), wl::fir(3, 256).expect("valid")),
        ("fir(3,1024)".into(), wl::fir(3, 1024).expect("valid")),
        ("fir(8,1024)".into(), wl::fir(8, 1024).expect("valid")),
        (
            "seq_align(16,128)".into(),
            wl::seq_align(16, 128).expect("valid"),
        ),
        (
            "matmul(6,6,32)".into(),
            wl::mesh_matmul(6, 6, 32).expect("valid"),
        ),
    ];
    for (name, program) in cases {
        let ops = program.total_ops();
        let t0 = Instant::now();
        let c = classify(&program);
        let classify_time = t0.elapsed();
        assert!(c.is_deadlock_free(), "{name} must be deadlock-free");
        let t1 = Instant::now();
        let limits = LookaheadLimits::disabled(&program);
        label_messages(&program, &limits).expect("labels");
        let label_time = t1.elapsed();
        table.row([
            name,
            ops.to_string(),
            format!("{:.2?}", classify_time),
            format!("{:.2?}", label_time),
            format!("{:.0}", ops as f64 / classify_time.as_secs_f64() / 1000.0),
        ]);
    }
    Experiment {
        id: "E1",
        title: "analysis cost vs program size".into(),
        table,
        notes: vec!["Both passes are near-linear in program size for pipeline workloads.".into()],
    }
}

/// E2: deadlock-rate campaign — random programs across queue counts and
/// policies.
#[must_use]
pub fn e2_campaign(seeds: u64) -> Experiment {
    let cfg = wl::RandomConfig {
        cells: 5,
        messages: 8,
        max_words: 4,
        max_span: 3,
        clustered: true,
    };
    let topology = wl::random_topology(&cfg);
    let mut table = Table::new([
        "queues/interval",
        "policy",
        "completed",
        "deadlocked",
        "infeasible",
    ]);
    for queues in 1..=4usize {
        let mut counts = [
            (String::from("fifo"), 0usize, 0usize, 0usize),
            (String::from("greedy"), 0, 0, 0),
            (String::from("compatible"), 0, 0, 0),
        ];
        for seed in 0..seeds {
            let program = wl::random_program(&cfg, seed).expect("valid");
            for (i, policy) in [
                Box::new(FifoPolicy::new()) as Box<dyn AssignmentPolicy>,
                Box::new(GreedyPolicy::new()),
            ]
            .into_iter()
            .enumerate()
            {
                let out = run_simulation(
                    &program,
                    &topology,
                    policy,
                    sim_config(queues, 1, CostModel::systolic()),
                )
                .expect("sim builds");
                match out {
                    RunOutcome::Completed(_) => counts[i].1 += 1,
                    RunOutcome::Deadlocked { .. } => counts[i].2 += 1,
                    RunOutcome::CycleLimit(_) => {}
                }
            }
            let analysis_config = AnalysisConfig {
                queues_per_interval: queues,
                ..Default::default()
            };
            match Analyzer::for_topology(&topology, &analysis_config).analyze(&program) {
                Ok(a) => {
                    let out = run_simulation(
                        &program,
                        &topology,
                        Box::new(CompatiblePolicy::new(a.into_plan())),
                        sim_config(queues, 1, CostModel::systolic()),
                    )
                    .expect("sim builds");
                    match out {
                        RunOutcome::Completed(_) => counts[2].1 += 1,
                        RunOutcome::Deadlocked { .. } => counts[2].2 += 1,
                        RunOutcome::CycleLimit(_) => {}
                    }
                }
                Err(_) => counts[2].3 += 1,
            }
        }
        for (name, ok, dead, infeasible) in &counts {
            table.row([
                queues.to_string(),
                name.clone(),
                ok.to_string(),
                dead.to_string(),
                infeasible.to_string(),
            ]);
        }
    }
    Experiment {
        id: "E2",
        title: format!("deadlock-rate campaign over {seeds} random programs per cell"),
        table,
        notes: vec![
            "The naive policies' deadlock rate falls as queues are added; the compatible \
             policy never deadlocks — it only ever refuses up front (infeasible) when \
             assumption (ii) cannot be met."
                .into(),
        ],
    }
}

/// E6: strict vs pipelined scheduling — buffering requirements.
#[must_use]
pub fn e6_strict_pipeline_depth() -> Experiment {
    let mut table = Table::new([
        "variant",
        "cells (k)",
        "capacity 0",
        "capacity 1",
        "runtime (cap 0)",
        "runtime (cap 1)",
    ]);
    for k in [1usize, 2, 4] {
        let m = 2 * k + 1;
        let cases: [(&str, Program); 2] = [
            ("strict", wl::seq_align_strict(k, m).expect("valid")),
            ("pipelined", wl::seq_align(k, m).expect("valid")),
        ];
        let topology = wl::seq_align_topology(k);
        for (variant, program) in cases {
            let verdict = |cap: usize| {
                let routes = MessageRoutes::compute(&program, &topology).expect("routes");
                let limits = LookaheadLimits::from_routes(&routes, cap);
                if classify_with(&program, &limits).is_deadlock_free() {
                    "deadlock-free"
                } else {
                    "deadlocked"
                }
            };
            let run = |cap: usize| {
                let out = run_simulation(
                    &program,
                    &topology,
                    Box::new(GreedyPolicy::new()),
                    sim_config(3, cap, CostModel::systolic()),
                )
                .expect("sim builds");
                outcome_name(&out)
            };
            table.row([
                variant.to_owned(),
                k.to_string(),
                verdict(0).to_owned(),
                verdict(1).to_owned(),
                run(0),
                run(1),
            ]);
        }
    }
    Experiment {
        id: "E6",
        title: "strict vs schedule-projected pipelines: what one word of buffering buys".into(),
        table,
        notes: vec![
            "The strict R R W W per-character schedule deadlocks on pure latches (the host \
             feeds everything before draining, wedging the last cell), but a single word \
             of buffering per queue lets every cell's reads run one step ahead and the \
             pipeline drains. The schedule-projected variant never deadlocks, even on \
             latches — the Section 3.3 construction pays for itself."
                .into(),
        ],
    }
}

/// E3: labeling ablation — Section 6 labels vs the trivial all-equal
/// labeling, measured as required queues per interval.
#[must_use]
pub fn e3_labeling_ablation() -> Experiment {
    let mut table = Table::new([
        "workload",
        "max queues (Section 6)",
        "max queues (constraint solver)",
        "max queues (trivial)",
    ]);
    let cases: Vec<(String, Program, Topology)> = vec![
        ("fig7(3)".into(), wl::fig7(3), wl::fig7_topology()),
        ("fig8".into(), wl::fig8(), wl::fig8_topology()),
        ("fig9".into(), wl::fig9(), wl::fig9_topology()),
        (
            "fir(3,16)".into(),
            wl::fir(3, 16).expect("valid"),
            wl::fir_topology(3),
        ),
        (
            "matvec(4)".into(),
            wl::matvec(4).expect("valid"),
            wl::matvec_topology(4),
        ),
        (
            "horner(3,4)".into(),
            wl::horner(3, 4).expect("valid"),
            wl::horner_topology(3),
        ),
        (
            "seq_align(3,8)".into(),
            wl::seq_align(3, 8).expect("valid"),
            wl::seq_align_topology(3),
        ),
        (
            "back_sub(4)".into(),
            wl::back_substitution(4).expect("valid"),
            wl::back_substitution_topology(4),
        ),
    ];
    for (name, program, topology) in cases {
        let routes = MessageRoutes::compute(&program, &topology).expect("routes");
        let competing = CompetingSets::compute(&routes);
        let limits = LookaheadLimits::disabled(&program);
        let labeled = label_messages(&program, &limits)
            .expect("labels")
            .into_labeling();
        let robust = label_messages_robust(&program, &limits).expect("robust labels");
        let scheme = QueueRequirements::compute(&competing, &labeled);
        let solver = QueueRequirements::compute(&competing, &robust);
        let trivial = QueueRequirements::compute(&competing, &Labeling::trivial(&program));
        table.row([
            name,
            scheme.max_per_interval().to_string(),
            solver.max_per_interval().to_string(),
            trivial.max_per_interval().to_string(),
        ]);
    }
    Experiment {
        id: "E3",
        title: "ablation: Section 6 labeling vs trivial all-equal labeling".into(),
        table,
        notes: vec![
            "The trivial labeling is consistent but throws every competing message into one \
             simultaneous group, inflating the hardware queue requirement (paper, Section 5)."
                .into(),
        ],
    }
}

/// E4: the queue-extension mechanism — spills when capacity is short.
#[must_use]
pub fn e4_queue_extension() -> Experiment {
    let mut table = Table::new([
        "writes ahead",
        "capacity",
        "needs extension?",
        "run",
        "spill accesses",
    ]);
    for n in [2usize, 4, 8] {
        // W(A)*n W(B) / R(B) R(A)*n: locating W(B) skips n writes of A.
        let text = format!(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c0 -> c1\n\
             program c0 {{ W(A)*{n} W(B) }}\nprogram c1 {{ R(B) R(A)*{n} }}\n"
        );
        let program = systolic_model::parse_program(&text).expect("valid");
        let analysis_config = AnalysisConfig {
            lookahead: Lookahead::Unbounded,
            queues_per_interval: 2,
        };
        let analysis = Analyzer::for_topology(&Topology::linear(2), &analysis_config)
            .analyze(&program)
            .expect("analyzes with unbounded lookahead");
        for cap in [1usize, 2, 8] {
            let candidates = analysis.extension_candidates(&[cap, cap]);
            let config = SimConfig {
                queues_per_interval: 2,
                queue: QueueConfig {
                    capacity: cap,
                    extension: true,
                },
                cost: CostModel::systolic(),
                max_cycles: 100_000,
            };
            let out = run_simulation(
                &program,
                &Topology::linear(2),
                Box::new(GreedyPolicy::new()),
                config,
            )
            .expect("sim builds");
            let spills = out.stats().spill_accesses;
            table.row([
                n.to_string(),
                cap.to_string(),
                if candidates.is_empty() { "no" } else { "yes" }.to_owned(),
                outcome_name(&out),
                spills.to_string(),
            ]);
        }
    }
    Experiment {
        id: "E4",
        title: "iWarp queue extension: spill exactly when skips exceed capacity".into(),
        table,
        notes: vec![
            "Section 8.1: the extension mechanism needs to be invoked only when the number \
             of skipped writes exceeds the total queue size along the message's route."
                .into(),
        ],
    }
}

/// E5: the threaded runtime — scheduling-independent completion.
#[must_use]
pub fn e5_threaded() -> Experiment {
    let mut table = Table::new(["workload", "mode", "outcome"]);
    let fig7 = wl::fig7(3);
    let fig7_top = wl::fig7_topology();
    let plan = Analyzer::for_topology(&fig7_top, &AnalysisConfig::default())
        .analyze(&fig7)
        .expect("fig7 analyzes")
        .into_plan();
    let out = run_threaded(
        &fig7,
        &fig7_top,
        ControlMode::compatible(plan),
        ThreadedConfig::default(),
    )
    .expect("threaded runs");
    table.row([
        "fig7(3)".to_owned(),
        "compatible".to_owned(),
        threaded_name(&out),
    ]);

    let out = run_threaded(
        &fig7,
        &fig7_top,
        ControlMode::Fifo,
        ThreadedConfig::default(),
    )
    .expect("threaded runs");
    table.row(["fig7(3)".to_owned(), "fifo".to_owned(), threaded_name(&out)]);

    let fir = wl::fig2_fir();
    let fir_top = wl::fig2_topology();
    let fir_config = AnalysisConfig {
        queues_per_interval: 2,
        ..Default::default()
    };
    let plan = Analyzer::for_topology(&fir_top, &fir_config)
        .analyze(&fir)
        .expect("FIR analyzes")
        .into_plan();
    let out = run_threaded(
        &fir,
        &fir_top,
        ControlMode::compatible(plan),
        ThreadedConfig {
            queues_per_interval: 2,
            ..Default::default()
        },
    )
    .expect("threaded runs");
    table.row([
        "fig2 FIR".to_owned(),
        "compatible".to_owned(),
        threaded_name(&out),
    ]);

    Experiment {
        id: "E5",
        title: "OS-thread runtime: Theorem 1 is scheduling independent".into(),
        table,
        notes: vec![
            "Real threads, real bounded queues, arbitrary OS interleaving: compatible \
             assignment still completes; the FIFO strawman still deadlocks (caught by the \
             quiescence watchdog)."
                .into(),
        ],
    }
}

fn threaded_name(out: &ThreadedOutcome) -> String {
    match out {
        ThreadedOutcome::Completed {
            words_delivered,
            elapsed,
        } => {
            format!("completed ({words_delivered} words, {elapsed:.2?})")
        }
        ThreadedOutcome::Deadlocked { blocked } => {
            format!("DEADLOCK ({} threads blocked)", blocked.len())
        }
    }
}

/// Labels of the Fig. 7 messages, for the repro summary.
#[must_use]
pub fn fig7_labels() -> Vec<(String, Label)> {
    let program = wl::fig7(3);
    let limits = LookaheadLimits::disabled(&program);
    let labeling = label_messages(&program, &limits)
        .expect("labels")
        .into_labeling();
    program
        .message_ids()
        .map(|m| (program.message(m).name().to_owned(), labeling.label(m)))
        .collect()
}

/// Every experiment, in presentation order, with fast default parameters.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        fig01_comm_models(),
        fig02_fir_program(),
        fig03_queue_assignment(),
        fig04_crossing_off(),
        fig05_deadlocked_programs(),
        fig06_cycle(),
        fig07_ordering(&[1, 2, 4, 8]),
        fig08_interleaved_reads(),
        fig09_interleaved_writes(),
        fig10_lookahead(),
        t1_theorem_campaign(100, 2),
        e1_scaling(),
        e2_campaign(50),
        e3_labeling_ablation(),
        e4_queue_extension(),
        e5_threaded(),
        e6_strict_pipeline_depth(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_shapes_hold() {
        let e = fig01_comm_models();
        let text = e.table.to_text();
        // systolic rows report 0 accesses; mem-to-mem rows report 4.0/word.
        assert!(text.contains("systolic"));
        assert!(text.contains("4.0"));
    }

    #[test]
    fn fig04_has_twelve_steps_with_doubles_at_3_5_9() {
        let program = wl::fig2_fir();
        let Classification::DeadlockFree(trace) = classify(&program) else {
            panic!("deadlock-free")
        };
        assert_eq!(trace.steps().len(), 12, "Fig. 4 shows 12 steps");
        for (i, step) in trace.steps().iter().enumerate() {
            let expected = if [2, 4, 8].contains(&i) { 2 } else { 1 };
            assert_eq!(
                step.pairs.len(),
                expected,
                "step {} crossed {} pairs",
                i + 1,
                step.pairs.len()
            );
        }
        assert_eq!(trace.total_pairs(), 15);
    }

    #[test]
    fn fig7_labels_match_paper() {
        let labels = fig7_labels();
        let find = |n: &str| labels.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(find("A"), Label::integer(1));
        assert_eq!(find("B"), Label::integer(3));
        assert_eq!(find("C"), Label::integer(2));
    }

    #[test]
    fn fig07_table_shows_the_contrast() {
        let e = fig07_ordering(&[2]);
        let text = e.table.to_text();
        assert!(text.contains("DEADLOCK"), "{text}");
        assert!(text.contains("completed"), "{text}");
    }

    #[test]
    fn fig08_fig09_one_queue_infeasible_two_fine() {
        for e in [fig08_interleaved_reads(), fig09_interleaved_writes()] {
            let text = e.table.to_text();
            assert!(text.contains("rejected"), "{text}");
            assert!(text.contains("completed"), "{text}");
            assert!(text.contains("DEADLOCK"), "{text}");
        }
    }

    #[test]
    fn t1_compatible_never_deadlocks() {
        let e = t1_theorem_campaign(25, 2);
        let csv = e.table.to_csv();
        let compatible_row = csv.lines().find(|l| l.starts_with("compatible")).unwrap();
        let fields: Vec<&str> = compatible_row.split(',').collect();
        assert_eq!(
            fields[2], "0",
            "Theorem 1: no deadlocks, got {compatible_row}"
        );
    }

    #[test]
    fn e3_scheme_never_needs_more_than_trivial() {
        let e = e3_labeling_ablation();
        for line in e.table.to_csv().lines().skip(1) {
            // Workload names contain commas and are RFC-4180 quoted; the
            // numeric columns are comma-free, so split from the right.
            let f: Vec<&str> = line.rsplit(',').collect();
            let trivial: usize = f[0].parse().unwrap();
            let scheme: usize = f[2].parse().unwrap();
            assert!(scheme <= trivial, "{line}");
        }
    }

    #[test]
    fn e4_extension_trigger_matches_capacity() {
        let e = e4_queue_extension();
        for line in e.table.to_csv().lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let n: usize = f[0].parse().unwrap();
            let cap: usize = f[1].parse().unwrap();
            let needs = f[2] == "yes";
            assert_eq!(needs, n > cap, "{line}");
            // The run always completes thanks to the extension.
            assert!(f[3].contains("completed"), "{line}");
        }
    }
}
