//! Benchmark and reproduction harness for the Kung 1988 deadlock-avoidance
//! paper: one experiment per figure (`F1`–`F10`), the Theorem 1 campaign
//! (`T1`) and the extension experiments (`E1`–`E5`).
//!
//! The [`experiments`] module holds the runnable experiments; the `repro`
//! binary prints them all; the Criterion benches in `benches/` measure the
//! performance-sensitive pieces (analysis passes and the simulator).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::{all_experiments, Experiment};
