//! The threaded runtime: each cell is an OS thread, queues are real bounded
//! buffers, and a watchdog detects true deadlock.
//!
//! This runtime demonstrates that the paper's guarantee is *scheduling
//! independent*: Theorem 1 promises completion under compatible assignment
//! no matter how cell execution interleaves, so the threaded tests pass
//! deterministically even though the OS scheduler is free to do anything.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use systolic_model::{Interval, MessageId, MessageRoutes, ModelError, Program, Topology};

use crate::{ControlMode, Controller, Liveness, Poisoned, ThreadedQueue};

/// Configuration of a threaded run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Queues per interval.
    pub queues_per_interval: usize,
    /// Per-queue capacity (0 = latch semantics for cell writes).
    pub capacity: usize,
    /// How long the run may be globally quiescent before the watchdog
    /// declares deadlock.
    pub quiet_period: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            queues_per_interval: 1,
            capacity: 1,
            quiet_period: Duration::from_millis(250),
        }
    }
}

/// How a threaded run ended.
#[derive(Clone, Debug)]
pub enum ThreadedOutcome {
    /// Every cell thread finished its program.
    Completed {
        /// Words delivered to final receivers.
        words_delivered: usize,
        /// Wall-clock duration of the run.
        elapsed: Duration,
    },
    /// The watchdog detected global quiescence with work remaining.
    Deadlocked {
        /// One description per thread that was still blocked.
        blocked: Vec<String>,
    },
}

impl ThreadedOutcome {
    /// `true` for [`ThreadedOutcome::Completed`].
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, ThreadedOutcome::Completed { .. })
    }

    /// `true` for [`ThreadedOutcome::Deadlocked`].
    #[must_use]
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, ThreadedOutcome::Deadlocked { .. })
    }
}

/// Runs `program` on real threads over `topology` under `mode`.
///
/// # Errors
///
/// Returns routing/validation errors from [`MessageRoutes::compute`].
pub fn run_threaded(
    program: &Program,
    topology: &Topology,
    mode: ControlMode,
    config: ThreadedConfig,
) -> Result<ThreadedOutcome, ModelError> {
    let routes = MessageRoutes::compute(program, topology)?;
    run_threaded_with_routes(program, topology, routes, mode, config)
}

/// The shared stepping loop: `routes` must cover exactly the program's
/// messages over `topology`.
fn run_threaded_with_routes(
    program: &Program,
    topology: &Topology,
    routes: MessageRoutes,
    mode: ControlMode,
    config: ThreadedConfig,
) -> Result<ThreadedOutcome, ModelError> {
    let live = Arc::new(Liveness::default());
    let controller = Arc::new(Controller::new(
        mode,
        topology.intervals().iter().copied(),
        config.queues_per_interval,
        Arc::clone(&live),
    ));
    let queues: BTreeMap<Interval, Vec<Arc<ThreadedQueue>>> = topology
        .intervals()
        .iter()
        .copied()
        .map(|iv| {
            let qs = (0..config.queues_per_interval)
                .map(|_| Arc::new(ThreadedQueue::new(config.capacity, Arc::clone(&live))))
                .collect();
            (iv, qs)
        })
        .collect();

    let total_workers = program.cells().iter().filter(|cp| !cp.is_empty()).count()
        + routes
            .iter()
            .map(|(_, r)| r.num_hops().saturating_sub(1))
            .sum::<usize>();
    let finished = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    let words_total = program.total_words();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();

        // Cell threads.
        for cell in program.cell_ids() {
            if program.cell(cell).is_empty() {
                continue;
            }
            let routes = &routes;
            let controller = Arc::clone(&controller);
            let queues = &queues;
            let finished = Arc::clone(&finished);
            let cell_name = program.cell_name(cell).to_owned();
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut write_index: BTreeMap<MessageId, usize> = BTreeMap::new();
                let mut reads_done: BTreeMap<MessageId, usize> = BTreeMap::new();
                for (pc, op) in program.cell(cell).iter().enumerate() {
                    let m = op.message();
                    let route = routes.route(m);
                    let fail =
                        |what: &str| format!("{cell_name} blocked at op {pc} ({op}): {what}");
                    if op.is_write() {
                        let hop = route.hops().next().expect("nonempty route");
                        let idx = controller
                            .acquire(m, hop)
                            .map_err(|Poisoned| fail("acquiring first-hop queue"))?;
                        let q = &queues[&hop.interval()][idx];
                        let w = write_index.entry(m).or_insert(0);
                        let word = (m, *w);
                        *w += 1;
                        q.push(word, true)
                            .map_err(|Poisoned| fail("pushing (queue full or latch held)"))?;
                    } else {
                        let last = route.num_hops() - 1;
                        let interval = route.hops().nth(last).expect("last hop exists").interval();
                        let idx = controller
                            .await_assignment(m, interval)
                            .map_err(|Poisoned| fail("waiting for queue assignment"))?;
                        let q = &queues[&interval][idx];
                        let (got, _) = q.pop().map_err(|Poisoned| fail("reading (queue empty)"))?;
                        debug_assert_eq!(got, m, "queue serves one message at a time");
                        let done = reads_done.entry(m).or_insert(0);
                        *done += 1;
                        if *done == program.word_count(m) {
                            controller.release(m, interval);
                        }
                    }
                }
                finished.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(completion tally; watchdog only compares the count, no data published)
                Ok(())
            }));
        }

        // Forwarder threads: one per (message, intermediate hop).
        for (m, route) in routes.iter() {
            let hops: Vec<_> = route.hops().collect();
            for k in 1..hops.len() {
                let controller = Arc::clone(&controller);
                let queues = &queues;
                let finished = Arc::clone(&finished);
                let words = program.word_count(m);
                let (src_hop, dst_hop) = (hops[k - 1], hops[k]);
                handles.push(scope.spawn(move || -> Result<(), String> {
                    let fail = |what: &str| format!("forwarder {m}@{dst_hop}: {what}");
                    if words == 0 {
                        finished.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(completion tally; watchdog only compares the count, no data published)
                        return Ok(());
                    }
                    let src_idx = controller
                        .await_assignment(m, src_hop.interval())
                        .map_err(|Poisoned| fail("waiting for upstream queue"))?;
                    let src = &queues[&src_hop.interval()][src_idx];
                    // The header must be present before we request the next
                    // hop's queue ("when the header of a message arrives at
                    // a cell" — Section 5).
                    src.peek()
                        .map_err(|Poisoned| fail("waiting for header word"))?;
                    let dst_idx = controller
                        .acquire(m, dst_hop)
                        .map_err(|Poisoned| fail("acquiring next-hop queue"))?;
                    let dst = &queues[&dst_hop.interval()][dst_idx];
                    for _ in 0..words {
                        let word = src.pop().map_err(|Poisoned| fail("popping"))?;
                        dst.push(word, false).map_err(|Poisoned| fail("pushing"))?;
                    }
                    controller.release(m, src_hop.interval());
                    finished.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(completion tally; watchdog only compares the count, no data published)
                    Ok(())
                }));
            }
        }

        // Watchdog: declare deadlock after a full quiet period with workers
        // still unfinished.
        {
            let live = Arc::clone(&live);
            let controller = Arc::clone(&controller);
            let queues = &queues;
            let finished = Arc::clone(&finished);
            scope.spawn(move || {
                // The watchdog only compares heartbeat values across polls;
                // no memory is published through these flags, and eventual
                // visibility (guaranteed by the sleep loop) suffices.
                // lint: relaxed-ok(heartbeat compare; eventual visibility suffices)
                let mut last = live.progress.load(Ordering::Relaxed);
                let mut quiet_since = Instant::now();
                loop {
                    std::thread::sleep(Duration::from_millis(10));
                    // lint: relaxed-ok(heartbeat compare; eventual visibility suffices)
                    if finished.load(Ordering::Relaxed) >= total_workers {
                        return;
                    }
                    let now = live.progress.load(Ordering::Relaxed); // lint: relaxed-ok(heartbeat compare)
                    if now != last {
                        last = now;
                        quiet_since = Instant::now();
                        continue;
                    }
                    if quiet_since.elapsed() >= config.quiet_period {
                        // lint: relaxed-ok(poison flag; waiters recheck under their own mutexes after notify_all)
                        live.poisoned.store(true, Ordering::Relaxed);
                        controller.notify_all();
                        for qs in queues.values() {
                            for q in qs {
                                q.notify_all();
                            }
                        }
                        return;
                    }
                }
            });
        }

        for h in handles {
            if let Err(desc) = h.join().expect("worker threads do not panic") {
                failures.push(desc);
            }
        }
    });

    if failures.is_empty() {
        Ok(ThreadedOutcome::Completed {
            words_delivered: words_total,
            elapsed: start.elapsed(),
        })
    } else {
        failures.sort();
        Ok(ThreadedOutcome::Deadlocked { blocked: failures })
    }
}

/// [`run_threaded`] for callers holding a
/// [`CompiledTopology`](systolic_core::CompiledTopology), so they need
/// not carry the `&Topology` separately. Routes are served from the
/// compilation's route closure (when materialized) instead of recomputed
/// per run — the same amortization the simulator's `SimArena` gets.
///
/// # Errors
///
/// As [`run_threaded`].
pub fn run_threaded_compiled(
    program: &Program,
    compiled: &systolic_core::CompiledTopology,
    mode: ControlMode,
    config: ThreadedConfig,
) -> Result<ThreadedOutcome, ModelError> {
    let routes = compiled.routes_for(program)?;
    run_threaded_with_routes(program, compiled.topology(), routes, mode, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_workloads as wl;

    fn compatible(program: &Program, topology: &Topology, queues: usize) -> ControlMode {
        let config = AnalysisConfig {
            queues_per_interval: queues,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(topology, &config)
            .analyze(program)
            .expect("analysis succeeds")
            .into_plan();
        ControlMode::compatible(plan)
    }

    #[test]
    fn fig2_fir_completes_on_threads() {
        let p = wl::fig2_fir();
        let t = wl::fig2_topology();
        let mode = compatible(&p, &t, 2);
        let config = ThreadedConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let out = run_threaded(&p, &t, mode, config).unwrap();
        let ThreadedOutcome::Completed {
            words_delivered, ..
        } = out
        else {
            panic!("FIR must complete on threads: {out:?}")
        };
        assert_eq!(words_delivered, 15);
    }

    #[test]
    fn fig7_compatible_completes_under_any_scheduling() {
        let p = wl::fig7(3);
        let t = wl::fig7_topology();
        // Run several times: Theorem 1 holds regardless of interleaving.
        for _ in 0..5 {
            let mode = compatible(&p, &t, 1);
            let out = run_threaded(&p, &t, mode, ThreadedConfig::default()).unwrap();
            assert!(out.is_completed(), "{out:?}");
        }
    }

    #[test]
    fn fig8_one_queue_deadlocks_on_threads() {
        // Structural queue-induced deadlock: c3 needs A and B interleaved,
        // but one queue between c2 and c3 can serve only one of them.
        let p = wl::fig8();
        let t = wl::fig8_topology();
        let out = run_threaded(&p, &t, ControlMode::Greedy, ThreadedConfig::default()).unwrap();
        let ThreadedOutcome::Deadlocked { blocked } = out else {
            panic!("Fig. 8 with one queue must deadlock: {out:?}")
        };
        assert!(!blocked.is_empty());

        // Two queues: completes.
        let config = ThreadedConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let mode = compatible(&p, &t, 2);
        let out = run_threaded(&p, &t, mode, config).unwrap();
        assert!(out.is_completed());
    }

    #[test]
    fn fig5_p3_true_program_deadlock_is_caught() {
        let p = wl::fig5_p3();
        let out = run_threaded(
            &p,
            &Topology::linear(2),
            ControlMode::Greedy,
            ThreadedConfig {
                queues_per_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let ThreadedOutcome::Deadlocked { blocked } = out else {
            panic!("P3 must deadlock: {out:?}")
        };
        // Both cells are stuck on their first op, a read.
        assert_eq!(blocked.len(), 2);
        assert!(blocked.iter().all(|b| b.contains("op 0")), "{blocked:?}");
    }

    #[test]
    fn fig5_p2_latches_deadlock_buffering_completes() {
        let p = wl::fig5_p2();
        let t = Topology::linear(2);
        let latch = ThreadedConfig {
            queues_per_interval: 2,
            capacity: 0,
            ..Default::default()
        };
        let out = run_threaded(&p, &t, ControlMode::Greedy, latch).unwrap();
        assert!(out.is_deadlocked(), "latch queues deadlock P2: {out:?}");

        let buffered = ThreadedConfig {
            queues_per_interval: 2,
            capacity: 1,
            ..Default::default()
        };
        let out = run_threaded(&p, &t, ControlMode::Greedy, buffered).unwrap();
        assert!(out.is_completed(), "{out:?}");
    }

    #[test]
    fn multi_hop_forwarding_works_on_threads() {
        let p = wl::matvec(3).unwrap();
        let t = wl::matvec_topology(3);
        let mode = compatible(&p, &t, 3);
        let config = ThreadedConfig {
            queues_per_interval: 3,
            ..Default::default()
        };
        let out = run_threaded(&p, &t, mode, config).unwrap();
        assert!(out.is_completed(), "{out:?}");
    }

    #[test]
    fn seq_align_completes_with_two_queues_per_interval() {
        let p = wl::seq_align(3, 4).unwrap();
        let t = wl::seq_align_topology(3);
        let mode = compatible(&p, &t, 3);
        let config = ThreadedConfig {
            queues_per_interval: 3,
            ..Default::default()
        };
        let out = run_threaded(&p, &t, mode, config).unwrap();
        assert!(out.is_completed(), "{out:?}");
    }

    #[test]
    fn empty_program_completes() {
        let p = systolic_model::ProgramBuilder::new(2).build().unwrap();
        let out = run_threaded(
            &p,
            &Topology::linear(2),
            ControlMode::Greedy,
            ThreadedConfig::default(),
        )
        .unwrap();
        assert!(out.is_completed());
    }
}
