//! OS-thread runtime for systolic programs.
//!
//! Where `systolic-sim` steps a deterministic clock, this crate runs each
//! cell as a *real* thread against real bounded queues, with a controller
//! thread-safely enforcing a queue-assignment discipline ([`ControlMode`])
//! and a watchdog detecting genuine deadlock (global quiescence with work
//! remaining).
//!
//! The point: Theorem 1's guarantee is **scheduling independent**. Under
//! the compatible assignment discipline a deadlock-free program completes
//! no matter how the OS interleaves the threads — which is exactly what the
//! tests assert, repeatedly, without any timing control.
//!
//! # Examples
//!
//! ```
//! use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
//! use systolic_threaded::{run_threaded_compiled, ControlMode, ThreadedConfig};
//! use systolic_workloads::{fig7, fig7_topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = fig7(2);
//! let compiled =
//!     CompiledTopology::compile(&fig7_topology(), &AnalysisConfig::default()).into_shared();
//! let analyzer = Analyzer::new(std::sync::Arc::clone(&compiled));
//! let plan = analyzer.analyze(&program)?.into_plan();
//! let outcome = run_threaded_compiled(
//!     &program,
//!     &compiled,
//!     ControlMode::compatible(plan),
//!     ThreadedConfig::default(),
//! )?;
//! assert!(outcome.is_completed());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod controller;
mod queue;
mod runtime;

pub use controller::{ControlMode, Controller};
pub use queue::{Liveness, Poisoned, ThreadedQueue};
pub use runtime::{run_threaded, run_threaded_compiled, ThreadedConfig, ThreadedOutcome};
