//! Real bounded queues for the threaded runtime.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use systolic_model::MessageId;

/// Shared liveness state: a global progress counter bumped on every queue
/// or controller event, and a poison flag set by the watchdog when progress
/// stops with work remaining (= deadlock).
#[derive(Debug, Default)]
pub struct Liveness {
    /// Monotone event counter.
    pub progress: AtomicU64,
    /// Set once the watchdog declares deadlock; all waits abort.
    pub poisoned: AtomicBool,
}

impl Liveness {
    /// Records one unit of progress.
    pub fn bump(&self) {
        // lint: relaxed-ok(monotone heartbeat; watchdog only compares values across polls)
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// `true` once the watchdog has declared deadlock.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        // lint: relaxed-ok(flag is rechecked inside mutex-guarded condvar loops; staleness only delays abort by one timeout tick)
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// Error returned by blocking operations when the run is declared dead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Poisoned;

#[derive(Debug)]
struct Inner {
    buf: VecDeque<(MessageId, usize)>,
    /// Words that have departed (for latch writers awaiting departure).
    departed: usize,
}

/// A bounded FIFO queue shared between two threads.
///
/// `capacity == 0` gives the paper's latch semantics: [`ThreadedQueue::push`]
/// deposits the word and then blocks until it departs.
#[derive(Debug)]
pub struct ThreadedQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
    live: Arc<Liveness>,
}

impl ThreadedQueue {
    /// Creates a queue of `capacity` words tied to the shared liveness.
    #[must_use]
    pub fn new(capacity: usize, live: Arc<Liveness>) -> Self {
        ThreadedQueue {
            capacity,
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                departed: 0,
            }),
            cv: Condvar::new(),
            live,
        }
    }

    fn slots(&self) -> usize {
        self.capacity.max(1)
    }

    /// Wakes all waiters (used by the watchdog after poisoning).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Blocking push. With latch capacity (0) and `hold_until_departure`,
    /// also waits for the pushed word to leave — the paper's "cannot finish
    /// writing" semantics for cell programs (I/O forwarders pass `false`).
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the watchdog declares deadlock while waiting.
    pub fn push(
        &self,
        word: (MessageId, usize),
        hold_until_departure: bool,
    ) -> Result<(), Poisoned> {
        let mut inner = self.inner.lock();
        while inner.buf.len() >= self.slots() {
            if self.live.is_poisoned() {
                return Err(Poisoned);
            }
            self.cv.wait_for(&mut inner, Duration::from_millis(25));
        }
        let index = word.1;
        inner.buf.push_back(word);
        self.live.bump();
        self.cv.notify_all();
        if self.capacity == 0 && hold_until_departure {
            while inner.departed <= index {
                if self.live.is_poisoned() {
                    return Err(Poisoned);
                }
                self.cv.wait_for(&mut inner, Duration::from_millis(25));
            }
        }
        Ok(())
    }

    /// Blocking pop.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the watchdog declares deadlock while waiting.
    pub fn pop(&self) -> Result<(MessageId, usize), Poisoned> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(word) = inner.buf.pop_front() {
                inner.departed += 1;
                self.live.bump();
                self.cv.notify_all();
                return Ok(word);
            }
            if self.live.is_poisoned() {
                return Err(Poisoned);
            }
            self.cv.wait_for(&mut inner, Duration::from_millis(25));
        }
    }

    /// Blocks until a word is at the front and returns a copy of it
    /// without removing it — how a forwarder observes "the header of a
    /// message arrives" before requesting the next hop's queue.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the watchdog declares deadlock while waiting.
    pub fn peek(&self) -> Result<(MessageId, usize), Poisoned> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(&word) = inner.buf.front() {
                return Ok(word);
            }
            if self.live.is_poisoned() {
                return Err(Poisoned);
            }
            self.cv.wait_for(&mut inner, Duration::from_millis(25));
        }
    }

    /// Current occupancy (for diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.inner.lock().buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn live() -> Arc<Liveness> {
        Arc::new(Liveness::default())
    }

    #[test]
    fn push_pop_roundtrip() {
        let q = ThreadedQueue::new(2, live());
        q.push((MessageId::new(0), 0), false).unwrap();
        q.push((MessageId::new(0), 1), false).unwrap();
        assert_eq!(q.occupancy(), 2);
        assert_eq!(q.pop().unwrap(), (MessageId::new(0), 0));
        assert_eq!(q.pop().unwrap(), (MessageId::new(0), 1));
    }

    #[test]
    fn full_queue_blocks_until_pop() {
        let l = live();
        let q = Arc::new(ThreadedQueue::new(1, l));
        q.push((MessageId::new(0), 0), false).unwrap();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.push((MessageId::new(0), 1), false));
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "push must block while full");
        q.pop().unwrap();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn latch_push_waits_for_departure() {
        let l = live();
        let q = Arc::new(ThreadedQueue::new(0, Arc::clone(&l)));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.push((MessageId::new(0), 0), true));
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "latch write completes only on departure");
        assert_eq!(q.pop().unwrap(), (MessageId::new(0), 0));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn poison_unblocks_waiters() {
        let l = live();
        let q = Arc::new(ThreadedQueue::new(1, Arc::clone(&l)));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(10));
        l.poisoned.store(true, Ordering::Relaxed);
        q.notify_all();
        assert_eq!(t.join().unwrap(), Err(Poisoned));
    }
}
