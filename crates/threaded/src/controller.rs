//! The queue-assignment controller: the threaded runtime's enforcement
//! point for the paper's compatible-assignment rules.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use systolic_core::CommPlan;
use systolic_model::{Hop, Interval, MessageId};

use crate::{Liveness, Poisoned};

/// Which assignment discipline the controller enforces.
///
/// Plan-driven modes hold the certified plan as an [`Arc<CommPlan>`]: the
/// serving layer and batch runners share one plan across many runtimes
/// without deep-cloning. Use [`ControlMode::compatible`] /
/// [`ControlMode::dedicated`] to build them from owned or shared plans.
#[derive(Clone, Debug)]
pub enum ControlMode {
    /// The paper's compatible dynamic assignment (ordered + simultaneous
    /// rules, Section 7), driven by the plan's labels and competing sets.
    Compatible(Arc<CommPlan>),
    /// Static assignment: every message owns a dedicated queue on each
    /// interval it crosses, precomputed from the plan's routes. Requires
    /// enough queues; "automatically compatible" (Section 7).
    Static(Arc<CommPlan>),
    /// First-come-first-served, label-blind (the Fig. 7 strawman).
    Fifo,
    /// Any free queue to any requester.
    Greedy,
}

impl ControlMode {
    /// [`ControlMode::Compatible`] from an owned or shared plan.
    #[must_use]
    pub fn compatible(plan: impl Into<Arc<CommPlan>>) -> Self {
        ControlMode::Compatible(plan.into())
    }

    /// [`ControlMode::Static`] from an owned or shared plan.
    #[must_use]
    pub fn dedicated(plan: impl Into<Arc<CommPlan>>) -> Self {
        ControlMode::Static(plan.into())
    }

    /// Short name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ControlMode::Compatible(_) => "compatible",
            ControlMode::Static(_) => "static",
            ControlMode::Fifo => "fifo",
            ControlMode::Greedy => "greedy",
        }
    }
}

#[derive(Debug, Default)]
struct CtrlState {
    /// Free queue indices per interval.
    free: BTreeMap<Interval, Vec<usize>>,
    /// Live assignments.
    live: BTreeMap<(MessageId, Interval), usize>,
    /// Ever-granted history (the ordered-assignment predicate).
    history: BTreeSet<(MessageId, Interval)>,
    /// FIFO arrival order per interval.
    line: BTreeMap<Interval, VecDeque<MessageId>>,
}

/// Grants queue indices to messages under a [`ControlMode`].
///
/// Plan-derived decision tables — the per-direction queue ranges of the
/// compatible mode, the dedicated slots of the static mode — are
/// precomputed once at construction, so the per-grant work under the lock
/// is a table lookup rather than a scan of the plan.
#[derive(Debug)]
pub struct Controller {
    mode: ControlMode,
    /// Compatible mode: per-direction sub-pool of queue indices on each
    /// interval (`CommPlan::direction_queue_ranges`).
    ranges: BTreeMap<Hop, std::ops::Range<usize>>,
    /// Static mode: dedicated queue slot per `(message, interval)`.
    slots: BTreeMap<(MessageId, Interval), usize>,
    state: Mutex<CtrlState>,
    cv: Condvar,
    live_flag: Arc<Liveness>,
}

impl Controller {
    /// Creates a controller over `intervals`, each with
    /// `queues_per_interval` queues.
    #[must_use]
    pub fn new(
        mode: ControlMode,
        intervals: impl IntoIterator<Item = Interval>,
        queues_per_interval: usize,
        live_flag: Arc<Liveness>,
    ) -> Self {
        let mut state = CtrlState::default();
        for iv in intervals {
            state.free.insert(iv, (0..queues_per_interval).collect());
        }
        let mut ranges = BTreeMap::new();
        let mut slots = BTreeMap::new();
        match &mode {
            ControlMode::Compatible(plan) => {
                ranges = plan.direction_queue_ranges();
            }
            ControlMode::Static(plan) => {
                // Dedicated slot: the i-th message crossing the interval
                // (in declaration order) owns queue i. Deterministic and
                // collision-free when the pool is large enough.
                let mut used: BTreeMap<Interval, usize> = BTreeMap::new();
                for (m, route) in plan.routes().iter() {
                    for iv in route.intervals() {
                        let slot = used.entry(iv).or_insert(0);
                        slots.insert((m, iv), *slot);
                        *slot += 1;
                    }
                }
            }
            ControlMode::Fifo | ControlMode::Greedy => {}
        }
        Controller {
            mode,
            ranges,
            slots,
            state: Mutex::new(state),
            cv: Condvar::new(),
            live_flag,
        }
    }

    /// Wakes all waiters (used by the watchdog after poisoning).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Blocks until `message` holds a queue on `hop.interval()` and returns
    /// its index. Raised by the sender (first hop) or the forwarder of that
    /// hop.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the watchdog declares deadlock while waiting.
    pub fn acquire(&self, message: MessageId, hop: Hop) -> Result<usize, Poisoned> {
        let interval = hop.interval();
        let mut st = self.state.lock();
        if let ControlMode::Fifo = self.mode {
            let line = st.line.entry(interval).or_default();
            if !line.contains(&message) {
                line.push_back(message);
            }
        }
        loop {
            if let Some(&idx) = st.live.get(&(message, interval)) {
                return Ok(idx); // possibly a reservation made for us
            }
            if self.try_grant(&mut st, message, interval) {
                self.live_flag.bump();
                self.cv.notify_all();
                continue; // the grant inserted our live entry
            }
            if self.live_flag.is_poisoned() {
                return Err(Poisoned);
            }
            self.cv.wait_for(&mut st, Duration::from_millis(25));
        }
    }

    /// Blocks until someone (sender or forwarder) has secured a queue for
    /// `message` on `interval` — used by readers to find their queue.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the watchdog declares deadlock while waiting.
    pub fn await_assignment(
        &self,
        message: MessageId,
        interval: Interval,
    ) -> Result<usize, Poisoned> {
        let mut st = self.state.lock();
        loop {
            if let Some(&idx) = st.live.get(&(message, interval)) {
                return Ok(idx);
            }
            if self.live_flag.is_poisoned() {
                return Err(Poisoned);
            }
            self.cv.wait_for(&mut st, Duration::from_millis(25));
        }
    }

    /// Releases `message`'s queue on `interval` after its last word passed.
    ///
    /// # Panics
    ///
    /// Panics if the message holds no queue there.
    pub fn release(&self, message: MessageId, interval: Interval) {
        let mut st = self.state.lock();
        let idx = st
            .live
            .remove(&(message, interval))
            .expect("release without live assignment");
        st.free.entry(interval).or_default().push(idx);
        self.live_flag.bump();
        self.cv.notify_all();
    }

    /// Attempts a grant for `message` under the mode's rules. Returns true
    /// if any grant was made (the caller rechecks its live entry).
    fn try_grant(&self, st: &mut CtrlState, message: MessageId, interval: Interval) -> bool {
        match &self.mode {
            ControlMode::Greedy => {
                let free = st.free.entry(interval).or_default();
                if let Some(idx) = free.pop() {
                    st.live.insert((message, interval), idx);
                    st.history.insert((message, interval));
                    true
                } else {
                    false
                }
            }
            ControlMode::Fifo => {
                // Only the head of the line may take a queue.
                let head = st.line.get(&interval).and_then(|l| l.front().copied());
                if head != Some(message) {
                    return false;
                }
                let free = st.free.entry(interval).or_default();
                if let Some(idx) = free.pop() {
                    st.live.insert((message, interval), idx);
                    st.history.insert((message, interval));
                    st.line.get_mut(&interval).expect("line exists").pop_front();
                    true
                } else {
                    false
                }
            }
            ControlMode::Static(_) => {
                // Precomputed dedicated slot (see `Controller::new`).
                let Some(&slot) = self.slots.get(&(message, interval)) else {
                    return false;
                };
                let free = st.free.entry(interval).or_default();
                let Some(pos) = free.iter().position(|&q| q == slot) else {
                    return false;
                };
                free.remove(pos);
                st.live.insert((message, interval), slot);
                st.history.insert((message, interval));
                true
            }
            ControlMode::Compatible(plan) => {
                let label = plan.label(message);
                // Find this message's hop on the interval to get competitors.
                let route = plan.route(message);
                let Some(hop) = route.hops().find(|h| h.interval() == interval) else {
                    return false;
                };
                let competitors = plan.competing().on_hop(hop);
                // Ordered rule.
                let smaller_pending = competitors.iter().any(|&other| {
                    plan.label(other) < label && !st.history.contains(&(other, interval))
                });
                if smaller_pending {
                    return false;
                }
                // Simultaneous rule: grant the whole equal-label group.
                let group: Vec<MessageId> = competitors
                    .iter()
                    .copied()
                    .filter(|&other| {
                        plan.label(other) == label && !st.history.contains(&(other, interval))
                    })
                    .collect();
                // Per-direction sub-pool, precomputed at construction
                // (`CommPlan::direction_queue_ranges`): opposite-direction
                // messages must not starve this hop's competing set.
                let range = self.ranges.get(&hop).cloned().unwrap_or(0..0);
                let free = st.free.entry(interval).or_default();
                let usable: Vec<usize> =
                    free.iter().copied().filter(|q| range.contains(q)).collect();
                if usable.len() < group.len() {
                    return false;
                }
                for (member, idx) in group.into_iter().zip(usable) {
                    let free = st.free.entry(interval).or_default();
                    let pos = free.iter().position(|&q| q == idx).expect("usable is free");
                    free.remove(pos);
                    st.live.insert((member, interval), idx);
                    st.history.insert((member, interval));
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::CellId;

    fn live() -> Arc<Liveness> {
        Arc::new(Liveness::default())
    }

    #[test]
    fn greedy_grants_immediately() {
        let iv = Interval::new(CellId::new(0), CellId::new(1));
        let c = Controller::new(ControlMode::Greedy, [iv], 1, live());
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        let idx = c.acquire(MessageId::new(0), hop).unwrap();
        assert_eq!(idx, 0);
        c.release(MessageId::new(0), iv);
        assert_eq!(c.acquire(MessageId::new(1), hop).unwrap(), 0);
    }

    #[test]
    fn fifo_blocks_second_until_release() {
        let iv = Interval::new(CellId::new(0), CellId::new(1));
        let l = live();
        let c = Arc::new(Controller::new(ControlMode::Fifo, [iv], 1, Arc::clone(&l)));
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        c.acquire(MessageId::new(0), hop).unwrap();
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || c2.acquire(MessageId::new(1), hop));
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished());
        c.release(MessageId::new(0), iv);
        assert_eq!(t.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn compatible_orders_by_label_across_threads() {
        // Fig. 7 plan: on interval c2-c3 (ids 2,3), C (label 2) precedes
        // B (label 3).
        let p = systolic_workloads::fig7(2);
        let plan = Analyzer::for_topology(
            &systolic_workloads::fig7_topology(),
            &AnalysisConfig::default(),
        )
        .analyze(&p)
        .unwrap()
        .into_plan();
        let iv = Interval::new(CellId::new(2), CellId::new(3));
        let hop = Hop::new(CellId::new(2), CellId::new(3));
        let l = live();
        let c = Arc::new(Controller::new(
            ControlMode::compatible(plan),
            [iv],
            1,
            Arc::clone(&l),
        ));
        let b = p.message_id("B").unwrap();
        let cc = p.message_id("C").unwrap();

        // B asks first but must wait; C is granted; after C releases, B gets it.
        let c2 = Arc::clone(&c);
        let tb = thread::spawn(move || c2.acquire(b, hop));
        thread::sleep(Duration::from_millis(20));
        assert!(!tb.is_finished(), "B must wait for C");
        assert_eq!(c.acquire(cc, hop).unwrap(), 0);
        c.release(cc, iv);
        assert_eq!(tb.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn await_assignment_sees_reservations() {
        let iv = Interval::new(CellId::new(0), CellId::new(1));
        let l = live();
        let c = Arc::new(Controller::new(
            ControlMode::Greedy,
            [iv],
            2,
            Arc::clone(&l),
        ));
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        let m = MessageId::new(5);
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || c2.await_assignment(m, iv));
        thread::sleep(Duration::from_millis(10));
        let idx = c.acquire(m, hop).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), idx);
    }

    #[test]
    fn poison_aborts_waiters() {
        let iv = Interval::new(CellId::new(0), CellId::new(1));
        let l = live();
        let c = Arc::new(Controller::new(
            ControlMode::Greedy,
            [iv],
            0,
            Arc::clone(&l),
        ));
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || c2.acquire(MessageId::new(0), hop));
        thread::sleep(Duration::from_millis(10));
        l.poisoned.store(true, std::sync::atomic::Ordering::Relaxed);
        c.notify_all();
        assert_eq!(t.join().unwrap(), Err(Poisoned));
    }
}

#[cfg(test)]
mod static_mode_tests {
    use super::*;
    use std::sync::Arc;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::CellId;

    #[test]
    fn static_mode_dedicates_distinct_slots() {
        let p = systolic_workloads::fig9();
        let config = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(&systolic_workloads::fig9_topology(), &config)
            .analyze(&p)
            .unwrap()
            .into_plan();
        let iv = Interval::new(CellId::new(0), CellId::new(1));
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        let live = Arc::new(crate::Liveness::default());
        let c = Controller::new(ControlMode::dedicated(plan), [iv], 2, live);
        let a = p.message_id("A").unwrap();
        let b = p.message_id("B").unwrap();
        let qa = c.acquire(a, hop).unwrap();
        let qb = c.acquire(b, hop).unwrap();
        assert_ne!(qa, qb, "dedicated queues are distinct");
        assert_eq!(ControlMode::Fifo.name(), "fifo");
    }
}
