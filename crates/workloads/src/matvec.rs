//! Matrix–vector multiplication on a linear array.
//!
//! `y = A·x` for an `n × n` matrix: cell `i` (1-based) holds row `i` of `A`.
//! The vector `x` streams away from the host through forwarding messages
//! `X1..Xn`; each cell accumulates its dot product locally and ships the
//! scalar result home as a *multi-hop* message `Yi: ci → host`, exercising
//! routes that cross several intervals.

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the `n × n` matrix–vector program on `host + n` cells.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn matvec(n: usize) -> Result<Program, ModelError> {
    assert!(n > 0, "matrix dimension must be positive");
    let mut s = ScheduleBuilder::new(n + 1);
    let mut names = vec!["host".to_owned()];
    names.extend((1..=n).map(|i| format!("c{i}")));
    s.name_cells(names);

    // X_i: cell (i-1) -> cell i carries the x vector (n words); cell i
    // consumes x_j at time i + j and forwards it at the same tick (the
    // schedule key orders the read before the dependent write by message
    // id: X_i is declared before X_{i+1}).
    let mut xs = Vec::with_capacity(n);
    for i in 1..=n {
        xs.push(s.message(format!("X{i}"), (i - 1) as u32, i as u32)?);
    }
    // Y_i: cell i -> host, one word, after cell i has seen all of x.
    let mut ys = Vec::with_capacity(n);
    for i in 1..=n {
        ys.push(s.message(format!("Y{i}"), i as u32, 0)?);
    }

    for i in 1..=n {
        // x_j crosses the (i-1, i) interval at time (i - 1) + j.
        s.transfer_n(xs[i - 1], (i - 1) as i64, 1, n);
        // y_i leaves cell i once x_n has been consumed there: time i + n.
        s.transfer(ys[i - 1], (i + n) as i64);
    }
    s.build()
}

/// The linear topology for [`matvec`]: host plus `n` cells.
#[must_use]
pub fn matvec_topology(n: usize) -> Topology {
    Topology::linear(n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, MessageRoutes};

    #[test]
    fn word_counts() {
        let p = matvec(4).unwrap();
        for i in 1..=4 {
            assert_eq!(p.word_count(p.message_id(&format!("X{i}")).unwrap()), 4);
            assert_eq!(p.word_count(p.message_id(&format!("Y{i}")).unwrap()), 1);
        }
        assert_eq!(p.total_words(), 4 * 4 + 4);
    }

    #[test]
    fn y_messages_are_multi_hop() {
        let p = matvec(3).unwrap();
        let routes = MessageRoutes::compute(&p, &matvec_topology(3)).unwrap();
        let y3 = p.message_id("Y3").unwrap();
        assert_eq!(routes.route(y3).num_hops(), 3);
        assert_eq!(routes.route(y3).receiver(), CellId::new(0));
    }

    #[test]
    fn host_writes_x_and_reads_all_y() {
        let p = matvec(3).unwrap();
        let host = p.cell(CellId::new(0));
        let writes = host.iter().filter(|o| o.is_write()).count();
        let reads = host.iter().filter(|o| o.is_read()).count();
        assert_eq!(writes, 3); // x vector
        assert_eq!(reads, 3); // y results
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = matvec(0);
    }

    #[test]
    fn n1_minimal() {
        let p = matvec(1).unwrap();
        assert_eq!(p.total_words(), 2);
    }
}
