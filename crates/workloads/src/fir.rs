//! Generalized FIR filtering on a linear array (paper, Fig. 2).
//!
//! A `k`-tap FIR filter over `n` input samples, on a host plus `k` cells.
//! Inputs flow away from the host (`X1: host → c1`, `X2: c1 → c2`, …,
//! each one word shorter than the last); partial results flow back
//! (`Yk: ck → c(k-1)`, …, `Y1: c1 → host`). Cell `i` holds weight
//! `w(k-i+1)`; the program of [`fig2_fir`](crate::fig2_fir) is exactly
//! `fir(3, 4)` with the paper's message names.

use systolic_model::{ModelError, Program, ProgramBuilder, Topology};

/// Builds the `k`-tap, `n`-input FIR program on `host + k` cells.
///
/// Messages are named `X1..Xk` (input stream, `Xi` carries `n - i + 1`
/// words) and `Y1..Yk` (result stream, each carrying `n - k + 1` words).
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `taps == 0` or `inputs < taps` (the filter needs at least one
/// full window).
pub fn fir(taps: usize, inputs: usize) -> Result<Program, ModelError> {
    assert!(taps > 0, "a FIR filter needs at least one tap");
    assert!(inputs >= taps, "need at least `taps` inputs for one output");
    let k = taps;
    let n = inputs;
    let m = n - k + 1; // number of outputs

    let mut b = ProgramBuilder::new(k + 1);
    let mut names = vec!["host".to_owned()];
    names.extend((1..=k).map(|i| format!("c{i}")));
    b.name_cells(names);

    // X_i: cell (i-1) -> cell i, length n - i + 1. (Cell 0 is the host.)
    for i in 1..=k {
        b.message(format!("X{i}"), (i - 1) as u32, i as u32)?;
    }
    // Y_i: cell i -> cell (i-1), length m.
    for i in 1..=k {
        b.message(format!("Y{i}"), i as u32, (i - 1) as u32)?;
    }

    // Host: write X1 continuously; after the k-th write, interleave reads.
    for j in 1..=n {
        b.write(0u32, "X1")?;
        if j >= k {
            b.read(0u32, "Y1")?;
        }
    }

    // Cell i (1-based): k - i prologue rounds, then m compute rounds.
    for i in 1..=k {
        let cell = i as u32;
        let x_in = format!("X{i}");
        let x_out = format!("X{}", i + 1);
        let y_in = format!("Y{}", i + 1);
        let y_out = format!("Y{i}");
        let x_out_len = n - i; // words of X_{i+1}

        for _ in 0..(k - i) {
            b.read(cell, &x_in)?;
            if i < k {
                b.write(cell, &x_out)?;
            }
        }
        for j in 1..=m {
            b.read(cell, &x_in)?;
            if i < k {
                b.read(cell, &y_in)?;
                if (k - i) + j <= x_out_len {
                    b.write(cell, &x_out)?;
                }
            }
            b.write(cell, &y_out)?;
        }
    }

    b.build()
}

/// The linear topology for [`fir`]: host plus `taps` cells.
#[must_use]
pub fn fir_topology(taps: usize) -> Topology {
    Topology::linear(taps + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, Op, OpKind};

    /// `fir(3, 4)` must be op-for-op identical to the paper's Fig. 2 program
    /// (modulo message names: X1=XA, X2=XB, X3=XC, Y1=YA, Y2=YB, Y3=YC).
    #[test]
    fn fir_3_4_reproduces_fig2() {
        let gen = fir(3, 4).unwrap();
        let fig = crate::fig2_fir();
        assert_eq!(gen.num_cells(), fig.num_cells());
        assert_eq!(gen.num_messages(), fig.num_messages());

        // Map generated names to figure names.
        let rename = [
            ("X1", "XA"),
            ("X2", "XB"),
            ("X3", "XC"),
            ("Y1", "YA"),
            ("Y2", "YB"),
            ("Y3", "YC"),
        ];
        for cell in gen.cell_ids() {
            let gen_ops: Vec<(OpKind, &str)> = gen
                .cell(cell)
                .iter()
                .map(|op: Op| {
                    let name = gen.message(op.message()).name();
                    let mapped = rename
                        .iter()
                        .find(|(g, _)| *g == name)
                        .map(|(_, f)| *f)
                        .unwrap();
                    (op.kind(), mapped)
                })
                .collect();
            let fig_ops: Vec<(OpKind, &str)> = fig
                .cell(cell)
                .iter()
                .map(|op: Op| (op.kind(), fig.message(op.message()).name()))
                .collect();
            assert_eq!(gen_ops, fig_ops, "cell {cell} differs from Fig. 2");
        }
    }

    #[test]
    fn word_counts_scale() {
        let p = fir(3, 10).unwrap();
        let count = |name: &str| p.word_count(p.message_id(name).unwrap());
        assert_eq!(count("X1"), 10);
        assert_eq!(count("X2"), 9);
        assert_eq!(count("X3"), 8);
        for y in ["Y1", "Y2", "Y3"] {
            assert_eq!(count(y), 8); // m = 10 - 3 + 1
        }
    }

    #[test]
    fn single_tap_degenerates_gracefully() {
        let p = fir(1, 5).unwrap();
        assert_eq!(p.num_cells(), 2);
        assert_eq!(p.word_count(p.message_id("X1").unwrap()), 5);
        assert_eq!(p.word_count(p.message_id("Y1").unwrap()), 5);
    }

    #[test]
    fn exact_window_one_output() {
        let p = fir(4, 4).unwrap();
        assert_eq!(p.word_count(p.message_id("Y1").unwrap()), 1);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn zero_taps_rejected() {
        let _ = fir(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least `taps` inputs")]
    fn too_few_inputs_rejected() {
        let _ = fir(4, 3);
    }

    #[test]
    fn topology_matches() {
        assert_eq!(fir_topology(3).num_cells(), fir(3, 4).unwrap().num_cells());
    }

    #[test]
    fn host_reads_every_output() {
        let p = fir(2, 6).unwrap();
        let host_reads = p
            .cell(CellId::new(0))
            .iter()
            .filter(|op| op.is_read())
            .count();
        assert_eq!(host_reads, 5);
    }
}
