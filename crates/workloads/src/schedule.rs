//! Deadlock-free programs by construction: schedule projection.
//!
//! Section 3.3 of the paper: "A general strategy is to write the cell
//! programs as if only one word in one message would be transferred in a
//! given step." This module generalizes that strategy: describe the global
//! transfer schedule — *which word of which message moves at which time* —
//! and project it onto per-cell op lists. Every projected program is
//! deadlock-free, because the crossing-off procedure can cross pairs in
//! exactly the schedule's key order.
//!
//! All the workload generators in this crate are built on this foundation,
//! as is the random-program generator that fuels the property tests.

use systolic_model::{CellId, CellProgram, MessageDecl, MessageId, ModelError, Op, Program};

/// Builds a [`Program`] from a global transfer schedule.
///
/// # Examples
///
/// A two-cell exchange, scheduled so it is deadlock-free:
///
/// ```
/// use systolic_workloads::ScheduleBuilder;
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let mut s = ScheduleBuilder::new(2);
/// let ab = s.message("AB", 0, 1)?;
/// let ba = s.message("BA", 1, 0)?;
/// s.transfer(ab, 0);
/// s.transfer(ba, 1);
/// let program = s.build()?;
/// assert_eq!(program.total_words(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ScheduleBuilder {
    names: Vec<String>,
    messages: Vec<MessageDecl>,
    /// `(message, time)` transfer events; words of a message are ordered by
    /// `(time, insertion order)`.
    transfers: Vec<(MessageId, i64)>,
}

impl ScheduleBuilder {
    /// A schedule over `num_cells` cells named `c0`…`c{n-1}`.
    #[must_use]
    pub fn new(num_cells: usize) -> Self {
        ScheduleBuilder {
            names: (0..num_cells).map(|i| format!("c{i}")).collect(),
            messages: Vec::new(),
            transfers: Vec::new(),
        }
    }

    /// Renames all cells.
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the cell count.
    pub fn name_cells<S: Into<String>>(&mut self, names: impl IntoIterator<Item = S>) -> &mut Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(names.len(), self.names.len(), "one name per cell");
        self.names = names;
        self
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.names.len()
    }

    /// Declares a message.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, out-of-range cells or sender == receiver.
    pub fn message(
        &mut self,
        name: impl Into<String>,
        sender: u32,
        receiver: u32,
    ) -> Result<MessageId, ModelError> {
        let name = name.into();
        if self.messages.iter().any(|m| m.name() == name) {
            return Err(ModelError::DuplicateMessage { name });
        }
        for cell in [sender, receiver] {
            if cell as usize >= self.names.len() {
                return Err(ModelError::CellOutOfRange {
                    cell: CellId::new(cell),
                    num_cells: self.names.len(),
                });
            }
        }
        let decl = MessageDecl::new(name, CellId::new(sender), CellId::new(receiver))?;
        self.messages.push(decl);
        Ok(MessageId::new((self.messages.len() - 1) as u32))
    }

    /// Schedules the transfer of the next word of `message` at `time`.
    pub fn transfer(&mut self, message: MessageId, time: i64) -> &mut Self {
        self.transfers.push((message, time));
        self
    }

    /// Schedules `n` consecutive words of `message` at times
    /// `start, start + step, …`.
    pub fn transfer_n(&mut self, message: MessageId, start: i64, step: i64, n: usize) -> &mut Self {
        for k in 0..n {
            self.transfers.push((message, start + step * k as i64));
        }
        self
    }

    /// Projects the schedule onto per-cell programs.
    ///
    /// Each transfer becomes a `W` op in the sender's program and an `R` op
    /// in the receiver's, both placed at the schedule key
    /// `(time, message, word)`. Cells execute their ops in key order, so the
    /// crossing-off procedure succeeds in exactly that order: the result is
    /// **deadlock-free by construction**.
    ///
    /// # Errors
    ///
    /// Propagates [`Program::new`] validation errors (none are expected for
    /// schedules built through this API).
    pub fn build(&self) -> Result<Program, ModelError> {
        // Assign word indices per message: order transfers by (time,
        // insertion order) within each message.
        let mut word_counter = vec![0usize; self.messages.len()];
        let mut events: Vec<(i64, MessageId, usize)> = Vec::with_capacity(self.transfers.len());
        let mut ordered = self.transfers.clone();
        ordered.sort_by_key(|&(_, t)| t); // stable: preserves insertion order per time
        for (m, t) in ordered {
            let w = word_counter[m.index()];
            word_counter[m.index()] += 1;
            events.push((t, m, w));
        }
        // Global key order.
        events.sort_by_key(|&(t, m, w)| (t, m, w));

        let mut cells: Vec<Vec<Op>> = vec![Vec::new(); self.names.len()];
        for (_, m, _) in &events {
            let decl = &self.messages[m.index()];
            cells[decl.sender().index()].push(Op::write(*m));
            cells[decl.receiver().index()].push(Op::read(*m));
        }
        Program::new(
            self.names.clone(),
            self.messages.clone(),
            cells.into_iter().map(CellProgram::new).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_in_key_order() {
        let mut s = ScheduleBuilder::new(3);
        let a = s.message("A", 0, 1).unwrap();
        let b = s.message("B", 1, 2).unwrap();
        // A's word at t=0, B's word at t=1: c1 must read A before writing B.
        s.transfer(b, 1);
        s.transfer(a, 0);
        let p = s.build().unwrap();
        let c1 = p.cell(CellId::new(1));
        assert_eq!(c1.ops(), &[Op::read(a), Op::write(b)]);
    }

    #[test]
    fn ties_break_by_message_id_everywhere() {
        let mut s = ScheduleBuilder::new(2);
        let a = s.message("A", 0, 1).unwrap();
        let b = s.message("B", 1, 0).unwrap();
        s.transfer(b, 5);
        s.transfer(a, 5);
        let p = s.build().unwrap();
        // Same time: message id order (A first) in *both* cells.
        assert_eq!(p.cell(CellId::new(0)).ops(), &[Op::write(a), Op::read(b)]);
        assert_eq!(p.cell(CellId::new(1)).ops(), &[Op::read(a), Op::write(b)]);
    }

    #[test]
    fn transfer_n_schedules_a_stream() {
        let mut s = ScheduleBuilder::new(2);
        let a = s.message("A", 0, 1).unwrap();
        s.transfer_n(a, 0, 2, 4);
        let p = s.build().unwrap();
        assert_eq!(p.word_count(a), 4);
        assert_eq!(p.cell(CellId::new(0)).len(), 4);
    }

    #[test]
    fn same_time_same_message_orders_by_insertion() {
        let mut s = ScheduleBuilder::new(2);
        let a = s.message("A", 0, 1).unwrap();
        s.transfer(a, 7);
        s.transfer(a, 7);
        let p = s.build().unwrap();
        assert_eq!(p.word_count(a), 2);
    }

    #[test]
    fn duplicate_message_rejected() {
        let mut s = ScheduleBuilder::new(2);
        s.message("A", 0, 1).unwrap();
        assert!(s.message("A", 1, 0).is_err());
    }

    #[test]
    fn bad_cells_rejected() {
        let mut s = ScheduleBuilder::new(2);
        assert!(s.message("A", 0, 9).is_err());
        assert!(s.message("B", 1, 1).is_err());
    }

    #[test]
    fn rename_cells() {
        let mut s = ScheduleBuilder::new(2);
        s.name_cells(["host", "cell"]);
        let a = s.message("A", 0, 1).unwrap();
        s.transfer(a, 0);
        let p = s.build().unwrap();
        assert_eq!(p.cell_name(CellId::new(0)), "host");
    }
}
