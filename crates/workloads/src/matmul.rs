//! Matrix–matrix multiplication on a 2-D mesh.
//!
//! The classic systolic `C = A·B` on a `rows × cols` mesh with inner
//! dimension `k`: values of `A` flow east, values of `B` flow south, both
//! skewed so that cell `(i, j)` sees `a[i][t]` and `b[t][j]` together at
//! logical step `i + j + t`. West-column cells source the `A` stream,
//! north-row cells source the `B` stream (the paper's preloading idiom).

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the mesh matmul program.
///
/// Messages `AE{i}_{j}` carry the `A` stream from `(i, j)` to `(i, j+1)`
/// (`k` words) and `BS{i}_{j}` carry the `B` stream from `(i, j)` to
/// `(i+1, j)`.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn mesh_matmul(rows: usize, cols: usize, k: usize) -> Result<Program, ModelError> {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    assert!(k > 0, "inner dimension must be positive");
    let mut s = ScheduleBuilder::new(rows * cols);
    let id = |i: usize, j: usize| (i * cols + j) as u32;

    let mut east = Vec::new(); // (i, j, message) for j+1 < cols
    let mut south = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                east.push((
                    i,
                    j,
                    s.message(format!("AE{i}_{j}"), id(i, j), id(i, j + 1))?,
                ));
            }
            if i + 1 < rows {
                south.push((
                    i,
                    j,
                    s.message(format!("BS{i}_{j}"), id(i, j), id(i + 1, j))?,
                ));
            }
        }
    }

    // Word t of AE{i}_{j} leaves (i, j) right after its use at logical step
    // i + j + t. A cell's incoming words are scheduled two ticks before its
    // outgoing ones (the incoming hop's `i + j` is one smaller), so every
    // read precedes the writes that depend on it.
    for &(i, j, m) in &east {
        for t in 0..k {
            s.transfer(m, 2 * (i + j + t) as i64 + 1);
        }
    }
    for &(i, j, m) in &south {
        for t in 0..k {
            s.transfer(m, 2 * (i + j + t) as i64 + 1);
        }
    }
    s.build()
}

/// The mesh topology for [`mesh_matmul`].
#[must_use]
pub fn matmul_topology(rows: usize, cols: usize) -> Topology {
    Topology::mesh(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, MessageRoutes};

    #[test]
    fn message_and_word_counts() {
        let p = mesh_matmul(2, 3, 4).unwrap();
        // East links: 2 rows x 2 = 4; south links: 1 x 3 = 3.
        assert_eq!(p.num_messages(), 7);
        assert_eq!(p.total_words(), 7 * 4);
    }

    #[test]
    fn corner_cells_have_expected_roles() {
        let p = mesh_matmul(2, 2, 3).unwrap();
        // (0,0) only writes (sources both streams).
        let nw = p.cell(CellId::new(0));
        assert!(nw.iter().all(|o| o.is_write()));
        // (1,1) only reads (sinks both streams).
        let se = p.cell(CellId::new(3));
        assert!(se.iter().all(|o| o.is_read()));
    }

    #[test]
    fn all_routes_are_single_hop_on_the_mesh() {
        let p = mesh_matmul(3, 3, 2).unwrap();
        let routes = MessageRoutes::compute(&p, &matmul_topology(3, 3)).unwrap();
        assert!(routes.iter().all(|(_, r)| r.num_hops() == 1));
    }

    #[test]
    fn middle_cell_interleaves_reads_and_writes() {
        let p = mesh_matmul(3, 3, 1).unwrap();
        // Cell (1,1) = id 4 reads AE1_0 and BS0_1, writes AE1_1 and BS1_1.
        let mid = p.cell(CellId::new(4));
        assert_eq!(mid.iter().filter(|o| o.is_read()).count(), 2);
        assert_eq!(mid.iter().filter(|o| o.is_write()).count(), 2);
        // Incoming transfers are keyed two ticks earlier: reads come first.
        assert!(mid.get(0).unwrap().is_read());
        assert!(mid.get(mid.len() - 1).unwrap().is_write());
    }

    #[test]
    fn single_cell_mesh_is_empty_program() {
        let p = mesh_matmul(1, 1, 5).unwrap();
        assert_eq!(p.num_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = mesh_matmul(0, 2, 1);
    }
}
