//! Token circulation on a ring topology.
//!
//! A token starts at cell 0 and makes `laps` complete trips around an
//! `n`-cell ring; every hop is its own one-word message. Exercises the
//! [`Topology::ring`] routing and gives the runtimes a long chain of
//! strictly ordered transfers.

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the token-ring program: message `T{lap}_{i}` carries the token
/// from cell `i` to cell `(i+1) mod n` during `lap`.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `n < 3` (rings need three cells) or `laps == 0`.
pub fn token_ring(n: usize, laps: usize) -> Result<Program, ModelError> {
    assert!(n >= 3, "a ring needs at least three cells");
    assert!(laps > 0, "need at least one lap");
    let mut s = ScheduleBuilder::new(n);
    let mut t = 0i64;
    for lap in 0..laps {
        for i in 0..n {
            let m = s.message(format!("T{lap}_{i}"), i as u32, ((i + 1) % n) as u32)?;
            s.transfer(m, t);
            t += 1;
        }
    }
    s.build()
}

/// The ring topology for [`token_ring`].
#[must_use]
pub fn ring_topology(n: usize) -> Topology {
    Topology::ring(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, MessageRoutes};

    #[test]
    fn one_message_per_hop_per_lap() {
        let p = token_ring(4, 3).unwrap();
        assert_eq!(p.num_messages(), 12);
        assert_eq!(p.total_words(), 12);
    }

    #[test]
    fn each_cell_alternates_receive_send() {
        let p = token_ring(3, 2).unwrap();
        // Cell 1: R(T0_0) W(T0_1) R(T1_0) W(T1_1).
        let c1 = p.cell(CellId::new(1));
        let kinds: Vec<bool> = c1.iter().map(|o| o.is_read()).collect();
        assert_eq!(kinds, vec![true, false, true, false]);
    }

    #[test]
    fn cell0_starts_by_sending() {
        let p = token_ring(3, 1).unwrap();
        assert!(p.cell(CellId::new(0)).get(0).unwrap().is_write());
    }

    #[test]
    fn wraparound_hop_is_single_hop_on_ring() {
        let p = token_ring(4, 1).unwrap();
        let routes = MessageRoutes::compute(&p, &ring_topology(4)).unwrap();
        let back = p.message_id("T0_3").unwrap(); // c3 -> c0
        assert_eq!(routes.route(back).num_hops(), 1);
    }

    #[test]
    #[should_panic(expected = "three cells")]
    fn tiny_ring_rejected() {
        let _ = token_ring(2, 1);
    }

    #[test]
    #[should_panic(expected = "one lap")]
    fn zero_laps_rejected() {
        let _ = token_ring(3, 0);
    }
}
