//! Sequence alignment on a linear array (P-NAC style).
//!
//! The paper cites Lopresti's P-NAC, "a systolic array for comparing
//! nucleic acid sequences". One sequence (the *query*, length `k`) is
//! preloaded one character per cell; the other (the *database*, length `m`)
//! streams through. Each cell forwards both the database character stream
//! and the running dynamic-programming score stream to its right neighbour
//! — two same-direction streams whose interleaved access makes them
//! *related*, so the analysis demands two queues per interval in the flow
//! direction.
//!
//! The program is produced by schedule projection (the Section 3.3
//! strategy), which software-pipelines each cell: reads of the next
//! database character overlap the writes of the previous one. A strict
//! read-read-write-write round per character would in fact be *deadlocked*
//! under unbuffered queues — the host cannot start draining final scores
//! until it finishes feeding, which stalls the last cell and, link by
//! link, the whole array. (It becomes deadlock-free again under lookahead
//! with enough buffering; see the lookahead experiments.)

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the alignment program: `host + k` cells, database length `m`.
///
/// Messages per link `i → i+1`: `D{i}` (database characters, `m` words) and
/// `S{i}` (scores, `m` words), interleaved per character, plus the final
/// score stream `S{k}: ck → host`, routed back across every interval.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `k == 0` or `m == 0`.
pub fn seq_align(k: usize, m: usize) -> Result<Program, ModelError> {
    assert!(k > 0, "query must be nonempty");
    assert!(m > 0, "database must be nonempty");
    let mut s = ScheduleBuilder::new(k + 1);
    let mut names = vec!["host".to_owned()];
    names.extend((1..=k).map(|i| format!("c{i}")));
    s.name_cells(names);

    // Declaration order D{i} before S{i} keeps the per-key tie-break
    // reading the character before the score, matching the DP dependence.
    let mut links = Vec::with_capacity(k);
    for i in 0..k {
        let d = s.message(format!("D{i}"), i as u32, (i + 1) as u32)?;
        let sc = s.message(format!("S{i}"), i as u32, (i + 1) as u32)?;
        links.push((d, sc));
    }
    let final_scores = s.message(format!("S{k}"), k as u32, 0)?;

    // Wavefront schedule: cell i emits (D, S) for database character j at
    // step i + j (cell 0 is the host feeding the array).
    for (i, &(d, sc)) in links.iter().enumerate() {
        for j in 0..m {
            let t = 2 * (i + j) as i64 + 1;
            s.transfer(d, t);
            s.transfer(sc, t);
        }
    }
    for j in 0..m {
        s.transfer(final_scores, 2 * (k + j) as i64 + 1);
    }
    s.build()
}

/// The linear topology for [`seq_align`].
#[must_use]
pub fn seq_align_topology(k: usize) -> Topology {
    Topology::linear(k + 1)
}

/// The *strict* variant: every cell performs exactly
/// `R(D) R(S) W(D) W(S)` per database character, and the host writes the
/// whole database before draining any score.
///
/// Under unbuffered queues this program is **deadlocked** whenever
/// `m > k`: the last cell stalls on its first score write (the host is
/// still feeding), and the stall propagates back link by link until the
/// host itself wedges — the textbook shape of Section 4. With lookahead,
/// buffering proportional to the pipeline depth makes it deadlock-free
/// again, which is exactly what experiment E6 sweeps.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `k == 0` or `m == 0`.
pub fn seq_align_strict(k: usize, m: usize) -> Result<Program, ModelError> {
    assert!(k > 0, "query must be nonempty");
    assert!(m > 0, "database must be nonempty");
    let mut b = systolic_model::ProgramBuilder::new(k + 1);
    let mut names = vec!["host".to_owned()];
    names.extend((1..=k).map(|i| format!("c{i}")));
    b.name_cells(names);

    for i in 0..k {
        b.message(format!("D{i}"), i as u32, (i + 1) as u32)?;
        b.message(format!("S{i}"), i as u32, (i + 1) as u32)?;
    }
    b.message(format!("S{k}"), k as u32, 0)?;

    for _ in 0..m {
        b.write(0u32, "D0")?;
        b.write(0u32, "S0")?;
    }
    b.read_n(0u32, &format!("S{k}"), m)?;

    for i in 1..=k {
        let cell = i as u32;
        for _ in 0..m {
            b.read(cell, &format!("D{}", i - 1))?;
            b.read(cell, &format!("S{}", i - 1))?;
            if i < k {
                b.write(cell, &format!("D{i}"))?;
            }
            b.write(cell, &format!("S{i}"))?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, MessageRoutes};

    #[test]
    fn word_counts() {
        let p = seq_align(3, 5).unwrap();
        for i in 0..3 {
            assert_eq!(p.word_count(p.message_id(&format!("D{i}")).unwrap()), 5);
            assert_eq!(p.word_count(p.message_id(&format!("S{i}")).unwrap()), 5);
        }
        assert_eq!(p.word_count(p.message_id("S3").unwrap()), 5);
    }

    #[test]
    fn middle_cells_pipeline_reads_ahead_of_writes() {
        let p = seq_align(2, 3).unwrap();
        let c1 = p.cell(CellId::new(1));
        // Prologue: the first two ops read (D0, S0); epilogue: the last two
        // write (D1, S1); reads and writes balance overall.
        assert!(c1.get(0).unwrap().is_read());
        assert!(c1.get(1).unwrap().is_read());
        assert!(c1.get(c1.len() - 1).unwrap().is_write());
        assert!(c1.get(c1.len() - 2).unwrap().is_write());
        assert_eq!(c1.iter().filter(|o| o.is_read()).count(), 6);
        assert_eq!(c1.iter().filter(|o| o.is_write()).count(), 6);
    }

    #[test]
    fn character_read_precedes_score_read() {
        let p = seq_align(2, 2).unwrap();
        let c1 = p.cell(CellId::new(1));
        let d0 = p.message_id("D0").unwrap();
        let s0 = p.message_id("S0").unwrap();
        let first_d = c1
            .iter()
            .position(|o| o.is_read() && o.message() == d0)
            .unwrap();
        let first_s = c1
            .iter()
            .position(|o| o.is_read() && o.message() == s0)
            .unwrap();
        assert!(first_d < first_s);
    }

    #[test]
    fn final_scores_route_back_to_host() {
        let p = seq_align(3, 1).unwrap();
        let routes = MessageRoutes::compute(&p, &seq_align_topology(3)).unwrap();
        let s3 = p.message_id("S3").unwrap();
        assert_eq!(routes.route(s3).num_hops(), 3);
    }

    #[test]
    fn last_cell_does_not_forward_d() {
        let p = seq_align(2, 3).unwrap();
        assert!(p.message_id("D2").is_none());
    }

    #[test]
    #[should_panic(expected = "query")]
    fn empty_query_rejected() {
        let _ = seq_align(0, 3);
    }

    #[test]
    #[should_panic(expected = "database")]
    fn empty_database_rejected() {
        let _ = seq_align(3, 0);
    }

    #[test]
    fn strict_variant_alternates_rrww_per_character() {
        let p = seq_align_strict(2, 3).unwrap();
        let c1 = p.cell(CellId::new(1));
        let kinds: Vec<bool> = c1.iter().map(|o| o.is_read()).collect();
        assert_eq!(
            kinds,
            vec![true, true, false, false, true, true, false, false, true, true, false, false]
        );
    }

    #[test]
    fn strict_variant_matches_word_counts_of_pipelined() {
        let a = seq_align(3, 4).unwrap();
        let b = seq_align_strict(3, 4).unwrap();
        assert_eq!(a.num_messages(), b.num_messages());
        for m in a.message_ids() {
            assert_eq!(a.word_count(m), b.word_count(m));
        }
    }
}
