//! Back substitution for triangular systems on a linear array.
//!
//! Solves `L·x = b` for lower-triangular `L` (unit diagonal held in the
//! cells). Cell `i` computes `x_i` once it has received `b_i` (streamed
//! from the host) and the partial sums of the already-solved unknowns
//! flowing down the chain; it then broadcasts `x_i` onward so the later
//! cells can eliminate it. Two same-direction streams per link (the `b`/
//! partial-sum stream and the solved-`x` stream), like the classic
//! triangular-solver systolic arrays.

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the back-substitution program for an `n × n` lower-triangular
/// system on `host + n` cells.
///
/// Messages per link `i → i+1`: `B{i}` (right-hand-side / partial sums,
/// `n - i` words — one per not-yet-solved unknown) and `X{i}` (solved
/// unknowns, `i` words for the downstream cells), plus `XOUT: cn → host`
/// returning all `n` solutions.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn back_substitution(n: usize) -> Result<Program, ModelError> {
    assert!(n > 0, "system dimension must be positive");
    let mut s = ScheduleBuilder::new(n + 1);
    let mut names = vec!["host".to_owned()];
    names.extend((1..=n).map(|i| format!("c{i}")));
    s.name_cells(names);

    // B{i}: cell i -> cell i+1 carries the remaining right-hand sides
    // (n - i words). X{i}: cell i -> cell i+1 carries the solved unknowns
    // (i words, for i >= 1). XOUT: cn -> host carries all n solutions.
    let mut b_msgs = Vec::with_capacity(n);
    let mut x_msgs = Vec::with_capacity(n);
    for i in 0..n {
        b_msgs.push(s.message(format!("B{i}"), i as u32, (i + 1) as u32)?);
        if i >= 1 {
            x_msgs.push(s.message(format!("X{i}"), i as u32, (i + 1) as u32)?);
        }
    }
    let xout = s.message("XOUT", n as u32, 0)?;

    // Wavefront: cell i solves x_i at step 2i; word j of B{i} crosses at
    // step 2(i + j) + 1; word j of X{i} (= x_{j+1}) crosses at 2(i) + 1
    // once x_{j+1} is known, i.e. at 2*max(i, j+1) ... since i > j for all
    // words of X{i}, it crosses at 2i + 1.
    for (i, &b) in b_msgs.iter().enumerate() {
        for j in 0..(n - i) {
            s.transfer(b, 2 * (i + j) as i64 + 1);
        }
    }
    for (idx, &x) in x_msgs.iter().enumerate() {
        let i = idx + 1; // X{i} exists for i = 1..n-1
        for _ in 0..i {
            s.transfer(x, 2 * i as i64 + 1);
        }
    }
    for _ in 0..n {
        s.transfer(xout, 2 * n as i64 + 1);
    }
    s.build()
}

/// The linear topology for [`back_substitution`].
#[must_use]
pub fn back_substitution_topology(n: usize) -> Topology {
    Topology::linear(n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, MessageRoutes};

    #[test]
    fn word_counts_follow_triangle_shape() {
        let p = back_substitution(4).unwrap();
        let count = |name: &str| p.word_count(p.message_id(name).unwrap());
        assert_eq!(count("B0"), 4);
        assert_eq!(count("B1"), 3);
        assert_eq!(count("B2"), 2);
        assert_eq!(count("B3"), 1);
        assert_eq!(count("X1"), 1);
        assert_eq!(count("X2"), 2);
        assert_eq!(count("X3"), 3);
        assert_eq!(count("XOUT"), 4);
    }

    #[test]
    fn host_feeds_b_and_collects_solutions() {
        let p = back_substitution(3).unwrap();
        let host = p.cell(CellId::new(0));
        assert_eq!(host.iter().filter(|o| o.is_write()).count(), 3);
        assert_eq!(host.iter().filter(|o| o.is_read()).count(), 3);
    }

    #[test]
    fn solutions_route_back_across_the_whole_array() {
        let p = back_substitution(3).unwrap();
        let routes = MessageRoutes::compute(&p, &back_substitution_topology(3)).unwrap();
        let xout = p.message_id("XOUT").unwrap();
        assert_eq!(routes.route(xout).num_hops(), 3);
    }

    #[test]
    fn first_cell_receives_no_x_stream() {
        let p = back_substitution(3).unwrap();
        assert!(p.message_id("X0").is_none());
    }

    #[test]
    fn n1_minimal_system() {
        let p = back_substitution(1).unwrap();
        assert_eq!(p.num_messages(), 2); // B0 and XOUT
        assert_eq!(p.total_words(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = back_substitution(0);
    }
}
