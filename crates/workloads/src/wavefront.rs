//! Wavefront (stencil) sweeps on a 2-D mesh.
//!
//! A dependence pattern in the style of wavefront array processors: each
//! cell `(i, j)` consumes one word from its north and west neighbours and
//! produces one word for its south and east neighbours, per sweep. The
//! computation front moves along anti-diagonals.

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds a `rows × cols` mesh wavefront program performing `sweeps`
/// pipelined sweeps.
///
/// Messages: `E{i}_{j}: (i,j) → (i,j+1)` and `S{i}_{j}: (i,j) → (i+1,j)`,
/// each carrying `sweeps` words.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if any dimension or `sweeps` is zero.
pub fn wavefront(rows: usize, cols: usize, sweeps: usize) -> Result<Program, ModelError> {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    assert!(sweeps > 0, "need at least one sweep");
    let mut s = ScheduleBuilder::new(rows * cols);
    let id = |i: usize, j: usize| (i * cols + j) as u32;

    let mut links = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                links.push((
                    i,
                    j,
                    s.message(format!("E{i}_{j}"), id(i, j), id(i, j + 1))?,
                ));
            }
            if i + 1 < rows {
                links.push((
                    i,
                    j,
                    s.message(format!("S{i}_{j}"), id(i, j), id(i + 1, j))?,
                ));
            }
        }
    }

    // Sweep `w` activates cell (i, j) at diagonal time i + j; its outputs
    // cross at that key + 1, staying ahead of the next diagonal's reads.
    let period = (rows + cols) as i64 * 2;
    for &(i, j, m) in &links {
        for w in 0..sweeps {
            s.transfer(m, period * w as i64 + 2 * (i + j) as i64 + 1);
        }
    }
    s.build()
}

/// The mesh topology for [`wavefront`].
#[must_use]
pub fn wavefront_topology(rows: usize, cols: usize) -> Topology {
    Topology::mesh(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::CellId;

    #[test]
    fn link_and_word_counts() {
        let p = wavefront(3, 3, 2).unwrap();
        // East links: 3x2 = 6; south links: 2x3 = 6.
        assert_eq!(p.num_messages(), 12);
        assert_eq!(p.total_words(), 24);
    }

    #[test]
    fn origin_cell_only_writes() {
        let p = wavefront(2, 2, 1).unwrap();
        assert!(p.cell(CellId::new(0)).iter().all(|o| o.is_write()));
    }

    #[test]
    fn sink_cell_only_reads() {
        let p = wavefront(2, 2, 3).unwrap();
        let last = p.cell(CellId::new(3));
        assert!(last.iter().all(|o| o.is_read()));
        assert_eq!(last.len(), 6); // 2 inputs x 3 sweeps
    }

    #[test]
    fn interior_cell_reads_before_writing_each_sweep() {
        let p = wavefront(3, 3, 1).unwrap();
        let mid = p.cell(CellId::new(4)); // (1,1)
        assert!(mid.get(0).unwrap().is_read());
        assert!(mid.get(1).unwrap().is_read());
        assert!(mid.get(2).unwrap().is_write());
        assert!(mid.get(3).unwrap().is_write());
    }

    #[test]
    fn single_row_degenerates_to_pipeline() {
        let p = wavefront(1, 4, 2).unwrap();
        assert_eq!(p.num_messages(), 3); // east links only
    }

    #[test]
    #[should_panic(expected = "sweep")]
    fn zero_sweeps_rejected() {
        let _ = wavefront(2, 2, 0);
    }
}
