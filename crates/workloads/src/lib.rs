//! Systolic workload generators: the paper's figure programs, classic
//! systolic algorithms, and random programs for property testing.
//!
//! Everything here produces plain [`systolic_model::Program`]s — the
//! analysis (`systolic-core`) and the runtimes (`systolic-sim`,
//! `systolic-threaded`) consume them unchanged.
//!
//! * **Paper figures** — [`fig2_fir`], [`fig5_p1`]/[`fig5_p2`]/[`fig5_p3`],
//!   [`fig6_cycle`], [`fig7`], [`fig8`], [`fig9`]: the exact programs from
//!   H.T. Kung, *Deadlock Avoidance for Systolic Communication* (1988).
//! * **Classic systolic algorithms** — [`fir`], [`matvec`],
//!   [`mesh_matmul`], [`odd_even_sort`], [`seq_align`], [`horner`],
//!   [`token_ring`], [`wavefront`]: the workload family the paper's
//!   introduction motivates (convolution/FIR, Warp-style arrays, P-NAC
//!   sequence comparison, wavefront processors).
//! * **Construction tools** — [`ScheduleBuilder`] (deadlock-free programs by
//!   schedule projection, the Section 3.3 strategy generalized) and the
//!   [`random_program`]/[`scramble`] generators.
//!
//! # Examples
//!
//! ```
//! use systolic_workloads::{fir, fir_topology};
//!
//! # fn main() -> Result<(), systolic_model::ModelError> {
//! let program = fir(3, 16)?; // 3-tap filter over 16 samples
//! assert_eq!(program.num_cells(), 4); // host + 3 cells
//! assert_eq!(fir_topology(3).num_cells(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod backsub;
mod figures;
mod fir;
mod horner;
mod matmul;
mod matvec;
mod random;
mod ring;
mod schedule;
mod seqalign;
mod sorting;
mod traffic;
mod wavefront;

pub use backsub::{back_substitution, back_substitution_topology};
pub use figures::{
    fig2_fir, fig2_topology, fig3_messages, fig5_p1, fig5_p2, fig5_p3, fig6_cycle, fig6_topology,
    fig7, fig7_topology, fig8, fig8_topology, fig9, fig9_topology,
};
pub use fir::{fir, fir_topology};
pub use horner::{horner, horner_topology};
pub use matmul::{matmul_topology, mesh_matmul};
pub use matvec::{matvec, matvec_topology};
pub use random::{random_program, random_topology, scramble, swap_adjacent, RandomConfig};
pub use ring::{ring_topology, token_ring};
pub use schedule::ScheduleBuilder;
pub use seqalign::{seq_align, seq_align_strict, seq_align_topology};
pub use sorting::{odd_even_sort, sort_topology};
pub use traffic::{distinct_topologies, traffic, TrafficConfig, TrafficItem};
pub use wavefront::{wavefront, wavefront_topology};
