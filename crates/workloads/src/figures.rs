//! The paper's figure programs, verbatim.
//!
//! Every example program that appears in the paper is reproduced here
//! op-for-op, so analyses and simulations can be checked against the text.
//! Where the source scan is ambiguous (Fig. 5), the reconstruction is
//! derived from the prose and the Fig. 10 walkthrough; see DESIGN.md.

use systolic_model::{parse_program, Program, Topology};

/// Fig. 2: the 3-tap FIR filter program computing `y1, y2` from
/// `x1..x4` on a host plus three cells.
///
/// Weights `w3, w2, w1` are preloaded into `c1, c2, c3` (not part of the
/// communication program). Message lengths: `XA` = 4, `XB` = 3, `XC` = 2,
/// `YA` = `YB` = `YC` = 2.
#[must_use]
pub fn fig2_fir() -> Program {
    parse_program(
        "cells host c1 c2 c3\n\
         message XA: host -> c1\n\
         message XB: c1 -> c2\n\
         message XC: c2 -> c3\n\
         message YA: c1 -> host\n\
         message YB: c2 -> c1\n\
         message YC: c3 -> c2\n\
         program host { W(XA) W(XA) W(XA) R(YA) W(XA) R(YA) }\n\
         program c1 {\n\
             R(XA) W(XB)\n\
             R(XA) W(XB)\n\
             R(XA) R(YB) W(XB) W(YA)\n\
             R(XA) R(YB) W(YA)\n\
         }\n\
         program c2 {\n\
             R(XB) W(XC)\n\
             R(XB) R(YC) W(XC) W(YB)\n\
             R(XB) R(YC) W(YB)\n\
         }\n\
         program c3 { R(XC) W(YC) R(XC) W(YC) }\n",
    )
    .expect("Fig. 2 program is valid")
}

/// The linear topology the Fig. 2 program runs on (host + 3 cells).
#[must_use]
pub fn fig2_topology() -> Topology {
    Topology::linear(4)
}

/// Fig. 5, program P1 (reconstructed from the Fig. 10 walkthrough).
///
/// Deadlocked without buffering; deadlock-free once each queue buffers two
/// words (Section 8 / Fig. 10), with A and B in separate queues.
#[must_use]
pub fn fig5_p1() -> Program {
    parse_program(
        "cells c1 c2\n\
         message A: c1 -> c2\n\
         message B: c1 -> c2\n\
         program c1 { W(A) W(A) W(B) W(A) W(B) W(A) }\n\
         program c2 { R(B) R(A) R(B) R(A) R(A) R(A) }\n",
    )
    .expect("Fig. 5 P1 is valid")
}

/// Fig. 5, program P2: both cells write first, then read.
///
/// Deadlocked without buffering ("neither C1 nor C2 can finish writing the
/// first word in its output message"); deadlock-free with any buffering.
#[must_use]
pub fn fig5_p2() -> Program {
    parse_program(
        "cells c1 c2\n\
         message A: c1 -> c2\n\
         message B: c2 -> c1\n\
         program c1 { W(A) R(B) }\n\
         program c2 { W(B) R(A) }\n",
    )
    .expect("Fig. 5 P2 is valid")
}

/// Fig. 5, program P3: a genuine circular data dependency.
///
/// Deadlocked no matter how much buffering exists — this is the program
/// rule R1 protects (skipping *reads* would misclassify it, because each
/// write may depend on the preceding read).
#[must_use]
pub fn fig5_p3() -> Program {
    parse_program(
        "cells c1 c2\n\
         message A: c1 -> c2\n\
         message B: c2 -> c1\n\
         program c1 { R(B) W(A) }\n\
         program c2 { R(A) W(B) }\n",
    )
    .expect("Fig. 5 P3 is valid")
}

/// Fig. 6: messages form a cycle `c1 → c2 → c3 → c4 → c1`, yet the program
/// is deadlock-free — cycles among senders/receivers do not imply deadlock.
#[must_use]
pub fn fig6_cycle() -> Program {
    parse_program(
        "cells c1 c2 c3 c4\n\
         message A: c1 -> c2\n\
         message B: c2 -> c3\n\
         message C: c3 -> c4\n\
         message D: c4 -> c1\n\
         program c1 { W(A) R(D) }\n\
         program c2 { R(A) W(B) }\n\
         program c3 { R(B) W(C) }\n\
         program c4 { R(C) W(D) }\n",
    )
    .expect("Fig. 6 program is valid")
}

/// The linear topology for Fig. 6 (message D travels back across all three
/// intervals).
#[must_use]
pub fn fig6_topology() -> Topology {
    Topology::linear(4)
}

/// Fig. 7: the queue-ordering deadlock example.
///
/// `A: c2 → c3` (4 words), `B: c3 → c4` (`len` words), `C: c1 → c4` (`len`
/// words, crossing every interval). With one queue per interval, assigning
/// B to the c3–c4 queue before C deadlocks the run; the consistent labels
/// A=1, C=2, B=3 plus compatible assignment forbid exactly that order.
///
/// `len` is the length of the `W(C)…`/`R(C)…` and `W(B)…`/`R(B)…` sequences
/// (the paper draws them as equal-length trails).
///
/// # Panics
///
/// Panics if `len == 0`.
#[must_use]
pub fn fig7(len: usize) -> Program {
    assert!(len > 0, "fig7 needs nonempty B and C sequences");
    parse_program(&format!(
        "cells c1 c2 c3 c4\n\
         message A: c2 -> c3\n\
         message B: c3 -> c4\n\
         message C: c1 -> c4\n\
         program c1 {{ W(C)*{len} }}\n\
         program c2 {{ W(A)*4 }}\n\
         program c3 {{ R(A)*4 W(B)*{len} }}\n\
         program c4 {{ R(C)*{len} R(B)*{len} }}\n"
    ))
    .expect("Fig. 7 program is valid")
}

/// The linear topology for Fig. 7.
#[must_use]
pub fn fig7_topology() -> Topology {
    Topology::linear(4)
}

/// Fig. 8: interleaved *reads* from multiple messages by cell C3.
///
/// `B: c1 → c3` (3 words, two hops), `A: c2 → c3` (4 words). C3 reads A and
/// B interleaved, so A ~ B (related) and they need separate queues between
/// c2 and c3: one queue deadlocks, two queues are fine.
#[must_use]
pub fn fig8() -> Program {
    parse_program(
        "cells c1 c2 c3\n\
         message B: c1 -> c3\n\
         message A: c2 -> c3\n\
         program c1 { W(B) W(B) W(B) }\n\
         program c2 { W(A) W(A) W(A) W(A) }\n\
         program c3 { R(A) R(B) R(A) R(A) R(B) R(B) R(A) }\n",
    )
    .expect("Fig. 8 program is valid")
}

/// The linear topology for Fig. 8.
#[must_use]
pub fn fig8_topology() -> Topology {
    Topology::linear(3)
}

/// Fig. 9: interleaved *writes* to multiple messages by cell C1 — the
/// symmetric case of Fig. 8.
///
/// `A: c1 → c2` (4 words), `B: c1 → c3` (3 words, two hops). One queue
/// between c1 and c2 deadlocks; two queues (A and B statically separated)
/// are fine.
#[must_use]
pub fn fig9() -> Program {
    parse_program(
        "cells c1 c2 c3\n\
         message A: c1 -> c2\n\
         message B: c1 -> c3\n\
         program c1 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
         program c2 { R(A) R(A) R(A) R(A) }\n\
         program c3 { R(B) R(B) R(B) }\n",
    )
    .expect("Fig. 9 program is valid")
}

/// The linear topology for Fig. 9.
#[must_use]
pub fn fig9_topology() -> Topology {
    Topology::linear(3)
}

/// Fig. 3's message layout: four messages over a 4-cell array, used to
/// illustrate message-to-queue assignment. (The figure shows queues, not a
/// full program; word counts here are illustrative.)
#[must_use]
pub fn fig3_messages() -> Program {
    parse_program(
        "cells c1 c2 c3 c4\n\
         message A: c1 -> c4\n\
         message B: c2 -> c3\n\
         message C: c1 -> c2\n\
         message D: c3 -> c2\n\
         program c1 { W(A)*2 W(C)*2 }\n\
         program c2 { R(C)*2 W(B)*2 R(D)*2 }\n\
         program c3 { R(B)*2 W(D)*2 }\n\
         program c4 { R(A)*2 }\n",
    )
    .expect("Fig. 3 program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{CellId, MessageId};

    #[test]
    fn fig2_word_counts_match_the_figure() {
        let p = fig2_fir();
        let count = |name: &str| p.word_count(p.message_id(name).unwrap());
        assert_eq!(count("XA"), 4);
        assert_eq!(count("XB"), 3);
        assert_eq!(count("XC"), 2);
        assert_eq!(count("YA"), 2);
        assert_eq!(count("YB"), 2);
        assert_eq!(count("YC"), 2);
        assert_eq!(p.total_words(), 15);
    }

    #[test]
    fn fig2_cell_op_counts() {
        let p = fig2_fir();
        assert_eq!(p.cell(CellId::new(0)).len(), 6); // host
        assert_eq!(p.cell(CellId::new(1)).len(), 11); // c1
        assert_eq!(p.cell(CellId::new(2)).len(), 9); // c2
        assert_eq!(p.cell(CellId::new(3)).len(), 4); // c3
    }

    #[test]
    fn fig5_programs_have_expected_shapes() {
        let p1 = fig5_p1();
        assert_eq!(p1.word_count(MessageId::new(0)), 4); // A
        assert_eq!(p1.word_count(MessageId::new(1)), 2); // B
        let p2 = fig5_p2();
        assert_eq!(p2.total_words(), 2);
        let p3 = fig5_p3();
        assert_eq!(p3.total_words(), 2);
    }

    #[test]
    fn fig7_scales_with_len() {
        let p = fig7(5);
        assert_eq!(p.word_count(p.message_id("B").unwrap()), 5);
        assert_eq!(p.word_count(p.message_id("C").unwrap()), 5);
        assert_eq!(p.word_count(p.message_id("A").unwrap()), 4);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn fig7_rejects_zero_len() {
        let _ = fig7(0);
    }

    #[test]
    fn fig8_and_fig9_word_counts() {
        let f8 = fig8();
        assert_eq!(f8.word_count(f8.message_id("A").unwrap()), 4);
        assert_eq!(f8.word_count(f8.message_id("B").unwrap()), 3);
        let f9 = fig9();
        assert_eq!(f9.word_count(f9.message_id("A").unwrap()), 4);
        assert_eq!(f9.word_count(f9.message_id("B").unwrap()), 3);
    }

    #[test]
    fn topologies_match_program_sizes() {
        assert_eq!(fig2_topology().num_cells(), fig2_fir().num_cells());
        assert_eq!(fig6_topology().num_cells(), fig6_cycle().num_cells());
        assert_eq!(fig7_topology().num_cells(), fig7(1).num_cells());
        assert_eq!(fig8_topology().num_cells(), fig8().num_cells());
        assert_eq!(fig9_topology().num_cells(), fig9().num_cells());
    }

    #[test]
    fn fig3_messages_route_over_four_cells() {
        let p = fig3_messages();
        assert_eq!(p.num_messages(), 4);
        assert_eq!(p.num_cells(), 4);
    }
}
