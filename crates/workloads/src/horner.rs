//! Horner polynomial evaluation on a linear array.
//!
//! Coefficients are preloaded one per cell; evaluation points stream through
//! the array, each accompanied by a running accumulator. Unlike the stream
//! workloads, every point uses its *own* short messages, producing many
//! sequentially-competing messages per interval — a stress test for dynamic
//! queue assignment with small pools.
//!
//! Built by schedule projection: the host interleaves feeding new points
//! with draining finished results (a host that wrote all points before
//! reading any result would deadlock once `points > degree`, exactly the
//! pathology of Section 4).

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the Horner program: `host + degree` cells, `points` evaluation
/// points, with per-point messages `X{i}_{j}` (the point) and `A{i}_{j}`
/// (the accumulator) on each link `i → i+1`, and `R_{j}` returning result
/// `j` from the last cell to the host.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `degree == 0` or `points == 0`.
pub fn horner(degree: usize, points: usize) -> Result<Program, ModelError> {
    assert!(degree > 0, "polynomial degree must be positive");
    assert!(points > 0, "need at least one evaluation point");
    let k = degree;
    let mut s = ScheduleBuilder::new(k + 1);
    let mut names = vec!["host".to_owned()];
    names.extend((1..=k).map(|i| format!("c{i}")));
    s.name_cells(names);

    for j in 0..points {
        // Link i -> i+1 for point j; the pair (X, A) crosses together.
        for i in 0..k {
            let x = s.message(format!("X{i}_{j}"), i as u32, (i + 1) as u32)?;
            let a = s.message(format!("A{i}_{j}"), i as u32, (i + 1) as u32)?;
            let t = 2 * (i + j) as i64 + 1;
            s.transfer(x, t);
            s.transfer(a, t);
        }
        // The result leaves the last cell one wavefront later.
        let r = s.message(format!("R_{j}"), k as u32, 0)?;
        s.transfer(r, 2 * (k + j) as i64 + 1);
    }
    s.build()
}

/// The linear topology for [`horner`].
#[must_use]
pub fn horner_topology(degree: usize) -> Topology {
    Topology::linear(degree + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::CellId;

    #[test]
    fn message_counts_scale_with_points() {
        let p = horner(3, 4).unwrap();
        // Per point: 2 messages per inner link (3 links) + 1 result = 7.
        assert_eq!(p.num_messages(), 4 * 7);
        // Every message carries one word.
        assert_eq!(p.total_words(), 4 * 7);
    }

    #[test]
    fn last_cell_emits_results() {
        let p = horner(2, 3).unwrap();
        let last = p.cell(CellId::new(2));
        let writes = last.iter().filter(|o| o.is_write()).count();
        assert_eq!(writes, 3);
    }

    #[test]
    fn host_interleaves_feeding_and_draining() {
        let p = horner(2, 5).unwrap();
        let host = p.cell(CellId::new(0));
        assert_eq!(host.iter().filter(|o| o.is_read()).count(), 5);
        assert_eq!(host.iter().filter(|o| o.is_write()).count(), 10);
        // The first result is read before the last point is written:
        // result j returns at wavefront k + j, while point j' enters at
        // wavefront j', so R_0 (wavefront 2) precedes X0_3 (wavefront 3).
        let first_read = host.iter().position(|o| o.is_read()).unwrap();
        let last_write = host.ops().iter().rposition(|o| o.is_write()).unwrap();
        assert!(first_read < last_write);
    }

    #[test]
    fn points_beyond_degree_are_fine() {
        // The regression that motivated schedule projection: points > degree.
        let p = horner(2, 8).unwrap();
        assert_eq!(p.num_messages(), 8 * 5);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_rejected() {
        let _ = horner(0, 1);
    }

    #[test]
    #[should_panic(expected = "evaluation point")]
    fn zero_points_rejected() {
        let _ = horner(1, 0);
    }
}
