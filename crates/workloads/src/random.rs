//! Random programs for property tests and campaign benchmarks.
//!
//! [`random_program`] emits programs that are **deadlock-free by
//! construction** (schedule projection, Section 3.3 of the paper);
//! [`scramble`] perturbs per-cell op orders to manufacture candidate
//! *deadlocked* programs. Classification of scrambled programs is left to
//! the caller (the analysis lives in `systolic-core`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use systolic_model::{CellProgram, ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Shape parameters for [`random_program`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RandomConfig {
    /// Cells in the (linear) array. Must be ≥ 2.
    pub cells: usize,
    /// Number of messages to declare.
    pub messages: usize,
    /// Words per message are drawn from `1..=max_words`.
    pub max_words: usize,
    /// Maximum hop distance between a message's sender and receiver
    /// (1 = neighbours only).
    pub max_span: usize,
    /// If `true`, a message's words occupy consecutive schedule slots
    /// (message-at-a-time behaviour, little interleaving — small related
    /// classes); if `false`, every word lands at an independent random
    /// time (heavy interleaving — most messages end up related, which
    /// inflates the queue requirement enormously).
    pub clustered: bool,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            cells: 4,
            messages: 6,
            max_words: 4,
            max_span: 3,
            clustered: true,
        }
    }
}

/// Generates a random deadlock-free program over a linear array.
///
/// Messages get random (sender, receiver) pairs within `max_span` hops and
/// random word counts; transfer times are drawn at random, and the schedule
/// is projected to per-cell op lists. The same `seed` always yields the
/// same program.
///
/// # Errors
///
/// Never fails for valid configurations; propagates builder errors
/// otherwise.
///
/// # Panics
///
/// Panics if `cells < 2`, `messages == 0`, `max_words == 0` or
/// `max_span == 0`.
pub fn random_program(config: &RandomConfig, seed: u64) -> Result<Program, ModelError> {
    assert!(config.cells >= 2, "need at least two cells");
    assert!(config.messages > 0, "need at least one message");
    assert!(config.max_words > 0, "messages need at least one word");
    assert!(config.max_span > 0, "messages must travel at least one hop");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = ScheduleBuilder::new(config.cells);

    let horizon = (config.messages * config.max_words * 4) as i64;
    for m in 0..config.messages {
        let sender = rng.random_range(0..config.cells);
        let candidates: Vec<usize> = (0..config.cells)
            .filter(|&r| {
                let span = r.abs_diff(sender);
                (1..=config.max_span).contains(&span)
            })
            .collect();
        let receiver = candidates[rng.random_range(0..candidates.len())];
        let id = s.message(format!("M{m}"), sender as u32, receiver as u32)?;
        let words = rng.random_range(1..=config.max_words);
        if config.clustered {
            let base = rng.random_range(0..horizon);
            for w in 0..words {
                s.transfer(id, base + w as i64);
            }
        } else {
            for _ in 0..words {
                s.transfer(id, rng.random_range(0..horizon));
            }
        }
    }
    s.build()
}

/// The linear topology matching [`random_program`]'s cell count.
#[must_use]
pub fn random_topology(config: &RandomConfig) -> Topology {
    Topology::linear(config.cells)
}

/// Randomly permutes the op order *within each cell* of `program`.
///
/// Word counts and senders/receivers are untouched, so the result is always
/// a valid [`Program`] — but its crossing-off classification is anyone's
/// guess: this is the generator of *candidate deadlocked* programs for the
/// campaign experiments.
///
/// # Panics
///
/// Panics only if the perturbed program fails validation, which would be a
/// bug (permutation preserves all validated invariants).
#[must_use]
pub fn scramble(program: &Program, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = program
        .cells()
        .iter()
        .map(|cp| {
            let mut ops: Vec<_> = cp.iter().collect();
            ops.shuffle(&mut rng);
            CellProgram::new(ops)
        })
        .collect();
    let names = program
        .cell_ids()
        .map(|c| program.cell_name(c).to_owned())
        .collect();
    Program::new(names, program.messages().to_vec(), cells)
        .expect("permuting ops within cells preserves validity")
}

/// Swaps two adjacent ops in one cell of `program` — the minimal
/// perturbation, used to probe how fragile deadlock-freedom is.
///
/// Returns `None` if the chosen cell has fewer than two ops.
#[must_use]
pub fn swap_adjacent(program: &Program, cell: usize, pos: usize) -> Option<Program> {
    let cp = program.cells().get(cell)?;
    if pos + 1 >= cp.len() {
        return None;
    }
    let mut ops: Vec<_> = cp.iter().collect();
    ops.swap(pos, pos + 1);
    let cells = program
        .cells()
        .iter()
        .enumerate()
        .map(|(i, orig)| {
            if i == cell {
                CellProgram::new(ops.clone())
            } else {
                orig.clone()
            }
        })
        .collect();
    let names = program
        .cell_ids()
        .map(|c| program.cell_name(c).to_owned())
        .collect();
    Some(
        Program::new(names, program.messages().to_vec(), cells)
            .expect("swapping ops within a cell preserves validity"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = RandomConfig::default();
        let a = random_program(&cfg, 42).unwrap();
        let b = random_program(&cfg, 42).unwrap();
        assert_eq!(a, b);
        let c = random_program(&cfg, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomConfig {
            cells: 6,
            messages: 10,
            max_words: 3,
            max_span: 2,
            ..Default::default()
        };
        let p = random_program(&cfg, 7).unwrap();
        assert_eq!(p.num_cells(), 6);
        assert_eq!(p.num_messages(), 10);
        for m in p.message_ids() {
            let words = p.word_count(m);
            assert!((1..=3).contains(&words));
            let decl = p.message(m);
            let span = decl.sender().index().abs_diff(decl.receiver().index());
            assert!((1..=2).contains(&span));
        }
    }

    #[test]
    fn scramble_preserves_counts() {
        let cfg = RandomConfig::default();
        let p = random_program(&cfg, 1).unwrap();
        let q = scramble(&p, 2);
        assert_eq!(p.num_messages(), q.num_messages());
        for m in p.message_ids() {
            assert_eq!(p.word_count(m), q.word_count(m));
        }
        for c in p.cell_ids() {
            assert_eq!(p.cell(c).len(), q.cell(c).len());
        }
    }

    #[test]
    fn swap_adjacent_touches_one_cell() {
        let cfg = RandomConfig::default();
        let p = random_program(&cfg, 3).unwrap();
        // Find a position where the two adjacent ops actually differ.
        let (cell, pos) = p
            .cell_ids()
            .flat_map(|c| {
                let cp = p.cell(c);
                (0..cp.len().saturating_sub(1))
                    .filter(move |&i| cp.get(i) != cp.get(i + 1))
                    .map(move |i| (c.index(), i))
            })
            .next()
            .expect("some cell has two distinct adjacent ops");
        let q = swap_adjacent(&p, cell, pos).unwrap();
        assert_ne!(p.cells()[cell], q.cells()[cell]);
        for other in p.cell_ids().map(|c| c.index()).filter(|&c| c != cell) {
            assert_eq!(p.cells()[other], q.cells()[other]);
        }
    }

    #[test]
    fn swap_out_of_range_is_none() {
        let cfg = RandomConfig::default();
        let p = random_program(&cfg, 3).unwrap();
        assert!(swap_adjacent(&p, 0, 10_000).is_none());
        assert!(swap_adjacent(&p, 10_000, 0).is_none());
    }

    #[test]
    fn topology_matches_config() {
        let cfg = RandomConfig {
            cells: 5,
            ..Default::default()
        };
        assert_eq!(random_topology(&cfg).num_cells(), 5);
    }
}
