//! Odd–even transposition sort on a linear array.
//!
//! `n` cells each hold one key; `n` rounds of pairwise exchanges sort the
//! array. In round `r` the pairs `(i, i+1)` with `i ≡ r (mod 2)` swap
//! values in both directions — a dense all-neighbour communication pattern
//! with two messages per interval per round, in opposite directions.

use systolic_model::{ModelError, Program, Topology};

use crate::ScheduleBuilder;

/// Builds the `n`-cell, `rounds`-round odd–even transposition program.
///
/// Message `E{r}_{i}` carries cell `i`'s key east to `i+1` in round `r`;
/// `W{r}_{i}` carries `i+1`'s key west. `rounds = n` sorts any input.
///
/// # Errors
///
/// Never fails for valid parameters; propagates builder errors otherwise.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
pub fn odd_even_sort(n: usize, rounds: usize) -> Result<Program, ModelError> {
    assert!(n >= 2, "sorting needs at least two cells");
    assert!(rounds > 0, "need at least one round");
    let mut s = ScheduleBuilder::new(n);
    for r in 0..rounds {
        let mut i = r % 2;
        while i + 1 < n {
            let east = s.message(format!("E{r}_{i}"), i as u32, (i + 1) as u32)?;
            let west = s.message(format!("W{r}_{i}"), (i + 1) as u32, i as u32)?;
            let t = (2 * r) as i64;
            s.transfer(east, t);
            s.transfer(west, t + 1);
            i += 2;
        }
    }
    s.build()
}

/// The linear topology for [`odd_even_sort`].
#[must_use]
pub fn sort_topology(n: usize) -> Topology {
    Topology::linear(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::CellId;

    #[test]
    fn full_sort_has_n_rounds_of_exchanges() {
        let p = odd_even_sort(4, 4).unwrap();
        // Rounds 0 and 2: pairs (0,1), (2,3); rounds 1 and 3: pair (1,2).
        // 2 messages per pair per round: (2+2)*2 + (1+1)*2 = 12 messages.
        assert_eq!(p.num_messages(), 12);
        assert_eq!(p.total_words(), 12);
    }

    #[test]
    fn odd_rounds_use_odd_pairs() {
        let p = odd_even_sort(5, 2).unwrap();
        // Round 0: pairs (0,1), (2,3). Round 1: pairs (1,2), (3,4).
        assert!(p.message_id("E0_0").is_some());
        assert!(p.message_id("E0_2").is_some());
        assert!(p.message_id("E0_1").is_none());
        assert!(p.message_id("E1_1").is_some());
        assert!(p.message_id("E1_3").is_some());
    }

    #[test]
    fn middle_cell_participates_every_round() {
        let p = odd_even_sort(3, 4).unwrap();
        let c1 = p.cell(CellId::new(1));
        // Cell 1 exchanges (one W + one R) every round.
        assert_eq!(c1.len(), 8);
    }

    #[test]
    fn exchange_order_is_east_then_west() {
        let p = odd_even_sort(2, 1).unwrap();
        let c0 = p.cell(CellId::new(0));
        assert!(c0.get(0).unwrap().is_write(), "east send first");
        assert!(c0.get(1).unwrap().is_read(), "west receive second");
    }

    #[test]
    #[should_panic(expected = "two cells")]
    fn one_cell_rejected() {
        let _ = odd_even_sort(1, 1);
    }

    #[test]
    #[should_panic(expected = "one round")]
    fn zero_rounds_rejected() {
        let _ = odd_even_sort(3, 0);
    }
}
