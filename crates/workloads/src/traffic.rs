//! Mixed request traffic for the serving layer.
//!
//! A production analysis service sees a *mixture*: the same handful of
//! library kernels over and over (cache hits), parameter sweeps of the
//! classic algorithms (cold misses), and one-off machine-generated
//! programs (never reused). [`traffic`] reproduces that shape
//! deterministically from a seed so service tests, the `systolicd gen`
//! subcommand and the throughput benches all replay identical streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use systolic_model::{Program, Topology};

use crate::{
    back_substitution, back_substitution_topology, fig2_fir, fig2_topology, fig6_cycle,
    fig6_topology, fig7, fig7_topology, fig8, fig8_topology, fir, fir_topology, horner,
    horner_topology, matvec, matvec_topology, odd_even_sort, random_program, random_topology,
    ring_topology, sort_topology, token_ring, wavefront, wavefront_topology, RandomConfig,
};

/// One request of a traffic stream: a named program over its topology.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TrafficItem {
    /// Stable human-readable name (e.g. `fig7/3`, `random/42`), identical
    /// for identical programs so cache behaviour is observable by name.
    pub name: String,
    /// The program to analyze.
    pub program: Program,
    /// The topology it runs on.
    pub topology: Topology,
    /// Hardware queues per interval the request should assume. Chosen
    /// generously enough that deadlock-free workloads are also feasible.
    pub queues_per_interval: usize,
}

/// Knobs for [`traffic`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrafficConfig {
    /// Probability (percent, 0–100) that a request repeats one of a small
    /// set of hot library kernels instead of drawing a fresh workload.
    pub hot_percent: u32,
    /// Shape of the one-off random programs mixed into the stream.
    pub random: RandomConfig,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            hot_percent: 50,
            random: RandomConfig::default(),
        }
    }
}

fn hot_set() -> Vec<TrafficItem> {
    let mut items = vec![
        TrafficItem {
            name: "fig2_fir".into(),
            program: fig2_fir(),
            topology: fig2_topology(),
            queues_per_interval: 2,
        },
        TrafficItem {
            name: "fig6_cycle".into(),
            program: fig6_cycle(),
            topology: fig6_topology(),
            queues_per_interval: 2,
        },
        TrafficItem {
            name: "fig7/3".into(),
            program: fig7(3),
            topology: fig7_topology(),
            queues_per_interval: 1,
        },
        TrafficItem {
            name: "fig8".into(),
            program: fig8(),
            topology: fig8_topology(),
            queues_per_interval: 2,
        },
    ];
    items.push(TrafficItem {
        name: "fir/3x8".into(),
        program: fir(3, 8).expect("fir(3, 8) builds"),
        topology: fir_topology(3),
        queues_per_interval: 2,
    });
    items.push(TrafficItem {
        name: "matvec/4".into(),
        program: matvec(4).expect("matvec(4) builds"),
        topology: matvec_topology(4),
        queues_per_interval: 2,
    });
    items
}

fn cold_item(rng: &mut StdRng, config: &TrafficConfig) -> TrafficItem {
    // Cold requests: parameter sweeps of the classic kernels plus fresh
    // random programs. Parameters are small enough that a single request
    // analyzes in well under a millisecond, large enough to exercise
    // multi-hop routing.
    match rng.random_range(0..8u32) {
        0 => {
            let taps = rng.random_range(2..6usize);
            // fir() needs at least `taps` inputs for one output.
            let inputs = taps + rng.random_range(2..8usize);
            TrafficItem {
                name: format!("fir/{taps}x{inputs}"),
                program: fir(taps, inputs).expect("fir builds"),
                topology: fir_topology(taps),
                queues_per_interval: 2,
            }
        }
        1 => {
            let n = rng.random_range(2..7usize);
            TrafficItem {
                name: format!("matvec/{n}"),
                program: matvec(n).expect("matvec builds"),
                topology: matvec_topology(n),
                queues_per_interval: 2,
            }
        }
        2 => {
            let n = rng.random_range(3..7usize);
            let rounds = rng.random_range(1..4usize);
            TrafficItem {
                name: format!("sort/{n}x{rounds}"),
                program: odd_even_sort(n, rounds).expect("sort builds"),
                topology: sort_topology(n),
                queues_per_interval: 2,
            }
        }
        3 => {
            let n = rng.random_range(3..7usize);
            let laps = rng.random_range(1..4usize);
            TrafficItem {
                name: format!("ring/{n}x{laps}"),
                program: token_ring(n, laps).expect("token_ring builds"),
                topology: ring_topology(n),
                queues_per_interval: 1,
            }
        }
        4 => {
            let rows = rng.random_range(2..4usize);
            let cols = rng.random_range(2..4usize);
            TrafficItem {
                name: format!("wavefront/{rows}x{cols}"),
                program: wavefront(rows, cols, 1).expect("wavefront builds"),
                topology: wavefront_topology(rows, cols),
                queues_per_interval: 2,
            }
        }
        5 => {
            let degree = rng.random_range(2..6usize);
            let points = rng.random_range(2..6usize);
            TrafficItem {
                name: format!("horner/{degree}x{points}"),
                program: horner(degree, points).expect("horner builds"),
                topology: horner_topology(degree),
                queues_per_interval: 2,
            }
        }
        6 => {
            let n = rng.random_range(2..6usize);
            TrafficItem {
                name: format!("backsub/{n}"),
                program: back_substitution(n).expect("back_substitution builds"),
                // Back-substitution's result/coefficient streams compete
                // heavily near the pivot cell; the requirement grows with n.
                queues_per_interval: n + 1,
                topology: back_substitution_topology(n),
            }
        }
        _ => {
            let seed = rng.random_range(0..u64::MAX / 2);
            TrafficItem {
                name: format!("random/{seed}"),
                program: random_program(&config.random, seed)
                    .expect("random_program builds for valid configs"),
                topology: random_topology(&config.random),
                queues_per_interval: config.random.messages.max(1),
            }
        }
    }
}

/// Generates `count` requests of mixed service traffic.
///
/// The stream interleaves *hot* repeats of a small kernel library (cache
/// hits in a caching service) with *cold* parameter sweeps and one-off
/// random programs, in proportions set by
/// [`hot_percent`](TrafficConfig::hot_percent). The same `seed` always
/// yields the same stream.
///
/// # Examples
///
/// ```
/// use systolic_workloads::{traffic, TrafficConfig};
///
/// let stream = traffic(&TrafficConfig::default(), 42, 10);
/// assert_eq!(stream.len(), 10);
/// assert_eq!(stream, traffic(&TrafficConfig::default(), 42, 10));
/// ```
#[must_use]
pub fn traffic(config: &TrafficConfig, seed: u64, count: usize) -> Vec<TrafficItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hot = hot_set();
    (0..count)
        .map(|_| {
            if rng.random_range(0..100u32) < config.hot_percent {
                hot[rng.random_range(0..hot.len())].clone()
            } else {
                cold_item(&mut rng, config)
            }
        })
        .collect()
}

/// The distinct topologies of a traffic stream, in first-seen order.
///
/// Mixed traffic names far fewer topologies than programs — hot kernels
/// repeat theirs, and parameter sweeps share per-family shapes. That
/// reuse is exactly what the serving layer's shared-compilation cache
/// (`systolic_core::CompiledTopology` keyed by content fingerprint)
/// exploits: one compilation per entry returned here can serve every
/// analysis of the stream.
#[must_use]
pub fn distinct_topologies(items: &[TrafficItem]) -> Vec<Topology> {
    let mut seen: Vec<Topology> = Vec::new();
    for item in items {
        if !seen.contains(&item.topology) {
            seen.push(item.topology.clone());
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = TrafficConfig::default();
        assert_eq!(traffic(&cfg, 7, 50), traffic(&cfg, 7, 50));
        assert_ne!(traffic(&cfg, 7, 50), traffic(&cfg, 8, 50));
    }

    #[test]
    fn respects_count_and_mix() {
        let cfg = TrafficConfig::default();
        let stream = traffic(&cfg, 1, 200);
        assert_eq!(stream.len(), 200);
        let hot_names: Vec<String> = hot_set().into_iter().map(|i| i.name).collect();
        let hot_count = stream
            .iter()
            .filter(|i| hot_names.contains(&i.name))
            .count();
        // 50% hot with 200 draws: comfortably between 25% and 75%.
        assert!((50..=150).contains(&hot_count), "hot_count = {hot_count}");
    }

    #[test]
    fn all_cold_stream_has_no_figure_kernels() {
        // Cold sweeps may re-draw hot parameters (e.g. `fir/3x8`) but never
        // the paper-figure kernels, which only the hot set serves.
        let cfg = TrafficConfig {
            hot_percent: 0,
            ..Default::default()
        };
        let stream = traffic(&cfg, 3, 40);
        assert!(stream.iter().all(|i| !i.name.starts_with("fig")));
    }

    #[test]
    fn programs_match_their_topologies() {
        let cfg = TrafficConfig::default();
        for item in traffic(&cfg, 11, 60) {
            assert_eq!(
                item.program.num_cells(),
                item.topology.num_cells(),
                "{} has mismatched cell counts",
                item.name
            );
            assert!(item.queues_per_interval >= 1);
        }
    }

    #[test]
    fn mixed_traffic_reuses_a_small_topology_set() {
        let cfg = TrafficConfig::default();
        let stream = traffic(&cfg, 23, 200);
        let distinct = distinct_topologies(&stream);
        assert!(!distinct.is_empty());
        assert!(
            distinct.len() * 2 < stream.len(),
            "200 requests should share topologies heavily, got {} distinct",
            distinct.len()
        );
        // First-seen order, no duplicates.
        for (i, a) in distinct.iter().enumerate() {
            for b in &distinct[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn identical_names_mean_identical_programs() {
        let cfg = TrafficConfig::default();
        let stream = traffic(&cfg, 5, 120);
        for a in &stream {
            for b in &stream {
                if a.name == b.name {
                    assert_eq!(a.program, b.program);
                    assert_eq!(a.topology, b.topology);
                }
            }
        }
    }
}
