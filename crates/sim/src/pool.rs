//! Per-interval queue pools and assignment bookkeeping.

use std::collections::BTreeMap;

use systolic_model::{Hop, Interval, MessageId, QueueId};

use crate::{HwQueue, QueueConfig};

/// The hardware's queues, organized per interval, plus the record of which
/// message holds (or has held) which queue.
#[derive(Clone, Debug)]
pub struct QueuePools {
    pools: BTreeMap<Interval, Vec<HwQueue>>,
    /// Live assignments: (message, interval) → queue index.
    live: BTreeMap<(MessageId, Interval), usize>,
    /// Every (message, interval) that has ever been granted a queue — the
    /// "has been successfully assigned" predicate of the ordered-assignment
    /// rule.
    history: BTreeMap<(MessageId, Interval), usize>,
}

impl QueuePools {
    /// Builds pools with `queues_per_interval` queues of `config` on each
    /// of `intervals`.
    #[must_use]
    pub fn uniform(
        intervals: impl IntoIterator<Item = Interval>,
        queues_per_interval: usize,
        config: QueueConfig,
    ) -> Self {
        let pools = intervals
            .into_iter()
            .map(|iv| (iv, (0..queues_per_interval).map(|_| HwQueue::new(config)).collect()))
            .collect();
        QueuePools { pools, live: BTreeMap::new(), history: BTreeMap::new() }
    }

    /// The intervals covered by the pools.
    pub fn intervals(&self) -> impl Iterator<Item = Interval> + '_ {
        self.pools.keys().copied()
    }

    /// Number of queues on `interval` (0 if unknown).
    #[must_use]
    pub fn pool_size(&self, interval: Interval) -> usize {
        self.pools.get(&interval).map_or(0, Vec::len)
    }

    /// Indices of currently free queues on `interval`.
    #[must_use]
    pub fn free_queues(&self, interval: Interval) -> Vec<usize> {
        self.pools
            .get(&interval)
            .map(|qs| {
                qs.iter()
                    .enumerate()
                    .filter(|(_, q)| q.is_free())
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `true` if `message` holds or has ever held a queue on `interval`.
    #[must_use]
    pub fn has_granted(&self, message: MessageId, interval: Interval) -> bool {
        self.history.contains_key(&(message, interval))
    }

    /// The queue currently serving `message` on `interval`, if any.
    #[must_use]
    pub fn live_assignment(&self, message: MessageId, interval: Interval) -> Option<usize> {
        self.live.get(&(message, interval)).copied()
    }

    /// Grants queue `index` of `hop.interval()` to `message`.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist, is not free, or the message
    /// already holds a queue on the interval.
    pub fn grant(&mut self, message: MessageId, hop: Hop, index: usize) {
        let interval = hop.interval();
        let queue = self
            .pools
            .get_mut(&interval)
            .and_then(|qs| qs.get_mut(index))
            .unwrap_or_else(|| panic!("no queue {index} on {interval}"));
        queue.assign(message, hop);
        let prev = self.live.insert((message, interval), index);
        assert!(prev.is_none(), "{message} already holds a queue on {interval}");
        self.history.insert((message, interval), index);
    }

    /// Releases the queue serving `message` on `interval` (after its last
    /// word passed). The grant *history* is retained.
    ///
    /// # Panics
    ///
    /// Panics if the message holds no queue there or words remain buffered.
    pub fn release(&mut self, message: MessageId, interval: Interval) {
        let index = self
            .live
            .remove(&(message, interval))
            .unwrap_or_else(|| panic!("{message} holds no queue on {interval}"));
        self.pools
            .get_mut(&interval)
            .expect("interval exists")
            .get_mut(index)
            .expect("index in range")
            .release();
    }

    /// Immutable access to a queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    #[must_use]
    pub fn queue(&self, id: QueueId) -> &HwQueue {
        &self.pools[&id.interval()][id.index()]
    }

    /// Mutable access to a queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    #[must_use]
    pub fn queue_mut(&mut self, id: QueueId) -> &mut HwQueue {
        self.pools
            .get_mut(&id.interval())
            .expect("interval exists")
            .get_mut(id.index())
            .expect("index in range")
    }

    /// Iterates over every `(queue id, queue)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (QueueId, &HwQueue)> + '_ {
        self.pools.iter().flat_map(|(iv, qs)| {
            qs.iter()
                .enumerate()
                .map(move |(i, q)| (QueueId::new(*iv, i as u32), q))
        })
    }

    /// Sum of spill events across all queues.
    #[must_use]
    pub fn total_spills(&self) -> usize {
        self.iter().map(|(_, q)| q.spills()).sum()
    }
}

/// The read-only view handed to assignment policies.
#[derive(Debug)]
pub struct PoolView<'a> {
    pools: &'a QueuePools,
}

impl<'a> PoolView<'a> {
    pub(crate) fn new(pools: &'a QueuePools) -> Self {
        PoolView { pools }
    }

    /// Indices of free queues on `interval`.
    #[must_use]
    pub fn free_queues(&self, interval: Interval) -> Vec<usize> {
        self.pools.free_queues(interval)
    }

    /// Number of queues on `interval`.
    #[must_use]
    pub fn pool_size(&self, interval: Interval) -> usize {
        self.pools.pool_size(interval)
    }

    /// The ordered-assignment predicate: has `message` ever been granted a
    /// queue on `interval`?
    #[must_use]
    pub fn has_granted(&self, message: MessageId, interval: Interval) -> bool {
        self.pools.has_granted(message, interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Word;
    use systolic_model::CellId;

    fn iv() -> Interval {
        Interval::new(CellId::new(0), CellId::new(1))
    }

    fn hop() -> Hop {
        Hop::new(CellId::new(0), CellId::new(1))
    }

    fn pools(n: usize) -> QueuePools {
        QueuePools::uniform([iv()], n, QueueConfig::default())
    }

    #[test]
    fn grant_release_roundtrip_keeps_history() {
        let mut p = pools(2);
        let m = MessageId::new(0);
        assert_eq!(p.free_queues(iv()), vec![0, 1]);
        assert!(!p.has_granted(m, iv()));

        p.grant(m, hop(), 1);
        assert_eq!(p.free_queues(iv()), vec![0]);
        assert_eq!(p.live_assignment(m, iv()), Some(1));
        assert!(p.has_granted(m, iv()));

        p.release(m, iv());
        assert_eq!(p.free_queues(iv()), vec![0, 1]);
        assert_eq!(p.live_assignment(m, iv()), None);
        assert!(p.has_granted(m, iv()), "history survives release");
    }

    #[test]
    fn queue_access_by_id() {
        let mut p = pools(1);
        let m = MessageId::new(0);
        p.grant(m, hop(), 0);
        let qid = QueueId::new(iv(), 0);
        p.queue_mut(qid).push(Word { message: m, index: 0 });
        assert_eq!(p.queue(qid).occupancy(), 1);
        assert_eq!(p.iter().count(), 1);
    }

    #[test]
    fn pool_view_reflects_state() {
        let mut p = pools(2);
        let m = MessageId::new(3);
        p.grant(m, hop(), 0);
        let view = PoolView::new(&p);
        assert_eq!(view.free_queues(iv()), vec![1]);
        assert_eq!(view.pool_size(iv()), 2);
        assert!(view.has_granted(m, iv()));
        assert!(!view.has_granted(MessageId::new(9), iv()));
    }

    #[test]
    #[should_panic(expected = "no queue")]
    fn grant_out_of_range_panics() {
        let mut p = pools(1);
        p.grant(MessageId::new(0), hop(), 5);
    }

    #[test]
    #[should_panic(expected = "holds no queue")]
    fn release_without_grant_panics() {
        let mut p = pools(1);
        p.release(MessageId::new(0), iv());
    }

    #[test]
    fn total_spills_aggregates() {
        let mut p = QueuePools::uniform([iv()], 1, QueueConfig { capacity: 1, extension: true });
        let m = MessageId::new(0);
        p.grant(m, hop(), 0);
        let qid = QueueId::new(iv(), 0);
        p.queue_mut(qid).push(Word { message: m, index: 0 });
        p.queue_mut(qid).push(Word { message: m, index: 1 });
        assert_eq!(p.total_spills(), 1);
    }
}
