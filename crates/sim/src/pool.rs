//! Per-interval queue pools and assignment bookkeeping.
//!
//! The pools are laid out as an **arena**: one flat `Vec<HwQueue>` indexed
//! by `(interval index, queue index)` plus flat per-`(message, interval)`
//! assignment tables, so a batch of replays ([`crate::SimArena`]) can
//! [`reset`](QueuePools::reset_for) the whole structure in place — no
//! per-run map rebuilds, no reallocation. The interval table is sorted, so
//! interval-keyed lookups are a binary search over a slice.

use systolic_model::{Hop, Interval, MessageId, QueueId};

use crate::{HwQueue, QueueConfig};

/// Sentinel in the live-assignment table: no queue held.
const NONE: u32 = u32::MAX;

/// The hardware's queues, organized per interval, plus the record of which
/// message holds (or has held) which queue.
///
/// Interval-keyed methods accept any [`Interval`]; unknown intervals read
/// as empty pools (and panic on mutation, as before).
#[derive(Clone, Debug)]
pub struct QueuePools {
    /// Sorted interval table; position = interval index.
    intervals: Vec<Interval>,
    queues_per_interval: usize,
    config: QueueConfig,
    /// Flat queue storage: `interval index * queues_per_interval + queue`.
    queues: Vec<HwQueue>,
    /// Messages the assignment tables currently cover.
    num_messages: usize,
    /// Live assignments: `message * intervals + interval index` → queue
    /// index, `NONE` if unheld.
    live: Vec<u32>,
    /// Every (message, interval) ever granted a queue — the "has been
    /// successfully assigned" predicate of the ordered-assignment rule.
    history: Vec<bool>,
}

impl QueuePools {
    /// Builds pools with `queues_per_interval` queues of `config` on each
    /// of `intervals` (sorted and deduplicated).
    #[must_use]
    pub fn uniform(
        intervals: impl IntoIterator<Item = Interval>,
        queues_per_interval: usize,
        config: QueueConfig,
    ) -> Self {
        let mut intervals: Vec<Interval> = intervals.into_iter().collect();
        intervals.sort_unstable();
        intervals.dedup();
        let queues = (0..intervals.len() * queues_per_interval)
            .map(|_| HwQueue::new(config))
            .collect();
        QueuePools {
            intervals,
            queues_per_interval,
            config,
            queues,
            num_messages: 0,
            live: Vec::new(),
            history: Vec::new(),
        }
    }

    /// Resets every queue and assignment table in place and sizes the
    /// per-message tables for `num_messages` messages. Allocations are
    /// kept; only contents are cleared — the arena's per-replay entry
    /// point.
    pub fn reset_for(&mut self, num_messages: usize) {
        for q in &mut self.queues {
            q.reset();
        }
        self.num_messages = num_messages;
        let cells = num_messages * self.intervals.len();
        self.live.clear();
        self.live.resize(cells, NONE);
        self.history.clear();
        self.history.resize(cells, false);
    }

    /// Raises the pool to `queues_per_interval` queues on every interval
    /// (a no-op if the pool is already at least that wide). The flat
    /// layout changes, so this also clears all queues and assignments;
    /// call it before (or as part of) a reset, never mid-run.
    pub fn ensure_queues_per_interval(&mut self, queues_per_interval: usize) {
        if queues_per_interval <= self.queues_per_interval {
            return;
        }
        self.queues_per_interval = queues_per_interval;
        let config = self.config;
        self.queues.clear();
        self.queues
            .resize_with(self.intervals.len() * queues_per_interval, || {
                HwQueue::new(config)
            });
        let messages = self.num_messages;
        self.reset_for(messages);
    }

    /// Position of `interval` in the sorted interval table, if present.
    #[must_use]
    pub fn interval_index(&self, interval: Interval) -> Option<usize> {
        self.intervals.binary_search(&interval).ok()
    }

    /// The interval at table position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn interval_at(&self, index: usize) -> Interval {
        self.intervals[index]
    }

    /// Number of intervals covered by the pools.
    #[must_use]
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Total queue count across all intervals (the flat arena size).
    #[must_use]
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The intervals covered by the pools.
    pub fn intervals(&self) -> impl Iterator<Item = Interval> + '_ {
        self.intervals.iter().copied()
    }

    /// Number of queues on `interval` (0 if unknown).
    #[must_use]
    pub fn pool_size(&self, interval: Interval) -> usize {
        if self.interval_index(interval).is_some() {
            self.queues_per_interval
        } else {
            0
        }
    }

    /// Indices of currently free queues on `interval`.
    #[must_use]
    pub fn free_queues(&self, interval: Interval) -> Vec<usize> {
        let Some(iv) = self.interval_index(interval) else {
            return Vec::new();
        };
        self.queue_slice(iv)
            .iter()
            .enumerate()
            .filter(|(_, q)| q.is_free())
            .map(|(i, _)| i)
            .collect()
    }

    fn queue_slice(&self, iv: usize) -> &[HwQueue] {
        &self.queues[iv * self.queues_per_interval..(iv + 1) * self.queues_per_interval]
    }

    fn table_index(&self, message: MessageId, iv: usize) -> Option<usize> {
        if message.index() >= self.num_messages {
            return None;
        }
        Some(message.index() * self.intervals.len() + iv)
    }

    /// Grows the per-message tables to cover `message` (used by callers
    /// that grant directly without an arena-style reset, e.g. tests).
    fn ensure_message(&mut self, message: MessageId) {
        if message.index() >= self.num_messages {
            self.num_messages = message.index() + 1;
            let cells = self.num_messages * self.intervals.len();
            self.live.resize(cells, NONE);
            self.history.resize(cells, false);
        }
    }

    /// `true` if `message` holds or has ever held a queue on `interval`.
    #[must_use]
    pub fn has_granted(&self, message: MessageId, interval: Interval) -> bool {
        self.interval_index(interval)
            .and_then(|iv| self.table_index(message, iv))
            .is_some_and(|i| self.history[i])
    }

    /// The queue currently serving `message` on `interval`, if any.
    #[must_use]
    pub fn live_assignment(&self, message: MessageId, interval: Interval) -> Option<usize> {
        let iv = self.interval_index(interval)?;
        self.live_at(message, iv)
    }

    /// [`QueuePools::has_granted`] by interval *index* — the arena's
    /// hot-path lookup (no interval search).
    #[must_use]
    pub fn has_granted_at(&self, message: MessageId, iv: usize) -> bool {
        self.table_index(message, iv)
            .is_some_and(|i| self.history[i])
    }

    /// [`QueuePools::live_assignment`] by interval *index* — the arena's
    /// hot-path lookup (no interval search).
    #[must_use]
    pub fn live_at(&self, message: MessageId, iv: usize) -> Option<usize> {
        let i = self.table_index(message, iv)?;
        let q = self.live[i];
        (q != NONE).then_some(q as usize)
    }

    /// Grants queue `index` of `hop.interval()` to `message`.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist, is not free, or the message
    /// already holds a queue on the interval.
    pub fn grant(&mut self, message: MessageId, hop: Hop, index: usize) {
        let interval = hop.interval();
        let iv = self
            .interval_index(interval)
            .filter(|_| index < self.queues_per_interval)
            // lint: panic-ok(documented # Panics invariant: callers index queues they created)
            .unwrap_or_else(|| panic!("no queue {index} on {interval}"));
        self.ensure_message(message);
        self.queues[iv * self.queues_per_interval + index].assign(message, hop);
        // lint: panic-ok(ensure_message() ran above; absence is pool corruption)
        let t = self.table_index(message, iv).expect("message ensured");
        assert!(
            self.live[t] == NONE,
            "{message} already holds a queue on {interval}"
        );
        self.live[t] = index as u32;
        self.history[t] = true;
    }

    /// Releases the queue serving `message` on `interval` (after its last
    /// word passed). The grant *history* is retained.
    ///
    /// # Panics
    ///
    /// Panics if the message holds no queue there or words remain buffered.
    pub fn release(&mut self, message: MessageId, interval: Interval) {
        let index = self
            .interval_index(interval)
            .and_then(|iv| self.table_index(message, iv))
            .filter(|&t| self.live[t] != NONE)
            // lint: panic-ok(documented # Panics invariant: release without a matching acquire)
            .unwrap_or_else(|| panic!("{message} holds no queue on {interval}"));
        let iv = self.interval_index(interval).expect("checked above"); // lint: panic-ok(guarded by the interval_index check above)
        let q = self.live[index] as usize;
        self.live[index] = NONE;
        self.queues[iv * self.queues_per_interval + q].release();
    }

    /// Immutable access to a queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    #[must_use]
    pub fn queue(&self, id: QueueId) -> &HwQueue {
        let iv = self
            .interval_index(id.interval())
            // lint: panic-ok(documented # Panics invariant: ids come from this pool set)
            .unwrap_or_else(|| panic!("no interval {} in the pools", id.interval()));
        &self.queue_slice(iv)[id.index()]
    }

    /// Mutable access to a queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    #[must_use]
    pub fn queue_mut(&mut self, id: QueueId) -> &mut HwQueue {
        let iv = self
            .interval_index(id.interval())
            // lint: panic-ok(documented # Panics invariant: ids come from this pool set)
            .unwrap_or_else(|| panic!("no interval {} in the pools", id.interval()));
        let index = id.index();
        assert!(
            index < self.queues_per_interval,
            "no queue {index} on {}",
            id.interval()
        );
        &mut self.queues[iv * self.queues_per_interval + index]
    }

    /// Access by flat `(interval index, queue index)` coordinates — the
    /// arena's hot-path accessor (no interval search).
    #[must_use]
    pub fn queue_at(&self, iv: usize, index: usize) -> &HwQueue {
        &self.queues[iv * self.queues_per_interval + index]
    }

    /// Mutable [`QueuePools::queue_at`].
    #[must_use]
    pub fn queue_at_mut(&mut self, iv: usize, index: usize) -> &mut HwQueue {
        &mut self.queues[iv * self.queues_per_interval + index]
    }

    /// The flat arena position of queue `index` on interval `iv`.
    #[must_use]
    pub fn flat_index(&self, iv: usize, index: usize) -> usize {
        iv * self.queues_per_interval + index
    }

    /// Iterates over every `(queue id, queue)` pair in interval order.
    pub fn iter(&self) -> impl Iterator<Item = (QueueId, &HwQueue)> + '_ {
        self.queues.iter().enumerate().map(move |(flat, q)| {
            let iv = self.intervals[flat / self.queues_per_interval];
            (
                QueueId::new(iv, (flat % self.queues_per_interval) as u32),
                q,
            )
        })
    }

    /// Sum of spill events across all queues.
    #[must_use]
    pub fn total_spills(&self) -> usize {
        self.queues.iter().map(HwQueue::spills).sum()
    }
}

/// The read-only view handed to assignment policies.
#[derive(Debug)]
pub struct PoolView<'a> {
    pools: &'a QueuePools,
}

impl<'a> PoolView<'a> {
    pub(crate) fn new(pools: &'a QueuePools) -> Self {
        PoolView { pools }
    }

    /// Indices of free queues on `interval`.
    #[must_use]
    pub fn free_queues(&self, interval: Interval) -> Vec<usize> {
        self.pools.free_queues(interval)
    }

    /// Number of queues on `interval`.
    #[must_use]
    pub fn pool_size(&self, interval: Interval) -> usize {
        self.pools.pool_size(interval)
    }

    /// The ordered-assignment predicate: has `message` ever been granted a
    /// queue on `interval`?
    #[must_use]
    pub fn has_granted(&self, message: MessageId, interval: Interval) -> bool {
        self.pools.has_granted(message, interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Word;
    use systolic_model::CellId;

    fn iv() -> Interval {
        Interval::new(CellId::new(0), CellId::new(1))
    }

    fn hop() -> Hop {
        Hop::new(CellId::new(0), CellId::new(1))
    }

    fn pools(n: usize) -> QueuePools {
        QueuePools::uniform([iv()], n, QueueConfig::default())
    }

    #[test]
    fn grant_release_roundtrip_keeps_history() {
        let mut p = pools(2);
        let m = MessageId::new(0);
        assert_eq!(p.free_queues(iv()), vec![0, 1]);
        assert!(!p.has_granted(m, iv()));

        p.grant(m, hop(), 1);
        assert_eq!(p.free_queues(iv()), vec![0]);
        assert_eq!(p.live_assignment(m, iv()), Some(1));
        assert!(p.has_granted(m, iv()));

        p.release(m, iv());
        assert_eq!(p.free_queues(iv()), vec![0, 1]);
        assert_eq!(p.live_assignment(m, iv()), None);
        assert!(p.has_granted(m, iv()), "history survives release");
    }

    #[test]
    fn queue_access_by_id() {
        let mut p = pools(1);
        let m = MessageId::new(0);
        p.grant(m, hop(), 0);
        let qid = QueueId::new(iv(), 0);
        p.queue_mut(qid).push(Word {
            message: m,
            index: 0,
        });
        assert_eq!(p.queue(qid).occupancy(), 1);
        assert_eq!(p.iter().count(), 1);
    }

    #[test]
    fn pool_view_reflects_state() {
        let mut p = pools(2);
        let m = MessageId::new(3);
        p.grant(m, hop(), 0);
        let view = PoolView::new(&p);
        assert_eq!(view.free_queues(iv()), vec![1]);
        assert_eq!(view.pool_size(iv()), 2);
        assert!(view.has_granted(m, iv()));
        assert!(!view.has_granted(MessageId::new(9), iv()));
    }

    #[test]
    #[should_panic(expected = "no queue")]
    fn grant_out_of_range_panics() {
        let mut p = pools(1);
        p.grant(MessageId::new(0), hop(), 5);
    }

    #[test]
    #[should_panic(expected = "holds no queue")]
    fn release_without_grant_panics() {
        let mut p = pools(1);
        p.release(MessageId::new(0), iv());
    }

    #[test]
    fn total_spills_aggregates() {
        let mut p = QueuePools::uniform(
            [iv()],
            1,
            QueueConfig {
                capacity: 1,
                extension: true,
            },
        );
        let m = MessageId::new(0);
        p.grant(m, hop(), 0);
        let qid = QueueId::new(iv(), 0);
        p.queue_mut(qid).push(Word {
            message: m,
            index: 0,
        });
        p.queue_mut(qid).push(Word {
            message: m,
            index: 1,
        });
        assert_eq!(p.total_spills(), 1);
    }

    #[test]
    fn reset_for_clears_everything_in_place() {
        let mut p = pools(2);
        let m = MessageId::new(1);
        p.grant(m, hop(), 0);
        p.queue_mut(QueueId::new(iv(), 0)).push(Word {
            message: m,
            index: 0,
        });
        p.reset_for(3);
        assert_eq!(p.free_queues(iv()), vec![0, 1]);
        assert_eq!(p.live_assignment(m, iv()), None);
        assert!(!p.has_granted(m, iv()), "history is per replay");
        assert_eq!(p.queue(QueueId::new(iv(), 0)).occupancy(), 0);
        // And the pool is immediately reusable.
        p.grant(m, hop(), 1);
        assert_eq!(p.live_assignment(m, iv()), Some(1));
    }

    #[test]
    fn ensure_queues_only_grows() {
        let mut p = pools(1);
        assert_eq!(p.pool_size(iv()), 1);
        p.ensure_queues_per_interval(3);
        assert_eq!(p.pool_size(iv()), 3);
        assert_eq!(p.free_queues(iv()), vec![0, 1, 2]);
        p.ensure_queues_per_interval(2);
        assert_eq!(p.pool_size(iv()), 3, "never shrinks");
        assert_eq!(p.num_queues(), 3);
    }

    #[test]
    fn unknown_interval_reads_as_empty() {
        let p = pools(2);
        let other = Interval::new(CellId::new(4), CellId::new(5));
        assert_eq!(p.pool_size(other), 0);
        assert!(p.free_queues(other).is_empty());
        assert!(!p.has_granted(MessageId::new(0), other));
        assert_eq!(p.live_assignment(MessageId::new(0), other), None);
    }
}
