//! Cell execution cost models — systolic vs. memory-to-memory (paper,
//! Fig. 1 and Section 1).
//!
//! Under **systolic communication** a cell program operates directly on its
//! I/O queues: no local-memory traffic at all. Under **memory-to-memory**
//! communication, "data residing in an input queue must first be brought in
//! the cell's local memory by the operating system, before they are
//! accessible to the cell program", and symmetrically on output — "a total
//! of at least four local memory accesses are needed for a cell to update a
//! data item flowing through the array".

/// Per-operation costs of a cell's execution model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Extra local-memory accesses per `R` operation.
    pub read_mem_accesses: u64,
    /// Extra local-memory accesses per `W` operation.
    pub write_mem_accesses: u64,
    /// Cycles each local-memory access adds to the operation's latency.
    pub mem_access_cycles: u64,
}

impl CostModel {
    /// The systolic model: operate directly on the queues, zero memory
    /// traffic, one cycle per op.
    #[must_use]
    pub const fn systolic() -> Self {
        CostModel {
            read_mem_accesses: 0,
            write_mem_accesses: 0,
            mem_access_cycles: 1,
        }
    }

    /// The memory-to-memory model: two accesses on input (OS stores the
    /// word, the program loads it) and two on output.
    #[must_use]
    pub const fn memory_to_memory() -> Self {
        CostModel {
            read_mem_accesses: 2,
            write_mem_accesses: 2,
            mem_access_cycles: 1,
        }
    }

    /// Latency in cycles of a read operation (1 + memory time).
    #[must_use]
    pub const fn read_latency(&self) -> u64 {
        1 + self.read_mem_accesses * self.mem_access_cycles
    }

    /// Latency in cycles of a write operation (1 + memory time).
    #[must_use]
    pub const fn write_latency(&self) -> u64 {
        1 + self.write_mem_accesses * self.mem_access_cycles
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::systolic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_is_free_of_memory_traffic() {
        let m = CostModel::systolic();
        assert_eq!(m.read_mem_accesses + m.write_mem_accesses, 0);
        assert_eq!(m.read_latency(), 1);
        assert_eq!(m.write_latency(), 1);
    }

    #[test]
    fn mem2mem_costs_four_accesses_per_updated_word() {
        let m = CostModel::memory_to_memory();
        // A cell that reads a word and writes the updated result performs
        // the paper's "at least four local memory accesses".
        assert_eq!(m.read_mem_accesses + m.write_mem_accesses, 4);
        assert_eq!(m.read_latency(), 3);
        assert_eq!(m.write_latency(), 3);
    }

    #[test]
    fn slower_memory_scales_latency() {
        let m = CostModel {
            mem_access_cycles: 5,
            ..CostModel::memory_to_memory()
        };
        assert_eq!(m.read_latency(), 11);
    }

    #[test]
    fn default_is_systolic() {
        assert_eq!(CostModel::default(), CostModel::systolic());
    }
}
