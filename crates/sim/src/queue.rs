//! Hardware queues (paper, Section 2.3).
//!
//! A queue sits on one interval, carries one message at a time, and is
//! released for reassignment "only after the last word in the current
//! message has passed the queue". Capacity semantics follow the paper:
//!
//! * `capacity == 0` — a *latch without buffering capability* (Sections
//!   3–7): a word may rest in the latch slot, but the **writing cell's
//!   operation does not complete until the word departs** ("cell C1 cannot
//!   finish writing the first word in A, because cell C2 is not ready to
//!   read any word in A");
//! * `capacity >= 1` — a buffering queue (Section 8): a write completes as
//!   soon as the word is accepted;
//! * optional **queue extension** (Section 8.1, the iWarp mechanism):
//!   overflow words spill into the receiving cell's local memory "at the
//!   expense of larger queue access time".

use std::collections::VecDeque;

use systolic_model::{Hop, MessageId};

/// One word in flight: which message it belongs to and its 0-based index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Word {
    /// The message this word belongs to.
    pub message: MessageId,
    /// 0-based position of the word within its message.
    pub index: usize,
}

/// Configuration of a single hardware queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueConfig {
    /// Words the queue can buffer; 0 = latch (write completes on departure).
    pub capacity: usize,
    /// Whether overflow may spill into the receiving cell's local memory.
    pub extension: bool,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 1,
            extension: false,
        }
    }
}

/// A hardware queue: bounded FIFO plus assignment state.
#[derive(Clone, Debug)]
pub struct HwQueue {
    config: QueueConfig,
    /// Words held in hardware (front = next to depart).
    buf: VecDeque<Word>,
    /// Words spilled to the receiver's local memory (behind `buf`).
    ext: VecDeque<Word>,
    /// The message currently assigned, if any.
    assigned: Option<MessageId>,
    /// Direction of the current assignment (reset on reassignment).
    direction: Option<Hop>,
    /// Words of the current assignment that have departed this queue.
    departed: usize,
    /// Words of the current assignment accepted so far.
    accepted: usize,
    /// Total spill events over the queue's lifetime.
    spills: usize,
    /// High-water mark of `buf.len() + ext.len()`.
    high_water: usize,
}

impl HwQueue {
    /// Creates an empty, unassigned queue.
    #[must_use]
    pub fn new(config: QueueConfig) -> Self {
        HwQueue {
            config,
            buf: VecDeque::new(),
            ext: VecDeque::new(),
            assigned: None,
            direction: None,
            departed: 0,
            accepted: 0,
            spills: 0,
            high_water: 0,
        }
    }

    /// The queue's configuration.
    #[must_use]
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// The message currently assigned to the queue, if any.
    #[must_use]
    pub fn assigned(&self) -> Option<MessageId> {
        self.assigned
    }

    /// The direction of the current assignment.
    #[must_use]
    pub fn direction(&self) -> Option<Hop> {
        self.direction
    }

    /// `true` if the queue has no assignment and can be handed out.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.assigned.is_none()
    }

    /// Assigns the queue to `message` flowing along `hop`, resetting the
    /// direction (paper: "at the time when a queue is being assigned to a
    /// new message, the direction of the queue can be reset").
    ///
    /// # Panics
    ///
    /// Panics if the queue is not free or not empty — reassigning a queue
    /// before the previous message's last word has passed violates the
    /// queue discipline.
    pub fn assign(&mut self, message: MessageId, hop: Hop) {
        assert!(self.is_free(), "queue already assigned");
        assert!(
            self.buf.is_empty() && self.ext.is_empty(),
            "queue must drain before reassignment"
        );
        self.assigned = Some(message);
        self.direction = Some(hop);
        self.departed = 0;
        self.accepted = 0;
    }

    /// Words of the current assignment that have departed.
    #[must_use]
    pub fn departed(&self) -> usize {
        self.departed
    }

    /// Words of the current assignment accepted so far.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Total spill-to-memory events.
    #[must_use]
    pub fn spills(&self) -> usize {
        self.spills
    }

    /// Highest combined occupancy ever observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current total occupancy (hardware + extension).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.buf.len() + self.ext.len()
    }

    /// The hardware slot count: latches still hold one word in transit.
    fn hw_slots(&self) -> usize {
        self.config.capacity.max(1)
    }

    /// `true` if [`HwQueue::push`] would accept a word right now.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.assigned.is_some() && (self.buf.len() < self.hw_slots() || self.config.extension)
    }

    /// Accepts a word into the queue.
    ///
    /// Returns `true` if the word went to the extension (spilled).
    ///
    /// # Panics
    ///
    /// Panics if the queue cannot accept ([`HwQueue::can_accept`]) or the
    /// word belongs to a different message than the assignment.
    pub fn push(&mut self, word: Word) -> bool {
        assert_eq!(
            self.assigned,
            Some(word.message),
            "word does not match assignment"
        );
        let spilled = if self.buf.len() < self.hw_slots() {
            self.buf.push_back(word);
            false
        } else {
            assert!(self.config.extension, "queue overflow without extension");
            self.ext.push_back(word);
            self.spills += 1;
            true
        };
        self.accepted += 1;
        self.high_water = self.high_water.max(self.occupancy());
        spilled
    }

    /// The word at the front, if any.
    #[must_use]
    pub fn front(&self) -> Option<Word> {
        self.buf.front().copied()
    }

    /// Removes the front word. Refills the hardware slots from the
    /// extension, and returns the word.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn pop(&mut self) -> Word {
        // lint: panic-ok(documented # Panics contract; callers gate on is_empty)
        let word = self.buf.pop_front().expect("pop from empty queue");
        if let Some(refill) = self.ext.pop_front() {
            self.buf.push_back(refill);
        }
        self.departed += 1;
        word
    }

    /// Clears the queue back to its just-constructed state — assignment,
    /// buffered words, spill and high-water counters — keeping the
    /// configuration and, crucially, the already-allocated ring buffers.
    /// This is how an arena ([`crate::SimArena`]) reuses one pool of
    /// queues across many replays without reallocating.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.ext.clear();
        self.assigned = None;
        self.direction = None;
        self.departed = 0;
        self.accepted = 0;
        self.spills = 0;
        self.high_water = 0;
    }

    /// Releases the queue after the current message's last word has passed.
    ///
    /// # Panics
    ///
    /// Panics if words are still buffered.
    pub fn release(&mut self) {
        assert!(
            self.buf.is_empty() && self.ext.is_empty(),
            "cannot release a queue holding words"
        );
        self.assigned = None;
        self.direction = None;
        self.departed = 0;
        self.accepted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::CellId;

    fn hop() -> Hop {
        Hop::new(CellId::new(0), CellId::new(1))
    }

    fn w(i: usize) -> Word {
        Word {
            message: MessageId::new(0),
            index: i,
        }
    }

    #[test]
    fn assign_push_pop_release_lifecycle() {
        let mut q = HwQueue::new(QueueConfig {
            capacity: 2,
            extension: false,
        });
        assert!(q.is_free());
        q.assign(MessageId::new(0), hop());
        assert!(!q.is_free());
        assert_eq!(q.direction(), Some(hop()));

        assert!(q.can_accept());
        assert!(!q.push(w(0)));
        assert!(!q.push(w(1)));
        assert!(!q.can_accept(), "capacity 2 reached");

        assert_eq!(q.pop(), w(0));
        assert_eq!(q.front(), Some(w(1)));
        assert_eq!(q.pop(), w(1));
        assert_eq!(q.departed(), 2);
        q.release();
        assert!(q.is_free());
    }

    #[test]
    fn latch_still_holds_one_word() {
        let q = HwQueue::new(QueueConfig {
            capacity: 0,
            extension: false,
        });
        let mut q = q;
        q.assign(MessageId::new(0), hop());
        assert!(q.can_accept(), "a latch holds one word in transit");
        q.push(w(0));
        assert!(!q.can_accept());
    }

    #[test]
    fn extension_spills_and_refills_in_order() {
        let mut q = HwQueue::new(QueueConfig {
            capacity: 1,
            extension: true,
        });
        q.assign(MessageId::new(0), hop());
        assert!(!q.push(w(0)));
        assert!(q.push(w(1)), "second word spills");
        assert!(q.push(w(2)));
        assert_eq!(q.spills(), 2);
        assert_eq!(q.occupancy(), 3);
        assert_eq!(q.high_water(), 3);
        // FIFO order is preserved across the spill boundary.
        assert_eq!(q.pop(), w(0));
        assert_eq!(q.pop(), w(1));
        assert_eq!(q.pop(), w(2));
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assign_panics() {
        let mut q = HwQueue::new(QueueConfig::default());
        q.assign(MessageId::new(0), hop());
        q.assign(MessageId::new(1), hop());
    }

    #[test]
    #[should_panic(expected = "does not match assignment")]
    fn wrong_message_push_panics() {
        let mut q = HwQueue::new(QueueConfig::default());
        q.assign(MessageId::new(0), hop());
        q.push(Word {
            message: MessageId::new(1),
            index: 0,
        });
    }

    #[test]
    #[should_panic(expected = "overflow without extension")]
    fn overflow_without_extension_panics() {
        let mut q = HwQueue::new(QueueConfig {
            capacity: 1,
            extension: false,
        });
        q.assign(MessageId::new(0), hop());
        q.push(w(0));
        q.push(w(1));
    }

    #[test]
    #[should_panic(expected = "holding words")]
    fn release_with_words_panics() {
        let mut q = HwQueue::new(QueueConfig::default());
        q.assign(MessageId::new(0), hop());
        q.push(w(0));
        q.release();
    }

    #[test]
    fn reset_restores_fresh_state_keeping_config() {
        let mut q = HwQueue::new(QueueConfig {
            capacity: 1,
            extension: true,
        });
        q.assign(MessageId::new(0), hop());
        q.push(w(0));
        q.push(w(1)); // spills
        assert_eq!(q.spills(), 1);
        q.reset();
        assert!(q.is_free());
        assert_eq!(q.occupancy(), 0);
        assert_eq!(q.spills(), 0);
        assert_eq!(q.high_water(), 0);
        assert_eq!(q.departed(), 0);
        assert_eq!(
            q.config(),
            QueueConfig {
                capacity: 1,
                extension: true
            }
        );
        // Usable again immediately.
        q.assign(MessageId::new(1), hop());
        assert!(q.can_accept());
    }

    #[test]
    fn reassignment_resets_direction() {
        let mut q = HwQueue::new(QueueConfig::default());
        q.assign(MessageId::new(0), hop());
        q.push(w(0));
        q.pop();
        q.release();
        let back = hop().reversed();
        q.assign(MessageId::new(1), back);
        assert_eq!(q.direction(), Some(back));
        assert_eq!(q.accepted(), 0);
    }
}
