//! A small LRU of verification arenas over multiple worlds, keyed by
//! compiled-topology fingerprint.
//!
//! The verification chase replays a certified plan through a
//! [`SimArena`]. Arenas are cheap to *reuse* (state resets in place) but
//! expensive to *build* (queue pools for every interval of the fabric),
//! and an arena is only valid for the topology it was built over. A
//! holder of just the **last** topology's arena thrashes as soon as
//! traffic interleaves two topologies — A, B, A, B rebuilds on every
//! request. [`ArenaLru`] keeps the last few topologies' arenas warm
//! instead, with no locking: each owner (a [`VerifyScheduler`] worker, a
//! service thread) holds its LRU outright.
//!
//! Residency is governed by an [`ArenaBudget`]: a fixed entry count, an
//! **auto** mode that tracks the distinct-topology cardinality the owner
//! has actually observed, or a **memory budget** in bytes enforced
//! against each arena's [`approx_bytes`](SimArena::approx_bytes)
//! estimate.
//!
//! [`VerifyScheduler`]: crate::VerifyScheduler

use std::sync::Arc;
use std::time::Instant;

use systolic_core::CompiledTopology;
use systolic_obs::{names, Counter, Histogram, Obs};

use crate::{SimArena, SimConfig};

/// Auto-sized LRUs never grow past this many resident arenas, so a
/// hostile stream naming thousands of distinct topologies cannot turn
/// "observed cardinality" into unbounded memory.
pub const MAX_AUTO_ARENAS: usize = 16;

/// How an [`ArenaLru`] decides how many arenas to keep resident.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArenaBudget {
    /// At most this many arenas (clamped to ≥ 1) — the classic LRU shape.
    Fixed(usize),
    /// Capacity follows the distinct-topology cardinality this LRU has
    /// observed (clamped to `1..=`[`MAX_AUTO_ARENAS`]): a stream touching
    /// two fabrics keeps two arenas warm, a stream touching ten keeps
    /// ten, without tuning a constant.
    Auto,
    /// Keep arenas while their combined
    /// [`approx_bytes`](SimArena::approx_bytes) estimate fits the budget;
    /// evict least-recently-used past it (the most recently touched arena
    /// always stays, even alone over budget).
    MemBytes(usize),
}

impl ArenaBudget {
    fn entry_cap(self, observed_distinct: usize) -> usize {
        match self {
            ArenaBudget::Fixed(n) => n.max(1),
            ArenaBudget::Auto => observed_distinct.clamp(1, MAX_AUTO_ARENAS),
            ArenaBudget::MemBytes(_) => usize::MAX,
        }
    }
}

/// One resident arena: the world's key (compiled-topology fingerprint)
/// and the [`SimConfig`] it was built under (both must match for reuse —
/// an arena's queue shapes and cycle limits are baked in at
/// construction), a recency tick, and the arena itself.
#[derive(Debug)]
struct Entry {
    key: u128,
    sim: SimConfig,
    last_used: u64,
    arena: SimArena,
}

/// The result of an [`ArenaLru::get_or_build`] lookup: the arena to
/// replay through, plus what the lookup did (for cache counters).
#[derive(Debug)]
pub struct ArenaLookup<'a> {
    /// The arena for the requested topology, reset-ready.
    pub arena: &'a mut SimArena,
    /// `true` when the arena was already resident (no rebuild).
    pub hit: bool,
    /// `true` when admitting this arena displaced at least one resident
    /// one (LRU or memory-budget pressure).
    pub evicted: bool,
}

/// A tiny, lock-free-by-ownership LRU of [`SimArena`]s keyed by
/// [`CompiledTopology::fingerprint`] (or any caller-chosen 128-bit key),
/// sized by an [`ArenaBudget`]. Each scheduler worker or service thread
/// owns one, so topology-interleaved traffic keeps the warm fabrics'
/// arenas resident instead of rebuilding per request.
///
/// # Examples
///
/// ```
/// use systolic_core::{AnalysisConfig, CompiledTopology};
/// use systolic_model::Topology;
/// use systolic_sim::{ArenaLru, SimConfig};
///
/// let mut lru = ArenaLru::new(2);
/// let config = AnalysisConfig::default();
/// let a = CompiledTopology::compile(&Topology::linear(2), &config).into_shared();
/// let b = CompiledTopology::compile(&Topology::ring(4), &config).into_shared();
///
/// assert!(!lru.get_or_build(&a, SimConfig::default()).hit);
/// assert!(!lru.get_or_build(&b, SimConfig::default()).hit);
/// // Interleaved reuse: both stay warm within the capacity.
/// assert!(lru.get_or_build(&a, SimConfig::default()).hit);
/// assert!(lru.get_or_build(&b, SimConfig::default()).hit);
/// ```
#[derive(Debug)]
pub struct ArenaLru {
    budget: ArenaBudget,
    /// Distinct keys ever requested (auto sizing input), capped so the
    /// tracking itself stays bounded.
    observed: Vec<u128>,
    tick: u64,
    entries: Vec<Entry>,
    instruments: Option<LruInstruments>,
}

/// Registry instruments resolved once at [`ArenaLru::set_obs`] time, so
/// the lookup hot path touches only atomics.
#[derive(Debug)]
struct LruInstruments {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    build_micros: Arc<Histogram>,
}

impl ArenaLru {
    /// An empty LRU holding at most `capacity` arenas (clamped to ≥ 1) —
    /// [`ArenaBudget::Fixed`].
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ArenaLru::with_budget(ArenaBudget::Fixed(capacity))
    }

    /// An empty LRU governed by `budget`.
    #[must_use]
    pub fn with_budget(budget: ArenaBudget) -> Self {
        ArenaLru {
            budget,
            observed: Vec::new(),
            tick: 0,
            entries: Vec::new(),
            instruments: None,
        }
    }

    /// Attaches a metrics registry: every lookup from now on counts into
    /// the shared `systolic_arena_cache_{hits,misses,evictions}_total`
    /// counters and fresh builds record their wall time into the
    /// `systolic_arena_build_duration_micros` histogram. The LRU is the
    /// **single writer** of these series — holders (scheduler workers,
    /// service threads) attach the same bundle and their traffic sums.
    pub fn set_obs(&mut self, obs: &Obs) {
        let registry = obs.registry();
        self.instruments = Some(LruInstruments {
            hits: registry.counter(names::ARENA_CACHE_HITS),
            misses: registry.counter(names::ARENA_CACHE_MISSES),
            evictions: registry.counter(names::ARENA_CACHE_EVICTIONS),
            build_micros: registry.histogram(names::ARENA_BUILD_DURATION),
        });
    }

    /// Arenas currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no arena is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The residency policy this LRU enforces.
    #[must_use]
    pub fn budget(&self) -> ArenaBudget {
        self.budget
    }

    /// The entry capacity currently in effect: the fixed capacity, the
    /// observed distinct-topology cardinality (auto), or — for a memory
    /// budget, which bounds bytes rather than entries — the current
    /// resident count (at least 1).
    #[must_use]
    pub fn capacity(&self) -> usize {
        match self.budget {
            ArenaBudget::MemBytes(_) => self.entries.len().max(1),
            budget => budget.entry_cap(self.observed.len()),
        }
    }

    /// Combined [`approx_bytes`](SimArena::approx_bytes) estimate of the
    /// resident arenas.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.arena.approx_bytes()).sum()
    }

    /// `true` if an arena for `key` is resident.
    #[must_use]
    pub fn contains(&self, key: u128) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// The arena for `compiled` under `sim`: resident (a *hit*, recency
    /// bumped) or freshly built (a *miss*, evicting least-recently-used
    /// entries past the budget). A resident arena is reused only when
    /// **both** the compiled topology and the [`SimConfig`] match — a
    /// same-topology entry built under a different `SimConfig` (say,
    /// latch instead of buffered queues) is discarded and rebuilt, never
    /// silently reused to replay under the wrong queue shapes.
    pub fn get_or_build(
        &mut self,
        compiled: &Arc<CompiledTopology>,
        sim: SimConfig,
    ) -> ArenaLookup<'_> {
        let compiled = Arc::clone(compiled);
        self.get_or_build_with(compiled.fingerprint(), sim, move || {
            SimArena::from_compiled(compiled, sim)
        })
    }

    /// As [`get_or_build`](ArenaLru::get_or_build), but with a
    /// caller-chosen key and arena constructor — the general entry point
    /// for worlds that are not compiled-topology-backed (the
    /// [`VerifyPool`](crate::VerifyPool) adapter's plain
    /// [`SimWorld`](crate::SimWorld)s).
    pub fn get_or_build_with(
        &mut self,
        key: u128,
        sim: SimConfig,
        build: impl FnOnce() -> SimArena,
    ) -> ArenaLookup<'_> {
        self.tick += 1;
        if !self.observed.contains(&key) && self.observed.len() < 4 * MAX_AUTO_ARENAS {
            self.observed.push(key);
        }
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            if self.entries[idx].sim == sim {
                self.entries[idx].last_used = self.tick;
                if let Some(m) = &self.instruments {
                    m.hits.inc();
                }
                return ArenaLookup {
                    arena: &mut self.entries[idx].arena,
                    hit: true,
                    evicted: false,
                };
            }
            // Same topology, different simulation parameters: the stale
            // arena is useless (and dangerous to reuse) — drop it and
            // fall through to the rebuild path below.
            self.entries.swap_remove(idx);
        }
        let build_start = Instant::now();
        let arena = build();
        if let Some(m) = &self.instruments {
            m.misses.inc();
            m.build_micros
                .record(build_start.elapsed().as_micros() as u64);
        }
        self.entries.push(Entry {
            key,
            sim,
            last_used: self.tick,
            arena,
        });
        let evicted = self.enforce_budget();
        let arena = &mut self
            .entries
            .iter_mut()
            .max_by_key(|e| e.last_used)
            .expect("just pushed") // lint: panic-ok(back() of a vec pushed one line up)
            .arena;
        ArenaLookup {
            arena,
            hit: false,
            evicted,
        }
    }

    /// Evicts least-recently-used entries until the budget holds,
    /// protecting the most recently touched entry. Returns whether
    /// anything was evicted.
    fn enforce_budget(&mut self) -> bool {
        let mut evicted = 0u64;
        let cap = self.budget.entry_cap(self.observed.len());
        while self.entries.len() > cap.max(1) {
            self.evict_lru();
            evicted += 1;
        }
        if let ArenaBudget::MemBytes(budget) = self.budget {
            while self.entries.len() > 1 && self.approx_bytes() > budget {
                self.evict_lru();
                evicted += 1;
            }
        }
        if evicted > 0 {
            if let Some(m) = &self.instruments {
                m.evictions.add(evicted);
            }
        }
        evicted > 0
    }

    fn evict_lru(&mut self) {
        if let Some(idx) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
        {
            self.entries.swap_remove(idx);
        }
    }

    /// Drops the arena for `key`, if resident. Used when a replay
    /// panicked mid-run: the arena's queue state may be poisoned, so the
    /// next request for that topology rebuilds instead of reusing it —
    /// the poisoned arena drops alone, the rest of the LRU stays warm.
    /// Returns whether an entry was dropped.
    pub fn remove(&mut self, key: u128) -> bool {
        match self.entries.iter().position(|e| e.key == key) {
            Some(idx) => {
                self.entries.swap_remove(idx);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::AnalysisConfig;
    use systolic_model::Topology;

    fn compiled(cells: u32) -> Arc<CompiledTopology> {
        CompiledTopology::compile(
            &Topology::linear(cells as usize),
            &AnalysisConfig::default(),
        )
        .into_shared()
    }

    #[test]
    fn miss_builds_then_hit_reuses() {
        let mut lru = ArenaLru::new(2);
        let a = compiled(2);
        let first = lru.get_or_build(&a, SimConfig::default());
        assert!(!first.hit && !first.evicted);
        let second = lru.get_or_build(&a, SimConfig::default());
        assert!(second.hit && !second.evicted);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = ArenaLru::new(2);
        let (a, b, c) = (compiled(2), compiled(3), compiled(4));
        lru.get_or_build(&a, SimConfig::default());
        lru.get_or_build(&b, SimConfig::default());
        // Touch `a` so `b` becomes the LRU entry.
        assert!(lru.get_or_build(&a, SimConfig::default()).hit);
        let admitted = lru.get_or_build(&c, SimConfig::default());
        assert!(!admitted.hit && admitted.evicted);
        assert_eq!(lru.len(), 2);
        assert!(
            lru.contains(a.fingerprint()),
            "recently used entry survives"
        );
        assert!(!lru.contains(b.fingerprint()), "LRU entry was evicted");
        assert!(lru.contains(c.fingerprint()));
    }

    #[test]
    fn interleaved_topologies_stay_warm_within_capacity() {
        // A single-arena cache rebuilds on every request of an A,B,A,B
        // stream; the LRU hits from the second round on.
        let mut lru = ArenaLru::new(4);
        let (a, b) = (compiled(2), compiled(3));
        let mut hits = 0;
        for _ in 0..8 {
            hits += usize::from(lru.get_or_build(&a, SimConfig::default()).hit);
            hits += usize::from(lru.get_or_build(&b, SimConfig::default()).hit);
        }
        assert_eq!(hits, 14, "everything after the two cold builds hits");
    }

    #[test]
    fn remove_forces_rebuild_after_poisoning() {
        // The reuse-after-panic contract: a panicked replay drops its
        // arena; the next request rebuilds (a miss), later ones hit again.
        let mut lru = ArenaLru::new(2);
        let a = compiled(2);
        lru.get_or_build(&a, SimConfig::default());
        assert!(lru.remove(a.fingerprint()));
        assert!(lru.is_empty());
        assert!(!lru.remove(a.fingerprint()), "double remove is a no-op");
        let rebuilt = lru.get_or_build(&a, SimConfig::default());
        assert!(!rebuilt.hit, "poisoned arena must not be reused");
        assert!(lru.get_or_build(&a, SimConfig::default()).hit);
    }

    #[test]
    fn different_sim_config_rebuilds_instead_of_reusing() {
        // Same topology, different queue shapes: reusing the buffered
        // arena for a latch-queue replay would report wrong
        // verified/blocked outcomes, so the lookup must miss and rebuild.
        let mut lru = ArenaLru::new(2);
        let a = compiled(2);
        let buffered = SimConfig::default();
        let latch = SimConfig {
            queue: crate::QueueConfig {
                capacity: 0,
                extension: false,
            },
            ..Default::default()
        };
        assert!(!lru.get_or_build(&a, buffered).hit);
        let swapped = lru.get_or_build(&a, latch);
        assert!(
            !swapped.hit,
            "a config change must not reuse the stale arena"
        );
        assert!(
            !swapped.evicted,
            "the stale entry is replaced, not LRU-evicted"
        );
        assert_eq!(lru.len(), 1, "one arena per (topology, config) pair");
        assert!(lru.get_or_build(&a, latch).hit);
        assert!(
            !lru.get_or_build(&a, buffered).hit,
            "and back again rebuilds"
        );
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut lru = ArenaLru::new(0);
        assert_eq!(lru.capacity(), 1);
        let (a, b) = (compiled(2), compiled(3));
        lru.get_or_build(&a, SimConfig::default());
        let swapped = lru.get_or_build(&b, SimConfig::default());
        assert!(!swapped.hit && swapped.evicted);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn auto_budget_tracks_observed_cardinality() {
        // Capacity follows the distinct topologies this LRU has actually
        // seen: three fabrics interleaved all stay warm with no fixed
        // constant, where Fixed(1) would have thrashed.
        let mut lru = ArenaLru::with_budget(ArenaBudget::Auto);
        assert_eq!(lru.capacity(), 1, "nothing observed yet");
        let (a, b, c) = (compiled(2), compiled(3), compiled(4));
        for _ in 0..3 {
            lru.get_or_build(&a, SimConfig::default());
            lru.get_or_build(&b, SimConfig::default());
            lru.get_or_build(&c, SimConfig::default());
        }
        assert_eq!(lru.capacity(), 3, "capacity grew to observed distinct");
        assert_eq!(lru.len(), 3, "all observed fabrics resident");
        assert!(lru.get_or_build(&a, SimConfig::default()).hit);
        assert!(lru.get_or_build(&b, SimConfig::default()).hit);
        assert!(lru.get_or_build(&c, SimConfig::default()).hit);
    }

    #[test]
    fn auto_budget_is_clamped() {
        let mut lru = ArenaLru::with_budget(ArenaBudget::Auto);
        for cells in 2..2 + 2 * MAX_AUTO_ARENAS as u32 {
            lru.get_or_build(&compiled(cells), SimConfig::default());
        }
        assert!(lru.len() <= MAX_AUTO_ARENAS, "auto residency is bounded");
        assert_eq!(lru.capacity(), MAX_AUTO_ARENAS);
    }

    #[test]
    fn mem_budget_evicts_by_estimated_bytes() {
        // A budget big enough for roughly one small arena: admitting a
        // second fabric evicts the first, but the newest arena always
        // stays (even alone over budget).
        let a = compiled(2);
        let probe = SimArena::from_compiled(Arc::clone(&a), SimConfig::default());
        let one_arena = probe.approx_bytes();
        let mut lru = ArenaLru::with_budget(ArenaBudget::MemBytes(one_arena + one_arena / 2));
        lru.get_or_build(&a, SimConfig::default());
        let b = compiled(3);
        let admitted = lru.get_or_build(&b, SimConfig::default());
        assert!(!admitted.hit && admitted.evicted, "bytes budget evicts LRU");
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(b.fingerprint()), "newest arena is protected");

        // A generous budget keeps both.
        let mut roomy = ArenaLru::with_budget(ArenaBudget::MemBytes(64 * 1024 * 1024));
        roomy.get_or_build(&a, SimConfig::default());
        assert!(!roomy.get_or_build(&b, SimConfig::default()).evicted);
        assert_eq!(roomy.len(), 2);
        assert!(roomy.approx_bytes() > 0);
    }

    #[test]
    fn observed_lru_counts_hits_misses_evictions_and_build_time() {
        let obs = Obs::new();
        let mut lru = ArenaLru::new(1);
        lru.set_obs(&obs);
        let (a, b) = (compiled(2), compiled(3));
        lru.get_or_build(&a, SimConfig::default()); // miss
        lru.get_or_build(&a, SimConfig::default()); // hit
        lru.get_or_build(&b, SimConfig::default()); // miss + eviction
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter_value(names::ARENA_CACHE_HITS, &[]), 1);
        assert_eq!(snap.counter_value(names::ARENA_CACHE_MISSES, &[]), 2);
        assert_eq!(snap.counter_value(names::ARENA_CACHE_EVICTIONS, &[]), 1);
        assert_eq!(
            snap.histogram_value(names::ARENA_BUILD_DURATION, &[]).count,
            2
        );
    }

    #[test]
    fn footprint_estimate_grows_with_the_fabric() {
        let small = SimArena::from_compiled(compiled(2), SimConfig::default());
        let large = SimArena::from_compiled(compiled(64), SimConfig::default());
        assert!(
            large.approx_bytes() > small.approx_bytes(),
            "a 64-cell fabric's arena must estimate larger than a 2-cell one"
        );
    }
}
