//! Plan verification: replay an analyzed program through the simulator.
//!
//! The compile-time analysis certifies (Theorem 1) that a deadlock-free
//! program completes under compatible assignment. [`verify_plan`] checks
//! that claim empirically for one [`CommPlan`] by running the cycle-stepped
//! simulator with the [`CompatiblePolicy`]; the serving layer
//! (`systolic-service`) uses it to chase cached analyses with an end-to-end
//! run, and [`verify_batch`] replays a whole batch of certified plans.

use systolic_core::{CommPlan, CompiledTopology};
use systolic_model::{ModelError, Program, Topology};

use crate::{run_simulation, CompatiblePolicy, RunOutcome, SimConfig};

/// The result of replaying one plan through the simulator.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// `true` if every cell completed its program — what Theorem 1
    /// guarantees for a certified plan given enough hardware queues.
    pub completed: bool,
    /// Cycles the simulated run took (up to the configured limit).
    pub cycles: u64,
    /// Words delivered to their final receivers.
    pub words_delivered: u64,
}

/// Replays `program` under `plan`'s compatible assignment and reports
/// whether the run completed.
///
/// The simulator is configured with exactly the plan's queue requirement
/// (`plan.requirements().max_per_interval()`, but at least 1) unless
/// `config` asks for more queues.
///
/// # Errors
///
/// Returns routing/validation errors from the simulator's setup; the
/// verification *outcome* (completed or not) is in the report, not the
/// error channel.
///
/// # Examples
///
/// ```
/// use systolic_core::{AnalysisConfig, Analyzer};
/// use systolic_sim::{verify_plan, SimConfig};
/// use systolic_workloads::{fig7, fig7_topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = fig7(3);
/// let topology = fig7_topology();
/// let analyzer = Analyzer::for_topology(&topology, &AnalysisConfig::default());
/// let plan = analyzer.analyze(&program)?.into_plan();
/// let report = verify_plan(&program, &topology, &plan, SimConfig::default())?;
/// assert!(report.completed);
/// # Ok(())
/// # }
/// ```
pub fn verify_plan(
    program: &Program,
    topology: &Topology,
    plan: &CommPlan,
    config: SimConfig,
) -> Result<VerifyReport, ModelError> {
    let required = plan.requirements().max_per_interval().max(1);
    let config = SimConfig {
        queues_per_interval: config.queues_per_interval.max(required),
        ..config
    };
    let outcome = run_simulation(
        program,
        topology,
        Box::new(CompatiblePolicy::new(plan.clone())),
        config,
    )?;
    let stats = outcome.stats();
    Ok(VerifyReport {
        completed: matches!(outcome, RunOutcome::Completed(_)),
        cycles: stats.cycles,
        words_delivered: stats.words_delivered,
    })
}

/// [`verify_plan`] for callers holding a [`CompiledTopology`] (the
/// serving layer), so they need not carry the `&Topology` separately.
/// Convenience adapter: the simulator builds its own routing state, so
/// this costs exactly what [`verify_plan`] does.
///
/// # Errors
///
/// As [`verify_plan`].
pub fn verify_plan_compiled(
    program: &Program,
    compiled: &CompiledTopology,
    plan: &CommPlan,
    config: SimConfig,
) -> Result<VerifyReport, ModelError> {
    verify_plan(program, compiled.topology(), plan, config)
}

/// Replays every `(program, topology, plan)` triple in a batch.
///
/// # Errors
///
/// Fails fast on the first setup error; per-run outcomes are in the
/// reports.
pub fn verify_batch<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a Topology, &'a CommPlan)>,
    config: SimConfig,
) -> Result<Vec<VerifyReport>, ModelError> {
    batch
        .into_iter()
        .map(|(program, topology, plan)| verify_plan(program, topology, plan, config))
        .collect()
}

/// Replays a batch of `(program, plan)` pairs that all share one
/// precompiled topology — the common shape of a service batch. Like
/// [`verify_plan_compiled`], this is an adapter over [`verify_plan`]:
/// each replay still builds its own simulator state (sharing that setup
/// across a batch is an open ROADMAP item).
///
/// # Errors
///
/// Fails fast on the first setup error; per-run outcomes are in the
/// reports.
pub fn verify_batch_compiled<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a CommPlan)>,
    compiled: &CompiledTopology,
    config: SimConfig,
) -> Result<Vec<VerifyReport>, ModelError> {
    batch
        .into_iter()
        .map(|(program, plan)| verify_plan_compiled(program, compiled, plan, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_workloads::{fig7, fig7_topology, fig9, fig9_topology};

    #[test]
    fn certified_plan_completes() {
        let program = fig7(3);
        let topology = fig7_topology();
        let analyzer = Analyzer::for_topology(&topology, &AnalysisConfig::default());
        let plan = analyzer.analyze(&program).unwrap().into_plan();
        let report = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        assert!(report.completed);
        assert_eq!(report.words_delivered, program.total_words() as u64);
        assert!(report.cycles > 0);
    }

    #[test]
    fn compiled_verification_matches_direct() {
        let program = fig7(3);
        let topology = fig7_topology();
        let compiled =
            CompiledTopology::compile(&topology, &AnalysisConfig::default()).into_shared();
        let analyzer = Analyzer::new(std::sync::Arc::clone(&compiled));
        let plan = analyzer.analyze(&program).unwrap().into_plan();
        let direct = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        let via_compiled =
            verify_plan_compiled(&program, &compiled, &plan, SimConfig::default()).unwrap();
        assert_eq!(direct.completed, via_compiled.completed);
        assert_eq!(direct.cycles, via_compiled.cycles);
        assert_eq!(direct.words_delivered, via_compiled.words_delivered);

        let reports = verify_batch_compiled(
            [(&program, &plan), (&program, &plan)],
            &compiled,
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.completed));
    }

    #[test]
    fn verify_raises_queue_count_to_plan_requirement() {
        // Fig. 9 needs 2 queues on one interval; a default SimConfig (1
        // queue) must be bumped automatically rather than fail Theorem 1's
        // assumption (ii).
        let program = fig9();
        let topology = fig9_topology();
        let config = AnalysisConfig { queues_per_interval: 2, ..Default::default() };
        let plan = Analyzer::for_topology(&topology, &config)
            .analyze(&program)
            .unwrap()
            .into_plan();
        assert_eq!(plan.requirements().max_per_interval(), 2);
        let report = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        assert!(report.completed);
    }

    #[test]
    fn batch_reports_every_run() {
        let p7 = fig7(3);
        let t7 = fig7_topology();
        let plan7 = Analyzer::for_topology(&t7, &AnalysisConfig::default())
            .analyze(&p7)
            .unwrap()
            .into_plan();
        let p9 = fig9();
        let t9 = fig9_topology();
        let c9 = AnalysisConfig { queues_per_interval: 2, ..Default::default() };
        let plan9 = Analyzer::for_topology(&t9, &c9).analyze(&p9).unwrap().into_plan();

        let reports = verify_batch(
            [(&p7, &t7, &plan7), (&p9, &t9, &plan9)],
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.completed));
    }
}
