//! Plan verification: replay an analyzed program through the simulator.
//!
//! The compile-time analysis certifies (Theorem 1) that a deadlock-free
//! program completes under compatible assignment. [`verify_plan`] checks
//! that claim empirically for one [`CommPlan`] by running the cycle-stepped
//! simulator with the [`CompatiblePolicy`]; the serving layer
//! (`systolic-service`) uses it to chase cached analyses with an end-to-end
//! run.
//!
//! # Verifying at scale
//!
//! A service verifies *batches*: many certified plans over one topology.
//! [`verify_batch_compiled`] replays them all through **one**
//! [`SimArena`]: queue pools, per-cell state and per-hop tables are reset
//! in place between replays instead of rebuilt, routes come straight from
//! each plan (no per-replay routing), and plans travel as
//! [`Arc<CommPlan>`] so the [`CompatiblePolicy`] borrows instead of
//! deep-cloning. The one-shot [`verify_plan`] by contrast pays full setup
//! per call — routing each message over the topology and allocating fresh
//! pools — which is exactly the gap the `verify` criterion bench measures
//! (shared arena ≥ 1.5× faster over a 64-plan batch).

use std::sync::Arc;

use systolic_core::{CommPlan, CompiledTopology};
use systolic_model::{CellId, ModelError, Program, Topology};

use crate::{CompatiblePolicy, DeadlockReport, RunOutcome, SimArena, SimConfig, SimWorld};

/// Where and when a replay deadlocked — the actionable core of a
/// [`DeadlockReport`], small enough to travel with every [`VerifyReport`]
/// (mirroring the analyzer's structured diagnostics).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayDeadlock {
    /// Cycle at which the run quiesced without completing.
    pub cycle: u64,
    /// The first blocked cell (lowest cell id with remaining work).
    pub first_blocked: CellId,
    /// Why that cell cannot proceed, human-readable (e.g. `queue c1-c2#0
    /// is empty`).
    pub reason: String,
    /// How many cells in total were blocked.
    pub blocked_cells: usize,
}

impl ReplayDeadlock {
    /// Condenses a full [`DeadlockReport`] into the per-replay summary.
    /// Returns `None` for the degenerate case of a report with no blocked
    /// cells.
    #[must_use]
    pub fn from_report(report: &DeadlockReport) -> Option<Self> {
        let first = report.blocked.first()?;
        Some(ReplayDeadlock {
            cycle: report.cycle,
            first_blocked: first.cell,
            reason: format!(
                "{} at op {} ({}): {}",
                first.cell, first.pc, first.op, first.reason
            ),
            blocked_cells: report.blocked.len(),
        })
    }
}

impl std::fmt::Display for ReplayDeadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlocked at cycle {}: {} ({} cells blocked)",
            self.cycle, self.reason, self.blocked_cells
        )
    }
}

/// The result of replaying one plan through the simulator.
///
/// Implements `PartialEq`/`Eq` so batch paths can be checked for
/// byte-identical results (the parallel [`crate::VerifyPool`] must match
/// the sequential [`verify_batch_compiled`] report-for-report).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// `true` if every cell completed its program — what Theorem 1
    /// guarantees for a certified plan given enough hardware queues.
    pub completed: bool,
    /// Cycles the simulated run took (up to the configured limit).
    pub cycles: u64,
    /// Words delivered to their final receivers.
    pub words_delivered: u64,
    /// When the replay deadlocked: the first blocked cell and the stall
    /// cycle, so a failed verification chase is actionable. `None` for
    /// completed runs and cycle-limit stops.
    pub deadlock: Option<ReplayDeadlock>,
}

impl VerifyReport {
    fn from_outcome(outcome: RunOutcome) -> Self {
        let deadlock = match &outcome {
            RunOutcome::Deadlocked { report, .. } => ReplayDeadlock::from_report(report),
            _ => None,
        };
        let stats = outcome.stats();
        VerifyReport {
            completed: outcome.is_completed(),
            cycles: stats.cycles,
            words_delivered: stats.words_delivered,
            deadlock,
        }
    }
}

impl SimArena {
    /// Replays `program` under `plan`'s compatible assignment through this
    /// arena — the batch verification primitive. Routes come from the
    /// plan itself (certified over this world's topology), the queue pool
    /// is raised to the plan's requirement
    /// ([`ensure_queues`](SimArena::ensure_queues)), and all run state is
    /// reset in place.
    ///
    /// # Errors
    ///
    /// [`ModelError::CellCountMismatch`] if the program does not fit the
    /// world's topology.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was certified over a *different* topology (its
    /// routes cross intervals this world does not have).
    pub fn verify(
        &mut self,
        program: &Program,
        plan: &Arc<CommPlan>,
    ) -> Result<VerifyReport, ModelError> {
        let topology_cells = self.world().topology().num_cells();
        if program.num_cells() != topology_cells {
            return Err(ModelError::CellCountMismatch {
                program: program.num_cells(),
                topology: topology_cells,
            });
        }
        self.ensure_queues(plan.requirements().max_per_interval().max(1));
        let mut policy = CompatiblePolicy::new(Arc::clone(plan));
        let outcome = self.run_with_routes(program, plan.routes(), &mut policy);
        Ok(VerifyReport::from_outcome(outcome))
    }
}

/// Replays `program` under `plan`'s compatible assignment and reports
/// whether the run completed.
///
/// The simulator is configured with exactly the plan's queue requirement
/// (`plan.requirements().max_per_interval()`, but at least 1) unless
/// `config` asks for more queues.
///
/// This is the **one-shot** path: it builds a fresh [`SimWorld`] and
/// [`SimArena`] and routes every message over `topology`, per call. Batch
/// callers share one arena via [`verify_batch_compiled`] instead.
///
/// # Errors
///
/// Returns routing/validation errors from the simulator's setup; the
/// verification *outcome* (completed or not) is in the report, not the
/// error channel.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use systolic_core::{AnalysisConfig, Analyzer};
/// use systolic_sim::{verify_plan, SimConfig};
/// use systolic_workloads::{fig7, fig7_topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = fig7(3);
/// let topology = fig7_topology();
/// let analyzer = Analyzer::for_topology(&topology, &AnalysisConfig::default());
/// let plan = Arc::new(analyzer.analyze(&program)?.into_plan());
/// let report = verify_plan(&program, &topology, &plan, SimConfig::default())?;
/// assert!(report.completed);
/// # Ok(())
/// # }
/// ```
pub fn verify_plan(
    program: &Program,
    topology: &Topology,
    plan: &Arc<CommPlan>,
    config: SimConfig,
) -> Result<VerifyReport, ModelError> {
    let required = plan.requirements().max_per_interval().max(1);
    let config = SimConfig {
        queues_per_interval: config.queues_per_interval.max(required),
        ..config
    };
    let world = SimWorld::new(topology, config);
    // The per-call setup shape: route every message over the topology and
    // build fresh pools, exactly what a batch arena amortizes away.
    let routes = world.routes_for(program)?;
    let mut arena = SimArena::new(world);
    let mut policy = CompatiblePolicy::new(Arc::clone(plan));
    Ok(VerifyReport::from_outcome(arena.run_with_routes(
        program,
        &routes,
        &mut policy,
    )))
}

/// [`verify_plan`] for callers holding a [`CompiledTopology`] (the
/// serving layer), so they need not carry the `&Topology` separately.
/// Runs on a single-replay [`SimArena`]; for more than one plan, build
/// the arena once and call [`SimArena::verify`] per plan (or use
/// [`verify_batch_compiled`]).
///
/// # Errors
///
/// As [`verify_plan`].
pub fn verify_plan_compiled(
    program: &Program,
    compiled: &Arc<CompiledTopology>,
    plan: &Arc<CommPlan>,
    config: SimConfig,
) -> Result<VerifyReport, ModelError> {
    let mut arena = SimArena::from_compiled(Arc::clone(compiled), config);
    arena.verify(program, plan)
}

/// Replays every `(program, topology, plan)` triple in a batch. Each
/// item may name a different topology, so each replay builds its own
/// world; same-topology batches should use [`verify_batch_compiled`].
///
/// # Errors
///
/// Fails fast on the first setup error; per-run outcomes are in the
/// reports.
pub fn verify_batch<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a Topology, &'a Arc<CommPlan>)>,
    config: SimConfig,
) -> Result<Vec<VerifyReport>, ModelError> {
    batch
        .into_iter()
        .map(|(program, topology, plan)| verify_plan(program, topology, plan, config))
        .collect()
}

/// Replays a batch of `(program, plan)` pairs that all share one
/// precompiled topology — the common shape of a service batch — through
/// **one** [`SimArena`]. Queue pools and run-state vectors are built
/// once and reset in place per replay; the pool grows to the batch's
/// largest queue requirement and never shrinks.
///
/// # Errors
///
/// Fails fast on the first setup error (cell-count mismatch); per-run
/// outcomes are in the reports.
pub fn verify_batch_compiled<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CommPlan>)>,
    compiled: &Arc<CompiledTopology>,
    config: SimConfig,
) -> Result<Vec<VerifyReport>, ModelError> {
    let mut arena = SimArena::from_compiled(Arc::clone(compiled), config);
    batch
        .into_iter()
        .map(|(program, plan)| arena.verify(program, plan))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_workloads::{fig7, fig7_topology, fig9, fig9_topology};

    fn plan_for(program: &Program, topology: &Topology, config: &AnalysisConfig) -> Arc<CommPlan> {
        Arc::new(
            Analyzer::for_topology(topology, config)
                .analyze(program)
                .unwrap()
                .into_plan(),
        )
    }

    #[test]
    fn certified_plan_completes() {
        let program = fig7(3);
        let topology = fig7_topology();
        let plan = plan_for(&program, &topology, &AnalysisConfig::default());
        let report = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        assert!(report.completed);
        assert_eq!(report.words_delivered, program.total_words() as u64);
        assert!(report.cycles > 0);
        assert!(
            report.deadlock.is_none(),
            "completed runs carry no deadlock detail"
        );
    }

    #[test]
    fn compiled_verification_matches_direct() {
        let program = fig7(3);
        let topology = fig7_topology();
        let compiled =
            CompiledTopology::compile(&topology, &AnalysisConfig::default()).into_shared();
        let analyzer = Analyzer::new(Arc::clone(&compiled));
        let plan = Arc::new(analyzer.analyze(&program).unwrap().into_plan());
        let direct = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        let via_compiled =
            verify_plan_compiled(&program, &compiled, &plan, SimConfig::default()).unwrap();
        assert_eq!(direct.completed, via_compiled.completed);
        assert_eq!(direct.cycles, via_compiled.cycles);
        assert_eq!(direct.words_delivered, via_compiled.words_delivered);

        let reports = verify_batch_compiled(
            [(&program, &plan), (&program, &plan)],
            &compiled,
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.completed));
        assert!(reports.iter().all(|r| r.cycles == direct.cycles));
    }

    #[test]
    fn verify_raises_queue_count_to_plan_requirement() {
        // Fig. 9 needs 2 queues on one interval; a default SimConfig (1
        // queue) must be bumped automatically rather than fail Theorem 1's
        // assumption (ii).
        let program = fig9();
        let topology = fig9_topology();
        let config = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = plan_for(&program, &topology, &config);
        assert_eq!(plan.requirements().max_per_interval(), 2);
        let report = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        assert!(report.completed);
    }

    #[test]
    fn batch_reports_every_run() {
        let p7 = fig7(3);
        let t7 = fig7_topology();
        let plan7 = plan_for(&p7, &t7, &AnalysisConfig::default());
        let p9 = fig9();
        let t9 = fig9_topology();
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan9 = plan_for(&p9, &t9, &c9);

        let reports = verify_batch(
            [(&p7, &t7, &plan7), (&p9, &t9, &plan9)],
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.completed));
    }

    #[test]
    fn batch_arena_grows_queues_across_mixed_requirements() {
        // A batch whose first plan needs 1 queue and second needs 2: the
        // shared arena must raise its pool mid-batch, and the first plan's
        // replay must not be affected by replay order.
        let p7 = fig7(3);
        let t7 = fig7_topology();
        let plan7 = plan_for(&p7, &t7, &AnalysisConfig::default());
        let p9 = fig9();
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan9 = plan_for(&p9, &fig9_topology(), &c9);
        // fig7_topology and fig9_topology are both linear:4? fig9 is
        // linear(3); use per-topology arenas where they differ.
        let compiled7 = CompiledTopology::compile(&t7, &AnalysisConfig::default()).into_shared();
        let mut arena = SimArena::from_compiled(Arc::clone(&compiled7), SimConfig::default());
        let first = arena.verify(&p7, &plan7).unwrap();
        assert!(first.completed);

        let compiled9 = CompiledTopology::compile(&fig9_topology(), &c9).into_shared();
        let mut arena9 = SimArena::from_compiled(compiled9, SimConfig::default());
        let a = arena9.verify(&p9, &plan9).unwrap();
        assert!(a.completed);
        // Re-verify the 1-queue plan in the grown arena: identical result.
        let again = arena.verify(&p7, &plan7).unwrap();
        assert_eq!(again.cycles, first.cycles);
        assert_eq!(again.words_delivered, first.words_delivered);
    }

    #[test]
    fn deadlocked_replay_names_first_blocked_cell_and_cycle() {
        // A genuinely deadlocking replay: P2 needs buffering, so verify it
        // under capacity-0 latch queues (Section 3.2).
        let program = systolic_workloads::fig5_p2();
        let topology = Topology::linear(2);
        // P2 certifies only under lookahead (both cells write first).
        let config = AnalysisConfig {
            queues_per_interval: 2,
            lookahead: systolic_core::Lookahead::Unbounded,
        };
        let plan = plan_for(&program, &topology, &config);
        let sim = SimConfig {
            queues_per_interval: 2,
            queue: crate::QueueConfig {
                capacity: 0,
                extension: false,
            },
            ..Default::default()
        };
        let report = verify_plan(&program, &topology, &plan, sim).unwrap();
        assert!(!report.completed, "latch queues deadlock P2");
        let deadlock = report.deadlock.expect("deadlock detail is attached");
        assert_eq!(
            deadlock.first_blocked,
            CellId::new(0),
            "c0 is the first blocked cell"
        );
        assert!(deadlock.cycle > 0);
        assert_eq!(deadlock.blocked_cells, 2, "both cells are stuck");
        let text = deadlock.to_string();
        assert!(text.contains("c0"), "{text}");
        assert!(text.contains("cycle"), "{text}");
    }

    #[test]
    fn verify_rejects_mismatched_program() {
        let program = fig9(); // 3 cells
        let t7 = fig7_topology(); // 4 cells
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = plan_for(&program, &fig9_topology(), &c9);
        let compiled = CompiledTopology::compile(&t7, &AnalysisConfig::default()).into_shared();
        let mut arena = SimArena::from_compiled(compiled, SimConfig::default());
        assert!(matches!(
            arena.verify(&program, &plan),
            Err(ModelError::CellCountMismatch { .. })
        ));
    }
}
