//! Plan verification: replay an analyzed program through the simulator.
//!
//! The compile-time analysis certifies (Theorem 1) that a deadlock-free
//! program completes under compatible assignment. [`verify_plan`] checks
//! that claim empirically for one [`CommPlan`] by running the cycle-stepped
//! simulator with the [`CompatiblePolicy`]; the serving layer
//! (`systolic-service`) uses it to chase cached analyses with an end-to-end
//! run, and [`verify_batch`] replays a whole batch of certified plans.

use systolic_core::CommPlan;
use systolic_model::{ModelError, Program, Topology};

use crate::{run_simulation, CompatiblePolicy, RunOutcome, SimConfig};

/// The result of replaying one plan through the simulator.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// `true` if every cell completed its program — what Theorem 1
    /// guarantees for a certified plan given enough hardware queues.
    pub completed: bool,
    /// Cycles the simulated run took (up to the configured limit).
    pub cycles: u64,
    /// Words delivered to their final receivers.
    pub words_delivered: u64,
}

/// Replays `program` under `plan`'s compatible assignment and reports
/// whether the run completed.
///
/// The simulator is configured with exactly the plan's queue requirement
/// (`plan.requirements().max_per_interval()`, but at least 1) unless
/// `config` asks for more queues.
///
/// # Errors
///
/// Returns routing/validation errors from the simulator's setup; the
/// verification *outcome* (completed or not) is in the report, not the
/// error channel.
///
/// # Examples
///
/// ```
/// use systolic_core::{analyze, AnalysisConfig};
/// use systolic_sim::{verify_plan, SimConfig};
/// use systolic_workloads::{fig7, fig7_topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = fig7(3);
/// let topology = fig7_topology();
/// let plan = analyze(&program, &topology, &AnalysisConfig::default())?.into_plan();
/// let report = verify_plan(&program, &topology, &plan, SimConfig::default())?;
/// assert!(report.completed);
/// # Ok(())
/// # }
/// ```
pub fn verify_plan(
    program: &Program,
    topology: &Topology,
    plan: &CommPlan,
    config: SimConfig,
) -> Result<VerifyReport, ModelError> {
    let required = plan.requirements().max_per_interval().max(1);
    let config = SimConfig {
        queues_per_interval: config.queues_per_interval.max(required),
        ..config
    };
    let outcome = run_simulation(
        program,
        topology,
        Box::new(CompatiblePolicy::new(plan.clone())),
        config,
    )?;
    let stats = outcome.stats();
    Ok(VerifyReport {
        completed: matches!(outcome, RunOutcome::Completed(_)),
        cycles: stats.cycles,
        words_delivered: stats.words_delivered,
    })
}

/// Replays every `(program, topology, plan)` triple in a batch.
///
/// # Errors
///
/// Fails fast on the first setup error; per-run outcomes are in the
/// reports.
pub fn verify_batch<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a Topology, &'a CommPlan)>,
    config: SimConfig,
) -> Result<Vec<VerifyReport>, ModelError> {
    batch
        .into_iter()
        .map(|(program, topology, plan)| verify_plan(program, topology, plan, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{analyze, AnalysisConfig};
    use systolic_workloads::{fig7, fig7_topology, fig9, fig9_topology};

    #[test]
    fn certified_plan_completes() {
        let program = fig7(3);
        let topology = fig7_topology();
        let plan = analyze(&program, &topology, &AnalysisConfig::default())
            .unwrap()
            .into_plan();
        let report = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        assert!(report.completed);
        assert_eq!(report.words_delivered, program.total_words() as u64);
        assert!(report.cycles > 0);
    }

    #[test]
    fn verify_raises_queue_count_to_plan_requirement() {
        // Fig. 9 needs 2 queues on one interval; a default SimConfig (1
        // queue) must be bumped automatically rather than fail Theorem 1's
        // assumption (ii).
        let program = fig9();
        let topology = fig9_topology();
        let config = AnalysisConfig { queues_per_interval: 2, ..Default::default() };
        let plan = analyze(&program, &topology, &config).unwrap().into_plan();
        assert_eq!(plan.requirements().max_per_interval(), 2);
        let report = verify_plan(&program, &topology, &plan, SimConfig::default()).unwrap();
        assert!(report.completed);
    }

    #[test]
    fn batch_reports_every_run() {
        let p7 = fig7(3);
        let t7 = fig7_topology();
        let plan7 = analyze(&p7, &t7, &AnalysisConfig::default()).unwrap().into_plan();
        let p9 = fig9();
        let t9 = fig9_topology();
        let c9 = AnalysisConfig { queues_per_interval: 2, ..Default::default() };
        let plan9 = analyze(&p9, &t9, &c9).unwrap().into_plan();

        let reports = verify_batch(
            [(&p7, &t7, &plan7), (&p9, &t9, &plan9)],
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.completed));
    }
}
