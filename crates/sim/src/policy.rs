//! Runtime queue-assignment policies (paper, Section 7).
//!
//! * [`StaticPolicy`] — every message gets a dedicated queue before
//!   execution; "automatically compatible for any consistent message
//!   labeling".
//! * [`CompatiblePolicy`] — the paper's dynamic scheme: the **ordered
//!   assignment** rule (a message is granted only after every smaller-label
//!   competitor has been granted) plus the **simultaneous assignment** rule
//!   (equal-label competitors receive separate queues in one step,
//!   reserving queues for members that have not arrived yet).
//! * [`FifoPolicy`] — the strawman from Figs. 7–9: strict first-come
//!   first-served, no regard for labels. Deadlocks on the paper's examples.
//! * [`GreedyPolicy`] — grants any free queue to any requester, allowing
//!   overtaking; equally label-blind.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use systolic_core::CommPlan;
use systolic_model::{Hop, Interval, MessageId};

use crate::PoolView;

/// A pending request: `message` wants a queue to cross `hop`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request {
    /// The requesting message.
    pub message: MessageId,
    /// The directed interval crossing it needs a queue for.
    pub hop: Hop,
    /// Monotonic sequence number of when the request was first raised.
    pub born: u64,
}

/// A policy decision: grant `message` queue `queue` on `hop.interval()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// The message receiving the queue.
    pub message: MessageId,
    /// The crossing the grant is for.
    pub hop: Hop,
    /// Queue index within the interval's pool.
    pub queue: usize,
}

/// A runtime queue-assignment policy.
///
/// Each simulation cycle the engine passes the outstanding requests (oldest
/// first) and a [`PoolView`]; the policy returns the grants to apply. A
/// policy must only grant free queues and must not grant one queue twice in
/// a single call.
pub trait AssignmentPolicy: std::fmt::Debug {
    /// Decides grants for this cycle.
    fn grant(&mut self, view: &PoolView<'_>, requests: &[Request]) -> Vec<Grant>;

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Called by the engine at the start of every replay, so stateful
    /// policies reset alongside the arena ([`crate::SimArena`] reuses one
    /// policy across replays). Plan-driven and stateless policies need no
    /// override; [`FifoPolicy`] clears its arrival lines here.
    fn begin_run(&mut self) {}
}

/// Static assignment: all queues are dedicated before execution.
///
/// Requires every interval to have at least as many queues as messages
/// crossing it (in both directions); the constructor checks this.
#[derive(Clone, Debug)]
pub struct StaticPolicy {
    table: BTreeMap<(MessageId, Interval), usize>,
}

impl StaticPolicy {
    /// Precomputes dedicated queues from a plan's routes.
    ///
    /// # Errors
    ///
    /// Returns the offending `(interval, needed, available)` if some
    /// interval has more crossing messages than `queues_per_interval`.
    pub fn new(
        plan: &CommPlan,
        queues_per_interval: usize,
    ) -> Result<Self, (Interval, usize, usize)> {
        let mut used: BTreeMap<Interval, usize> = BTreeMap::new();
        let mut table = BTreeMap::new();
        for (m, route) in plan.routes().iter() {
            for hop in route.hops() {
                let slot = used.entry(hop.interval()).or_insert(0);
                if *slot >= queues_per_interval {
                    return Err((hop.interval(), *slot + 1, queues_per_interval));
                }
                table.insert((m, hop.interval()), *slot);
                *slot += 1;
            }
        }
        Ok(StaticPolicy { table })
    }

    /// The dedicated queue of `message` on `interval`, if it crosses it.
    #[must_use]
    pub fn queue_of(&self, message: MessageId, interval: Interval) -> Option<usize> {
        self.table.get(&(message, interval)).copied()
    }
}

impl AssignmentPolicy for StaticPolicy {
    fn grant(&mut self, _view: &PoolView<'_>, requests: &[Request]) -> Vec<Grant> {
        // Dedicated queues are free by construction whenever requested.
        requests
            .iter()
            .map(|r| Grant {
                message: r.message,
                hop: r.hop,
                queue: self.table[&(r.message, r.hop.interval())],
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Strict first-come-first-served: requests queue up per interval; the head
/// request blocks everything behind it until a queue frees up.
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy {
    /// Arrival order per interval (message, hop) — oldest first.
    waiting: BTreeMap<Interval, VecDeque<(MessageId, Hop)>>,
    /// Requests already enqueued (so we enqueue each only once).
    seen: BTreeMap<(MessageId, Interval), ()>,
}

impl FifoPolicy {
    /// Creates an empty FIFO policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AssignmentPolicy for FifoPolicy {
    fn grant(&mut self, view: &PoolView<'_>, requests: &[Request]) -> Vec<Grant> {
        // Requests arrive oldest-first; enqueue new ones.
        for r in requests {
            let key = (r.message, r.hop.interval());
            if self.seen.insert(key, ()).is_none() {
                self.waiting
                    .entry(r.hop.interval())
                    .or_default()
                    .push_back((r.message, r.hop));
            }
        }
        let mut grants = Vec::new();
        for (&interval, queue_line) in &mut self.waiting {
            let mut free = view.free_queues(interval);
            while let Some(&(m, hop)) = queue_line.front() {
                let Some(q) = free.pop() else { break };
                grants.push(Grant {
                    message: m,
                    hop,
                    queue: q,
                });
                queue_line.pop_front();
                self.seen.remove(&(m, interval));
            }
        }
        grants
    }

    fn name(&self) -> &'static str {
        "fifo"
    }

    fn begin_run(&mut self) {
        self.waiting.clear();
        self.seen.clear();
    }
}

/// Label-blind free-for-all: any requester may take any free queue; later
/// requests overtake blocked earlier ones.
#[derive(Clone, Debug, Default)]
pub struct GreedyPolicy;

impl GreedyPolicy {
    /// Creates the greedy policy.
    #[must_use]
    pub fn new() -> Self {
        GreedyPolicy
    }
}

impl AssignmentPolicy for GreedyPolicy {
    fn grant(&mut self, view: &PoolView<'_>, requests: &[Request]) -> Vec<Grant> {
        let mut free: BTreeMap<Interval, Vec<usize>> = BTreeMap::new();
        let mut grants = Vec::new();
        for r in requests {
            let interval = r.hop.interval();
            let slots = free
                .entry(interval)
                .or_insert_with(|| view.free_queues(interval));
            if let Some(q) = slots.pop() {
                grants.push(Grant {
                    message: r.message,
                    hop: r.hop,
                    queue: q,
                });
            }
        }
        grants
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// The paper's compatible dynamic assignment (Section 7):
///
/// 1. **Ordered assignment** — a message is granted a queue on an interval
///    only after every competing message with a *smaller* label has been
///    granted one there (now or in the past);
/// 2. **Simultaneous assignment** — all competing messages with the *same*
///    label are granted separate queues in one step, as soon as enough
///    queues are free; queues are **reserved** for group members that have
///    not requested yet ("a cell can use some reservation scheme to reserve
///    a queue to a message prior to the message's arrival").
#[derive(Clone, Debug)]
pub struct CompatiblePolicy {
    /// Shared, not cloned: a batch of replays (and the serving layer's
    /// cache) hand the same certified plan to many policies.
    plan: Arc<CommPlan>,
    /// Per-direction sub-pool of queue indices on each interval — see
    /// [`CommPlan::direction_queue_ranges`] for the starvation rationale.
    ranges: BTreeMap<Hop, std::ops::Range<usize>>,
}

impl CompatiblePolicy {
    /// Builds the policy from the analysis plan (labels + competing sets).
    ///
    /// Accepts an owned [`CommPlan`] or a shared [`Arc<CommPlan>`]; batch
    /// callers pass `Arc` clones so the plan is borrowed, never deep-cloned.
    #[must_use]
    pub fn new(plan: impl Into<Arc<CommPlan>>) -> Self {
        let plan = plan.into();
        let ranges = plan.direction_queue_ranges();
        CompatiblePolicy { plan, ranges }
    }

    /// The plan driving the policy.
    #[must_use]
    pub fn plan(&self) -> &CommPlan {
        &self.plan
    }

    /// The queue indices reserved for `hop`'s direction on its interval.
    #[must_use]
    pub fn queue_range(&self, hop: Hop) -> std::ops::Range<usize> {
        self.ranges.get(&hop).cloned().unwrap_or(0..0)
    }
}

impl AssignmentPolicy for CompatiblePolicy {
    fn grant(&mut self, view: &PoolView<'_>, requests: &[Request]) -> Vec<Grant> {
        let mut grants: Vec<Grant> = Vec::new();
        // Track queues consumed by grants made earlier in this same call.
        let mut taken: BTreeMap<Interval, Vec<usize>> = BTreeMap::new();
        // Messages granted in this call (counts toward "has been assigned").
        let mut granted_now: Vec<(MessageId, Interval)> = Vec::new();

        for r in requests {
            let interval = r.hop.interval();
            let label = self.plan.label(r.message);
            if view.has_granted(r.message, interval) || granted_now.contains(&(r.message, interval))
            {
                continue; // reservation already made for this message
            }

            let competitors = self.plan.competing().on_hop(r.hop);
            // Ordered rule: all smaller labels must have been granted here.
            let smaller_pending = competitors.iter().any(|&other| {
                self.plan.label(other) < label
                    && !view.has_granted(other, interval)
                    && !granted_now.contains(&(other, interval))
            });
            if smaller_pending {
                continue;
            }

            // Simultaneous rule: the whole equal-label group is granted (or
            // reserved) together.
            let group: Vec<MessageId> = competitors
                .iter()
                .copied()
                .filter(|&other| {
                    self.plan.label(other) == label
                        && !view.has_granted(other, interval)
                        && !granted_now.contains(&(other, interval))
                })
                .collect();

            let range = self.queue_range(r.hop);
            let mut free = view.free_queues(interval);
            free.retain(|q| range.contains(q));
            free.retain(|q| !taken.get(&interval).is_some_and(|t| t.contains(q)));
            if free.len() < group.len() {
                continue; // wait until enough queues are simultaneously free
            }
            for member in group {
                let q = free.pop().expect("checked size"); // lint: panic-ok(len checked immediately above)
                taken.entry(interval).or_default().push(q);
                granted_now.push((member, interval));
                grants.push(Grant {
                    message: member,
                    hop: r.hop,
                    queue: q,
                });
            }
        }
        grants
    }

    fn name(&self) -> &'static str {
        "compatible"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueueConfig, QueuePools};
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::{CellId, Topology};

    fn hop01() -> Hop {
        Hop::new(CellId::new(0), CellId::new(1))
    }

    fn req(m: u32, hop: Hop, born: u64) -> Request {
        Request {
            message: MessageId::new(m),
            hop,
            born,
        }
    }

    #[test]
    fn fifo_respects_arrival_order() {
        let pools = QueuePools::uniform([hop01().interval()], 1, QueueConfig::default());
        let mut policy = FifoPolicy::new();
        let view = PoolView::new(&pools);
        // Two competitors, one queue: only the older request is granted.
        let grants = policy.grant(&view, &[req(1, hop01(), 5), req(0, hop01(), 9)]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].message, MessageId::new(1));
    }

    #[test]
    fn greedy_grants_whatever_is_free() {
        let pools = QueuePools::uniform([hop01().interval()], 2, QueueConfig::default());
        let mut policy = GreedyPolicy::new();
        let view = PoolView::new(&pools);
        let grants = policy.grant(&view, &[req(0, hop01(), 0), req(1, hop01(), 1)]);
        assert_eq!(grants.len(), 2);
        let queues: Vec<usize> = grants.iter().map(|g| g.queue).collect();
        assert_ne!(queues[0], queues[1], "no double-granting one queue");
    }

    fn fig7_plan() -> CommPlan {
        let p = systolic_workloads::fig7(3);
        Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default())
            .analyze(&p)
            .unwrap()
            .into_plan()
    }

    #[test]
    fn compatible_blocks_larger_label_until_smaller_granted() {
        let plan = fig7_plan();
        // Hop c2->c3 carries B (label 3) and C (label 2).
        let hop = Hop::new(CellId::new(2), CellId::new(3));
        let pools = QueuePools::uniform([hop.interval()], 1, QueueConfig::default());
        let mut policy = CompatiblePolicy::new(plan);

        // B requests first (the Fig. 7 race): must NOT be granted while C
        // (smaller label) has never been granted here.
        let b = MessageId::new(1);
        let c = MessageId::new(2);
        let view = PoolView::new(&pools);
        let grants = policy.grant(
            &view,
            &[Request {
                message: b,
                hop,
                born: 0,
            }],
        );
        assert!(grants.is_empty(), "B must wait for C");

        // C requests: granted immediately (smallest label present).
        let grants = policy.grant(
            &view,
            &[Request {
                message: c,
                hop,
                born: 1,
            }],
        );
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].message, c);
    }

    #[test]
    fn compatible_grants_b_after_c_has_history() {
        let plan = fig7_plan();
        let hop = Hop::new(CellId::new(2), CellId::new(3));
        let mut pools = QueuePools::uniform([hop.interval()], 1, QueueConfig::default());
        let b = MessageId::new(1);
        let c = MessageId::new(2);

        // C held the queue and released it (all words passed).
        pools.grant(c, hop, 0);
        pools.release(c, hop.interval());

        let mut policy = CompatiblePolicy::new(plan);
        let view = PoolView::new(&pools);
        let grants = policy.grant(
            &view,
            &[Request {
                message: b,
                hop,
                born: 7,
            }],
        );
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].message, b);
    }

    #[test]
    fn compatible_reserves_whole_equal_label_group() {
        // Fig. 9: A and B share a label on hop c0->c1.
        let p = systolic_workloads::fig9();
        let config = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(&Topology::linear(3), &config)
            .analyze(&p)
            .unwrap()
            .into_plan();
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        let a = p.message_id("A").unwrap();
        let b = p.message_id("B").unwrap();

        // With 2 queues: A's request triggers grants for BOTH A and B.
        let pools = QueuePools::uniform([hop.interval()], 2, QueueConfig::default());
        let mut policy = CompatiblePolicy::new(plan.clone());
        let view = PoolView::new(&pools);
        let grants = policy.grant(
            &view,
            &[Request {
                message: a,
                hop,
                born: 0,
            }],
        );
        let granted: Vec<MessageId> = grants.iter().map(|g| g.message).collect();
        assert!(
            granted.contains(&a) && granted.contains(&b),
            "group granted together"
        );

        // With 1 queue: nobody is granted (cannot satisfy the group).
        let pools = QueuePools::uniform([hop.interval()], 1, QueueConfig::default());
        let mut policy = CompatiblePolicy::new(plan);
        let view = PoolView::new(&pools);
        let grants = policy.grant(
            &view,
            &[Request {
                message: a,
                hop,
                born: 0,
            }],
        );
        assert!(grants.is_empty());
    }

    #[test]
    fn static_policy_dedicates_queues() {
        let plan = fig7_plan();
        // Interval c2-c3 carries A (c2->c3)? No: A is c1->c2. It carries B
        // and C, so 2 queues suffice for static; intervals c0-c1 and c1-c2
        // carry at most 2 (C and A).
        let policy = StaticPolicy::new(&plan, 2).unwrap();
        let b = MessageId::new(1);
        let c = MessageId::new(2);
        let iv = Interval::new(CellId::new(2), CellId::new(3));
        let qb = policy.queue_of(b, iv).unwrap();
        let qc = policy.queue_of(c, iv).unwrap();
        assert_ne!(qb, qc, "dedicated queues are distinct");
        assert!(
            StaticPolicy::new(&plan, 1).is_err(),
            "1 queue cannot dedicate 2 messages"
        );
    }

    #[test]
    fn policy_names() {
        assert_eq!(GreedyPolicy::new().name(), "greedy");
        assert_eq!(FifoPolicy::new().name(), "fifo");
    }
}

#[cfg(test)]
mod more_policy_tests {
    use super::*;
    use crate::{QueueConfig, QueuePools};
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::{CellId, Topology};

    /// FIFO keeps its arrival order across calls: a request that arrived
    /// first is served first even if it was unserviceable for many cycles.
    #[test]
    fn fifo_head_blocks_across_cycles() {
        let hop = Hop::new(CellId::new(0), CellId::new(1));
        let mut pools = QueuePools::uniform([hop.interval()], 1, QueueConfig::default());
        // Occupy the only queue.
        pools.grant(MessageId::new(9), hop, 0);
        let mut policy = FifoPolicy::new();

        // m1 arrives first (older born), m0 second.
        let r1 = Request {
            message: MessageId::new(1),
            hop,
            born: 1,
        };
        let r0 = Request {
            message: MessageId::new(0),
            hop,
            born: 2,
        };
        let view = PoolView::new(&pools);
        assert!(
            policy.grant(&view, &[r1, r0]).is_empty(),
            "nothing free yet"
        );

        // Queue frees up; even if only m0 re-requests this cycle, the line
        // head (m1) is served first.
        pools.release(MessageId::new(9), hop.interval());
        let view = PoolView::new(&pools);
        let grants = policy.grant(&view, &[r1, r0]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].message, MessageId::new(1));
    }

    /// The compatible policy enforces the ordered rule independently per
    /// interval of a multi-hop route.
    #[test]
    fn compatible_orders_each_interval_independently() {
        // Fig. 7: C crosses three intervals; B competes only on the last.
        let p = systolic_workloads::fig7(2);
        let plan = Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default())
            .analyze(&p)
            .unwrap()
            .into_plan();
        let b = p.message_id("B").unwrap();
        let c = p.message_id("C").unwrap();
        let first_hop = Hop::new(CellId::new(0), CellId::new(1));
        let last_hop = Hop::new(CellId::new(2), CellId::new(3));
        let pools = QueuePools::uniform(
            [first_hop.interval(), last_hop.interval()],
            1,
            QueueConfig::default(),
        );
        let mut policy = CompatiblePolicy::new(plan);
        let view = PoolView::new(&pools);
        // C is the only competitor on its first hop: granted immediately.
        let grants = policy.grant(
            &view,
            &[Request {
                message: c,
                hop: first_hop,
                born: 0,
            }],
        );
        assert_eq!(grants.len(), 1);
        // B on the last hop still waits for C's grant *there*.
        let grants = policy.grant(
            &view,
            &[Request {
                message: b,
                hop: last_hop,
                born: 1,
            }],
        );
        assert!(grants.is_empty());
    }

    /// A static policy grant is idempotent-safe: requests stop once the
    /// engine records the live assignment, and `queue_of` is stable.
    #[test]
    fn static_queue_of_is_stable() {
        let p = systolic_workloads::fig3_messages();
        let config = AnalysisConfig {
            queues_per_interval: 4,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(&Topology::linear(4), &config)
            .analyze(&p)
            .unwrap()
            .into_plan();
        let policy = StaticPolicy::new(&plan, 4).unwrap();
        let a = p.message_id("A").unwrap();
        for iv in plan.route(a).intervals() {
            assert_eq!(policy.queue_of(a, iv), policy.queue_of(a, iv));
        }
        // A message does not get a queue on an interval it does not cross.
        let d = p.message_id("D").unwrap();
        let first = Interval::new(CellId::new(0), CellId::new(1));
        assert_eq!(policy.queue_of(d, first), None);
    }
}
