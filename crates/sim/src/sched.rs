//! Cross-topology verify scheduling: one fan-out for a heterogeneous
//! batch of certified plans.
//!
//! [`VerifyPool`](crate::VerifyPool) spans **one** [`SimWorld`] — mixed
//! traffic needs a pool per topology, and a serving layer dispatching
//! chases one at a time loses exactly the parallelism the pool was built
//! for. [`VerifyScheduler`] generalizes the pool: each worker owns an
//! [`ArenaLru`] over *multiple* worlds keyed by compiled-topology
//! fingerprint, so a single batch may interleave mesh, torus and line
//! plans and still fan out over every worker at once:
//!
//! * **scoped threads, work stealing** — as the pool: a shared atomic
//!   cursor hands out batch indices, workers borrow their LRU for the
//!   duration of one call, and reports are merged back into **input
//!   order**;
//! * **warm arenas across batches and topologies** — a worker that drew
//!   a mesh plan after a torus plan switches worlds by LRU lookup, not by
//!   rebuild; residency is governed by an [`ArenaBudget`] (fixed count,
//!   observed-cardinality auto sizing, or a byte budget);
//! * **per-topology pre-growth** — every topology group's arenas grow to
//!   that group's largest queue requirement before replay, so outcomes
//!   are independent of stealing order and **byte-identical** to the
//!   sequential [`verify_batch_compiled`](crate::verify_batch_compiled)
//!   path per topology (`tests/verify_parity.rs` asserts this by
//!   property, `ReplayDeadlock` details included);
//! * **panic isolation** — [`VerifyScheduler::verify_batch_outcomes`]
//!   reports a replay panic as one item's
//!   [`VerifyTaskError::Panicked`] and drops exactly the poisoned arena;
//!   the rest of the batch, and the other residents of that worker's
//!   LRU, are untouched.

use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use systolic_core::{CommPlan, CompiledTopology};
use systolic_model::{ModelError, Program};
use systolic_obs::{names, Histogram, Obs};

use crate::{ArenaBudget, ArenaLru, SimArena, SimConfig, SimWorld, VerifyReport};

/// Why one scheduled replay produced no [`VerifyReport`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyTaskError {
    /// Replay setup was rejected (cell-count mismatch between the program
    /// and the plan's topology).
    Model(ModelError),
    /// The replay panicked; the scheduler dropped the possibly-poisoned
    /// arena (the rest of that worker's LRU stays warm) and carries the
    /// panic message here instead of unwinding.
    Panicked(String),
}

impl std::fmt::Display for VerifyTaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyTaskError::Model(e) => write!(f, "{e}"),
            VerifyTaskError::Panicked(msg) => write!(f, "replay panicked: {msg}"),
        }
    }
}

impl std::error::Error for VerifyTaskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyTaskError::Model(e) => Some(e),
            VerifyTaskError::Panicked(_) => None,
        }
    }
}

/// Fan-out participation of one topology, by spec string.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TopologyFanout {
    /// Fan-outs that included at least one plan for this topology.
    pub fanouts: u64,
    /// Plans of this topology verified through the scheduler.
    pub items: u64,
}

/// Cumulative counters of a [`VerifyScheduler`] — what a serving layer
/// surfaces in its summary.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SchedulerStats {
    /// Batches fanned out (each [`VerifyScheduler::verify_batch`] or
    /// [`verify_batch_outcomes`](VerifyScheduler::verify_batch_outcomes)
    /// call with at least one item).
    pub fanouts: u64,
    /// Plans verified, summed over all fan-outs.
    pub items: u64,
    /// The largest single fan-out — the deepest coalescing window the
    /// scheduler has seen.
    pub max_fanout: u64,
    /// Replays served by a resident (warm) arena.
    pub arena_hits: u64,
    /// Replays that had to build an arena.
    pub arena_misses: u64,
    /// Arenas displaced by budget pressure.
    pub arena_evictions: u64,
    /// Distinct compiled topologies ever scheduled.
    pub distinct_topologies: u64,
    /// Per-topology fan-out participation, keyed by
    /// [`Topology::spec`](systolic_model::Topology::spec) (stable order).
    pub per_topology: BTreeMap<String, TopologyFanout>,
}

/// Where one task's arena comes from when its worker has to build one.
#[derive(Clone, Copy)]
enum Source<'a> {
    Compiled(&'a Arc<CompiledTopology>),
    World(&'a SimWorld),
}

impl Source<'_> {
    fn build(self, sim: SimConfig) -> SimArena {
        match self {
            Source::Compiled(compiled) => SimArena::from_compiled(Arc::clone(compiled), sim),
            Source::World(world) => SimArena::new(world.clone()),
        }
    }

    fn spec(self) -> String {
        match self {
            Source::Compiled(compiled) => compiled.topology().spec(),
            Source::World(world) => world.topology().spec(),
        }
    }
}

/// One unit of scheduled work: a `(program, plan)` pair, the 128-bit key
/// its arena lives under, and the queue count its topology group was
/// sized to.
struct Task<'a> {
    program: &'a Program,
    plan: &'a Arc<CommPlan>,
    key: u128,
    group_max: usize,
    source: Source<'a>,
}

/// What one worker hands back from a fan-out: its input-indexed
/// outcomes plus the arena-lookup tally accumulated along the way.
type WorkerYield = (
    Vec<(usize, Result<VerifyReport, VerifyTaskError>)>,
    LruTally,
);

/// Per-worker arena-lookup tallies, merged into [`SchedulerStats`] after
/// the fan-out joins.
#[derive(Default)]
struct LruTally {
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruTally {
    fn note(&mut self, hit: bool, evicted: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if evicted {
            self.evictions += 1;
        }
    }
}

/// The cross-topology verify scheduler: N workers, each owning an
/// [`ArenaLru`] over the worlds it has replayed, verifying heterogeneous
/// plan batches in one fan-out.
///
/// Build one per node and feed it every batch — mixed mesh/torus/line
/// traffic included. Reports come back in input order, byte-identical to
/// running [`verify_batch_compiled`](crate::verify_batch_compiled) per
/// topology group sequentially.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
/// use systolic_model::{ProgramBuilder, Topology};
/// use systolic_sim::{ArenaBudget, SimConfig, VerifyScheduler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = AnalysisConfig::default();
/// let mut batch = Vec::new();
/// // An interleaved mesh + torus batch: one scheduler, one fan-out.
/// for topology in [Topology::mesh(2, 2), Topology::torus(2, 2)] {
///     let compiled = CompiledTopology::compile(&topology, &config).into_shared();
///     let analyzer = Analyzer::new(Arc::clone(&compiled));
///     for reps in 1..=2 {
///         let mut builder = ProgramBuilder::new(topology.num_cells());
///         builder.message("A", 0u32, 1u32)?;
///         builder.write_n(0u32, "A", reps)?;
///         builder.read_n(1u32, "A", reps)?;
///         let program = builder.build()?;
///         let plan = Arc::new(analyzer.analyze(&program)?.into_plan());
///         batch.push((program, compiled.clone(), plan));
///     }
/// }
/// let mut scheduler = VerifyScheduler::new(SimConfig::default(), 2, ArenaBudget::Auto);
/// let reports =
///     scheduler.verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))?;
/// assert!(reports.iter().all(|r| r.completed));
/// assert_eq!(scheduler.stats().fanouts, 1);
/// assert_eq!(scheduler.stats().distinct_topologies, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VerifyScheduler {
    sim: SimConfig,
    /// One arena LRU per worker thread; persistent across batches so
    /// arenas stay warm between fan-outs.
    workers: Vec<ArenaLru>,
    /// Every compiled-topology key ever scheduled (distinct-cardinality
    /// counter behind [`SchedulerStats::distinct_topologies`]).
    seen: HashSet<u128>,
    stats: SchedulerStats,
    obs: Option<Arc<Obs>>,
}

impl VerifyScheduler {
    /// A scheduler of `threads` workers (clamped to ≥ 1), each holding an
    /// [`ArenaLru`] governed by `budget`, replaying under `sim`.
    #[must_use]
    pub fn new(sim: SimConfig, threads: usize, budget: ArenaBudget) -> Self {
        let workers = (0..threads.max(1))
            .map(|_| ArenaLru::with_budget(budget))
            .collect();
        VerifyScheduler {
            sim,
            workers,
            seen: HashSet::new(),
            stats: SchedulerStats::default(),
            obs: None,
        }
    }

    /// Attaches a shared observability bundle: fan-outs count into
    /// `systolic_scheduler_{fanouts,items}_total` with a
    /// `systolic_scheduler_fanout_size` histogram, each replay records its
    /// wall time (in-place arena reset + cycle-stepped run) into
    /// `systolic_verify_replay_duration_micros` and its simulated cycle
    /// count into `systolic_verify_replay_cycles{topology=...}`, and every
    /// worker's [`ArenaLru`] starts writing the shared arena-cache
    /// counters and build-duration histogram.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        for lru in &mut self.workers {
            lru.set_obs(&obs);
        }
        self.obs = Some(obs);
    }

    /// Number of worker threads (= arena LRUs) this scheduler fans out
    /// over.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The simulator configuration every replay runs under.
    #[must_use]
    pub fn sim(&self) -> SimConfig {
        self.sim
    }

    /// The residency budget each worker's LRU enforces.
    #[must_use]
    pub fn budget(&self) -> ArenaBudget {
        self.workers[0].budget()
    }

    /// Arenas currently resident across all workers.
    #[must_use]
    pub fn resident_arenas(&self) -> usize {
        self.workers.iter().map(ArenaLru::len).sum()
    }

    /// Cumulative fan-out and arena counters.
    #[must_use]
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Replays every `(program, compiled topology, plan)` triple of a
    /// heterogeneous batch in one fan-out and returns the reports **in
    /// input order** — byte-identical to the sequential
    /// [`verify_batch_compiled`](crate::verify_batch_compiled) path run
    /// per topology group.
    ///
    /// # Errors
    ///
    /// As the sequential path: a setup error is reported for the earliest
    /// offending batch index; per-run outcomes (completed / deadlocked,
    /// with details) are in the reports.
    ///
    /// # Panics
    ///
    /// Resumes a replay panic on the calling thread (after the fan-out
    /// completes and the poisoned arena is dropped). Serving layers that
    /// must isolate panics per item use
    /// [`verify_batch_outcomes`](VerifyScheduler::verify_batch_outcomes).
    pub fn verify_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CompiledTopology>, &'a Arc<CommPlan>)>,
    ) -> Result<Vec<VerifyReport>, ModelError> {
        strict(self.verify_batch_outcomes(batch))
    }

    /// As [`verify_batch`](VerifyScheduler::verify_batch), but with
    /// per-item outcomes: one item's setup error or replay panic is
    /// *that item's* [`VerifyTaskError`], and every other item still gets
    /// its report — the contract a serving layer needs to answer each
    /// client independently.
    pub fn verify_batch_outcomes<'a>(
        &mut self,
        batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CompiledTopology>, &'a Arc<CommPlan>)>,
    ) -> Vec<Result<VerifyReport, VerifyTaskError>> {
        let tasks: Vec<Task<'_>> = batch
            .into_iter()
            .map(|(program, compiled, plan)| Task {
                program,
                plan,
                key: compiled.fingerprint(),
                group_max: 1,
                source: Source::Compiled(compiled),
            })
            .collect();
        self.run(tasks)
    }

    /// The [`VerifyPool`](crate::VerifyPool) adapter's entry: a
    /// homogeneous batch over one caller-held world under a caller-chosen
    /// key.
    pub(crate) fn verify_batch_in_world<'a>(
        &mut self,
        world: &SimWorld,
        key: u128,
        batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CommPlan>)>,
    ) -> Result<Vec<VerifyReport>, ModelError> {
        let tasks: Vec<Task<'_>> = batch
            .into_iter()
            .map(|(program, plan)| Task {
                program,
                plan,
                key,
                group_max: 1,
                source: Source::World(world),
            })
            .collect();
        strict(self.run(tasks))
    }

    fn run(&mut self, mut tasks: Vec<Task<'_>>) -> Vec<Result<VerifyReport, VerifyTaskError>> {
        if tasks.is_empty() {
            return Vec::new();
        }
        // Pre-size each topology group to its largest queue requirement:
        // a group's replays then see one pool shape no matter which worker
        // stole them or in what order, keeping the fan-out structurally
        // identical to a sequential per-group batch.
        let mut group_max: BTreeMap<u128, usize> = BTreeMap::new();
        for task in &tasks {
            let need = task.plan.requirements().max_per_interval().max(1);
            let entry = group_max.entry(task.key).or_insert(1);
            *entry = (*entry).max(need);
        }
        for task in &mut tasks {
            task.group_max = group_max[&task.key];
        }

        self.stats.fanouts += 1;
        self.stats.items += tasks.len() as u64;
        self.stats.max_fanout = self.stats.max_fanout.max(tasks.len() as u64);
        // Count by fingerprint and render each group's topology spec once
        // per fan-out — spec strings can be large (graph topologies list
        // every edge), so formatting one per *task* would dominate the
        // dispatch cost of big homogeneous batches.
        let mut key_counts: BTreeMap<u128, u64> = BTreeMap::new();
        for task in &tasks {
            self.seen.insert(task.key);
            *key_counts.entry(task.key).or_insert(0) += 1;
        }
        self.stats.distinct_topologies = self.seen.len() as u64;
        // One per-topology replay-cycle histogram per distinct key in this
        // fan-out, resolved before dispatch so the merge loop below does
        // not take the registry lock per task.
        let mut cycle_hists: BTreeMap<u128, Arc<Histogram>> = BTreeMap::new();
        for (key, count) in key_counts {
            let spec = tasks
                .iter()
                .find(|task| task.key == key)
                .expect("key came from tasks") // lint: panic-ok(key was drawn from the same map two lines up)
                .source
                .spec();
            if let Some(obs) = &self.obs {
                cycle_hists.insert(
                    key,
                    obs.registry()
                        .histogram_with(names::VERIFY_REPLAY_CYCLES, &[("topology", &spec)]),
                );
            }
            let entry = self.stats.per_topology.entry(spec).or_default();
            entry.fanouts += 1;
            entry.items += count;
        }
        let replay_hist = self
            .obs
            .as_ref()
            .map(|obs| obs.registry().histogram(names::VERIFY_REPLAY_DURATION));
        if let Some(obs) = &self.obs {
            let registry = obs.registry();
            registry.counter(names::SCHED_FANOUTS).inc();
            registry.counter(names::SCHED_ITEMS).add(tasks.len() as u64);
            registry
                .histogram(names::SCHED_FANOUT_SIZE)
                .record(tasks.len() as u64);
        }

        let sim = self.sim;
        let workers = self.workers.len().min(tasks.len());
        // One worker (or one item): skip the thread machinery entirely.
        let outcomes: Vec<Result<VerifyReport, VerifyTaskError>> = if workers <= 1 {
            let lru = &mut self.workers[0];
            let mut tally = LruTally::default();
            let outcomes: Vec<_> = tasks
                .iter()
                .map(|task| verify_one(lru, sim, task, &mut tally, replay_hist.as_deref()))
                .collect();
            self.absorb(std::iter::once(tally));
            outcomes
        } else {
            // Work-stealing cursor, as in the pool: each worker draws the
            // next unclaimed index until the batch is exhausted; outcomes
            // carry their index so the merge restores input order.
            let cursor = AtomicUsize::new(0);
            let replay_hist = replay_hist.as_deref();
            let per_worker: Vec<WorkerYield> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .take(workers)
                    .map(|lru| {
                        let cursor = &cursor;
                        let tasks = &tasks;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            let mut tally = LruTally::default();
                            loop {
                                // lint: relaxed-ok(work-stealing cursor; fetch_add atomicity alone yields unique indices)
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(task) = tasks.get(i) else {
                                    break;
                                };
                                local
                                    .push((i, verify_one(lru, sim, task, &mut tally, replay_hist)));
                            }
                            (local, tally)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| {
                        handle
                            .join()
                            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                    })
                    .collect()
            });

            let mut outcomes: Vec<Option<Result<VerifyReport, VerifyTaskError>>> =
                (0..tasks.len()).map(|_| None).collect();
            let mut tallies = Vec::with_capacity(per_worker.len());
            for (local, tally) in per_worker {
                tallies.push(tally);
                for (i, outcome) in local {
                    outcomes[i] = Some(outcome);
                }
            }
            self.absorb(tallies);
            outcomes
                .into_iter()
                // lint: panic-ok(the scatter loop above wrote every index exactly once)
                .map(|outcome| outcome.expect("every batch index was verified"))
                .collect()
        };
        // Per-topology replay-cycle histograms, recorded once the merge
        // restored input order (outcome i belongs to task i).
        if !cycle_hists.is_empty() {
            for (task, outcome) in tasks.iter().zip(&outcomes) {
                if let (Ok(report), Some(hist)) = (outcome, cycle_hists.get(&task.key)) {
                    hist.record(report.cycles);
                }
            }
        }
        outcomes
    }

    fn absorb(&mut self, tallies: impl IntoIterator<Item = LruTally>) {
        for tally in tallies {
            self.stats.arena_hits += tally.hits;
            self.stats.arena_misses += tally.misses;
            self.stats.arena_evictions += tally.evictions;
        }
    }
}

/// One scheduled replay: LRU lookup (building the arena on a miss),
/// per-group queue growth, then the verify run — all inside
/// `catch_unwind`, so a panic poisons at most the one arena involved,
/// which is dropped from the LRU before the outcome is reported.
fn verify_one(
    lru: &mut ArenaLru,
    sim: SimConfig,
    task: &Task<'_>,
    tally: &mut LruTally,
    replay_hist: Option<&Histogram>,
) -> Result<VerifyReport, VerifyTaskError> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let lookup = lru.get_or_build_with(task.key, sim, || task.source.build(sim));
        let flags = (lookup.hit, lookup.evicted);
        lookup.arena.ensure_queues(task.group_max);
        // Replay wall time: the in-place state reset plus the
        // cycle-stepped run (arena *builds* are timed separately by the
        // LRU's own histogram).
        let replay_start = Instant::now();
        let outcome = lookup.arena.verify(task.program, task.plan);
        let replay_micros = replay_start.elapsed().as_micros() as u64;
        (flags, outcome, replay_micros)
    }));
    match result {
        Ok(((hit, evicted), outcome, replay_micros)) => {
            tally.note(hit, evicted);
            if let Some(hist) = replay_hist {
                hist.record(replay_micros);
            }
            outcome.map_err(VerifyTaskError::Model)
        }
        Err(panic) => {
            lru.remove(task.key);
            Err(VerifyTaskError::Panicked(panic_message(&panic)))
        }
    }
}

/// Collapses per-item outcomes to the strict contract of the sequential
/// path: any panic resumes on the caller, otherwise the earliest setup
/// error (by batch index) wins, otherwise all reports in input order.
fn strict(
    outcomes: Vec<Result<VerifyReport, VerifyTaskError>>,
) -> Result<Vec<VerifyReport>, ModelError> {
    if let Some(msg) = outcomes.iter().find_map(|o| match o {
        Err(VerifyTaskError::Panicked(msg)) => Some(msg.clone()),
        _ => None,
    }) {
        std::panic::resume_unwind(Box::new(msg));
    }
    let mut reports = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Ok(report) => reports.push(report),
            Err(VerifyTaskError::Model(error)) => return Err(error),
            Err(VerifyTaskError::Panicked(_)) => unreachable!("panics resumed above"),
        }
    }
    Ok(reports)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_batch_compiled;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::{ProgramBuilder, Topology};

    /// A short neighbor transfer: `reps` words from cell 0 to cell 1 on a
    /// `cells`-cell fabric.
    fn chain(cells: usize, reps: usize) -> Program {
        let mut builder = ProgramBuilder::new(cells);
        builder.message("A", 0u32, 1u32).unwrap();
        builder.write_n(0u32, "A", reps).unwrap();
        builder.read_n(1u32, "A", reps).unwrap();
        builder.build().unwrap()
    }

    /// A mixed batch: `per_topology` certified transfer-chain plans on
    /// each of the given topologies, interleaved round-robin.
    fn mixed_batch(
        topologies: &[Topology],
        per_topology: usize,
    ) -> Vec<(Program, Arc<CompiledTopology>, Arc<CommPlan>)> {
        let config = AnalysisConfig::default();
        let per: Vec<Vec<_>> = topologies
            .iter()
            .map(|topology| {
                let compiled = CompiledTopology::compile(topology, &config).into_shared();
                let analyzer = Analyzer::new(Arc::clone(&compiled));
                (0..per_topology)
                    .map(|i| {
                        let program = chain(topology.num_cells(), 1 + i % 3);
                        let plan = Arc::new(analyzer.analyze(&program).unwrap().into_plan());
                        (program, Arc::clone(&compiled), plan)
                    })
                    .collect()
            })
            .collect();
        let mut interleaved = Vec::new();
        for i in 0..per_topology {
            for group in &per {
                interleaved.push(group[i].clone());
            }
        }
        interleaved
    }

    /// The sequential reference: per-topology `verify_batch_compiled`,
    /// reassembled into the batch's original order.
    fn sequential_reference(
        batch: &[(Program, Arc<CompiledTopology>, Arc<CommPlan>)],
        sim: SimConfig,
    ) -> Vec<VerifyReport> {
        let mut keys: Vec<u128> = Vec::new();
        for (_, compiled, _) in batch {
            if !keys.contains(&compiled.fingerprint()) {
                keys.push(compiled.fingerprint());
            }
        }
        let mut reports: Vec<Option<VerifyReport>> = vec![None; batch.len()];
        for key in keys {
            let indices: Vec<usize> = (0..batch.len())
                .filter(|&i| batch[i].1.fingerprint() == key)
                .collect();
            let group = verify_batch_compiled(
                indices.iter().map(|&i| (&batch[i].0, &batch[i].2)),
                &batch[indices[0]].1,
                sim,
            )
            .unwrap();
            for (&i, report) in indices.iter().zip(group) {
                reports[i] = Some(report);
            }
        }
        reports.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn mixed_batch_matches_sequential_per_topology() {
        let batch = mixed_batch(
            &[
                Topology::mesh(2, 2),
                Topology::torus(2, 2),
                Topology::linear(3),
            ],
            5,
        );
        let sim = SimConfig::default();
        let sequential = sequential_reference(&batch, sim);
        for threads in [1, 2, 4] {
            let mut scheduler = VerifyScheduler::new(sim, threads, ArenaBudget::Auto);
            let reports = scheduler
                .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
                .unwrap();
            assert_eq!(reports, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn one_fanout_covers_a_mixed_mesh_torus_batch() {
        // The acceptance shape: a 256-plan interleaved mesh+torus batch
        // through one scheduler fan-out — no per-topology pool rebuilds,
        // so arena builds stay bounded by workers × topologies.
        let batch = mixed_batch(&[Topology::mesh(4, 4), Topology::torus(4, 4)], 128);
        assert_eq!(batch.len(), 256);
        let mut scheduler = VerifyScheduler::new(SimConfig::default(), 4, ArenaBudget::Auto);
        let reports = scheduler
            .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
            .unwrap();
        assert_eq!(reports.len(), 256);
        assert!(reports.iter().all(|r| r.completed));
        let stats = scheduler.stats();
        assert_eq!(stats.fanouts, 1, "one fan-out for the whole batch");
        assert_eq!(stats.items, 256);
        assert_eq!(stats.max_fanout, 256);
        assert_eq!(stats.distinct_topologies, 2);
        assert!(
            stats.arena_misses <= 8,
            "at most workers × topologies builds: {stats:?}"
        );
        assert_eq!(stats.arena_hits + stats.arena_misses, 256);
        assert_eq!(stats.per_topology.len(), 2);
        assert!(stats.per_topology.values().all(|t| t.items == 128));
    }

    #[test]
    fn arenas_stay_warm_across_batches() {
        let batch = mixed_batch(&[Topology::mesh(2, 2), Topology::torus(2, 2)], 4);
        let mut scheduler = VerifyScheduler::new(SimConfig::default(), 2, ArenaBudget::Auto);
        let first = scheduler
            .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
            .unwrap();
        let misses_after_first = scheduler.stats().arena_misses;
        let second = scheduler
            .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
            .unwrap();
        assert_eq!(first, second, "reuse across batches must not drift");
        assert_eq!(
            scheduler.stats().arena_misses,
            misses_after_first,
            "the second batch replays entirely through warm arenas"
        );
        assert_eq!(scheduler.stats().fanouts, 2);
        assert!(scheduler.resident_arenas() >= 2);
    }

    #[test]
    fn setup_error_reports_earliest_offending_index() {
        let mut batch = mixed_batch(&[Topology::mesh(2, 2)], 6);
        // A 3-cell plan from another topology group: indices 1 and 4
        // mismatch the 4-cell programs... swap programs instead so the
        // plan's topology stays but the program's cell count differs.
        let odd = mixed_batch(&[Topology::linear(3)], 1);
        batch[1].0 = odd[0].0.clone();
        batch[4].0 = odd[0].0.clone();
        let mut scheduler = VerifyScheduler::new(SimConfig::default(), 3, ArenaBudget::Auto);
        let error = scheduler
            .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
            .unwrap_err();
        assert!(
            matches!(
                error,
                ModelError::CellCountMismatch {
                    program: 3,
                    topology: 4
                }
            ),
            "{error:?}"
        );
        // The outcome API isolates the same failures per item.
        let outcomes =
            scheduler.verify_batch_outcomes(batch.iter().map(|(p, c, plan)| (p, c, plan)));
        assert!(matches!(outcomes[1], Err(VerifyTaskError::Model(_))));
        assert!(matches!(outcomes[4], Err(VerifyTaskError::Model(_))));
        assert_eq!(
            outcomes.iter().filter(|o| o.is_ok()).count(),
            4,
            "healthy items still report"
        );
    }

    #[test]
    fn empty_batch_is_free() {
        let mut scheduler = VerifyScheduler::new(SimConfig::default(), 2, ArenaBudget::Auto);
        let reports = scheduler.verify_batch(std::iter::empty()).unwrap();
        assert!(reports.is_empty());
        assert_eq!(scheduler.stats(), &SchedulerStats::default());
    }

    #[test]
    fn observed_scheduler_records_fanouts_and_replay_histograms() {
        let batch = mixed_batch(&[Topology::mesh(2, 2), Topology::torus(2, 2)], 4);
        let mut scheduler = VerifyScheduler::new(SimConfig::default(), 2, ArenaBudget::Auto);
        let obs = Arc::new(Obs::new());
        scheduler.set_obs(Arc::clone(&obs));
        let reports = scheduler
            .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
            .unwrap();
        assert_eq!(reports.len(), 8);

        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter_value(names::SCHED_FANOUTS, &[]), 1);
        assert_eq!(snap.counter_value(names::SCHED_ITEMS, &[]), 8);
        let fanout = snap.histogram_value(names::SCHED_FANOUT_SIZE, &[]);
        assert_eq!((fanout.count, fanout.max), (1, 8));
        // Registry arena counters mirror the scheduler's own tallies —
        // the worker LRUs are the single writers of both.
        let stats = scheduler.stats();
        assert_eq!(
            snap.counter_value(names::ARENA_CACHE_HITS, &[]),
            stats.arena_hits
        );
        assert_eq!(
            snap.counter_value(names::ARENA_CACHE_MISSES, &[]),
            stats.arena_misses
        );
        assert_eq!(
            snap.histogram_value(names::ARENA_BUILD_DURATION, &[]).count,
            stats.arena_misses
        );
        assert_eq!(
            snap.histogram_value(names::VERIFY_REPLAY_DURATION, &[])
                .count,
            8
        );
        // One replay-cycle histogram per topology, each with one sample
        // per replay of that fabric, and cycles conserved exactly.
        for (spec, fanout) in &stats.per_topology {
            let cycles = snap.histogram_value(names::VERIFY_REPLAY_CYCLES, &[("topology", spec)]);
            assert_eq!(cycles.count, fanout.items, "topology {spec}");
            assert!(cycles.sum > 0);
        }
    }

    #[test]
    fn fixed_budget_bounds_residency_per_worker() {
        let topologies: Vec<Topology> = (2..6).map(Topology::linear).collect();
        let batch = mixed_batch(&topologies, 2);
        let mut scheduler = VerifyScheduler::new(SimConfig::default(), 2, ArenaBudget::Fixed(2));
        let reports = scheduler
            .verify_batch(batch.iter().map(|(p, c, plan)| (p, c, plan)))
            .unwrap();
        assert!(reports.iter().all(|r| r.completed));
        for lru in &scheduler.workers {
            assert!(lru.len() <= 2, "Fixed(2) workers hold at most 2 arenas");
        }
    }
}
