//! Run statistics collected by the simulator.

use systolic_model::{CellId, MessageId, QueueId};

/// One queue-assignment lifecycle event, for the run-time assignment
/// timeline (the lower half of the paper's Fig. 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AssignmentEvent {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// The queue involved.
    pub queue: QueueId,
    /// The message granted or released.
    pub message: MessageId,
    /// `true` for a grant, `false` for a release.
    pub granted: bool,
}

/// Counters for one simulation run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Words delivered to their final receivers.
    pub words_delivered: u64,
    /// Words moved between queues by the I/O processes (hop transfers).
    pub words_forwarded: u64,
    /// Local-memory accesses performed by cell programs (cost model).
    pub memory_accesses: u64,
    /// Extra memory accesses caused by queue-extension spills.
    pub spill_accesses: u64,
    /// Queue grants issued by the assignment policy.
    pub grants: u64,
    /// Per-cell cycles spent blocked waiting on a queue condition.
    pub blocked_cycles: Vec<u64>,
    /// Per-cell cycles spent executing operations (including memory time).
    pub busy_cycles: Vec<u64>,
    /// Queue grant/release events in chronological order.
    pub assignment_events: Vec<AssignmentEvent>,
    /// Highest combined occupancy (hardware + extension) each queue ever
    /// reached, recorded at the end of the run.
    pub queue_high_water: Vec<(QueueId, usize)>,
}

impl RunStats {
    /// Initializes per-cell counters for `num_cells` cells.
    #[must_use]
    pub fn new(num_cells: usize) -> Self {
        RunStats {
            blocked_cycles: vec![0; num_cells],
            busy_cycles: vec![0; num_cells],
            ..Default::default()
        }
    }

    /// Cycles cell `cell` spent blocked.
    #[must_use]
    pub fn blocked(&self, cell: CellId) -> u64 {
        self.blocked_cycles[cell.index()]
    }

    /// Cycles cell `cell` spent busy.
    #[must_use]
    pub fn busy(&self, cell: CellId) -> u64 {
        self.busy_cycles[cell.index()]
    }

    /// Total blocked cycles across all cells.
    #[must_use]
    pub fn total_blocked(&self) -> u64 {
        self.blocked_cycles.iter().sum()
    }

    /// Memory accesses per delivered word (the Fig. 1 efficiency metric).
    /// Returns 0.0 when nothing was delivered.
    #[must_use]
    pub fn accesses_per_word(&self) -> f64 {
        if self.words_delivered == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.words_delivered as f64
        }
    }

    /// The largest high-water mark across all queues.
    #[must_use]
    pub fn max_queue_occupancy(&self) -> usize {
        self.queue_high_water
            .iter()
            .map(|&(_, w)| w)
            .max()
            .unwrap_or(0)
    }

    /// Renders the queue-assignment timeline as text — which message held
    /// which queue over which cycle span, like the "queue assignment at run
    /// time" pictures of Figs. 7–9. `name_of` maps message ids to display
    /// names (e.g. from the program's declarations).
    #[must_use]
    pub fn render_timeline(&self, name_of: impl Fn(MessageId) -> String) -> String {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<(QueueId, MessageId), u64> = BTreeMap::new();
        let mut spans: BTreeMap<QueueId, Vec<(MessageId, u64, Option<u64>)>> = BTreeMap::new();
        for e in &self.assignment_events {
            if e.granted {
                open.insert((e.queue, e.message), e.cycle);
            } else {
                let start = open.remove(&(e.queue, e.message)).unwrap_or(e.cycle);
                spans
                    .entry(e.queue)
                    .or_default()
                    .push((e.message, start, Some(e.cycle)));
            }
        }
        for ((queue, message), start) in open {
            spans.entry(queue).or_default().push((message, start, None));
        }
        let mut out = String::new();
        for (queue, mut held) in spans {
            held.sort_by_key(|&(_, start, _)| start);
            out.push_str(&format!("{queue}:"));
            for (m, start, end) in held {
                match end {
                    Some(end) => {
                        out.push_str(&format!(" [{} {}..{}]", name_of(m), start, end));
                    }
                    None => out.push_str(&format!(" [{} {}..]", name_of(m), start)),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cell_counters_start_zeroed() {
        let s = RunStats::new(3);
        assert_eq!(s.blocked(CellId::new(2)), 0);
        assert_eq!(s.busy(CellId::new(0)), 0);
        assert_eq!(s.total_blocked(), 0);
    }

    #[test]
    fn timeline_renders_spans_in_order() {
        use systolic_model::{Interval, QueueId};
        let q = QueueId::new(Interval::new(CellId::new(0), CellId::new(1)), 0);
        let mut s = RunStats::new(2);
        s.assignment_events = vec![
            AssignmentEvent {
                cycle: 1,
                queue: q,
                message: MessageId::new(1),
                granted: true,
            },
            AssignmentEvent {
                cycle: 5,
                queue: q,
                message: MessageId::new(1),
                granted: false,
            },
            AssignmentEvent {
                cycle: 6,
                queue: q,
                message: MessageId::new(0),
                granted: true,
            },
        ];
        let text = s.render_timeline(|m| format!("M{}", m.index()));
        assert_eq!(text.trim(), "c0-c1#0: [M1 1..5] [M0 6..]");
    }

    #[test]
    fn accesses_per_word_handles_zero() {
        let mut s = RunStats::new(1);
        assert_eq!(s.accesses_per_word(), 0.0);
        s.memory_accesses = 8;
        s.words_delivered = 2;
        assert_eq!(s.accesses_per_word(), 4.0);
    }
}
