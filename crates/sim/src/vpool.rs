//! Multi-core batch verification: a pool of reusable arenas over one
//! immutable world.
//!
//! [`verify_batch_compiled`](crate::verify_batch_compiled) replays a
//! batch sequentially through one [`SimArena`]. On a service node with
//! many cores that leaves all but one of them idle while the replay chase
//! is the serving path's bottleneck. [`VerifyPool`] spans **one**
//! [`SimWorld`] with N arenas — one per worker thread — and verifies a
//! batch on all of them at once:
//!
//! * **scoped threads** — workers borrow their arena and the batch for
//!   the duration of one [`VerifyPool::verify_batch`] call; no `'static`
//!   bounds, no channels, no leaked threads;
//! * **work stealing** — a shared atomic cursor hands out plan indices;
//!   a worker that drew a short replay immediately steals the next
//!   index, so an uneven batch still keeps every core busy;
//! * **deterministic results** — each replay is a pure function of
//!   `(program, plan, world)` (arenas reset in place, and every arena is
//!   pre-grown to the batch's largest queue requirement so replays are
//!   independent of which worker ran them), and reports are merged back
//!   into **input order**. The output is byte-identical to the
//!   sequential path — same [`VerifyReport`]s, same
//!   [`ReplayDeadlock`](crate::ReplayDeadlock) details, same order —
//!   which `tests/verify_parity.rs` asserts by property.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use systolic_core::{CommPlan, CompiledTopology};
use systolic_model::{ModelError, Program};

use crate::{SimArena, SimConfig, SimWorld, VerifyReport};

/// A pool of N reusable [`SimArena`]s over one shared [`SimWorld`],
/// verifying plan batches on all cores.
///
/// Build it once per node (or per compiled topology) and feed it batches;
/// arenas are reset in place between replays and between batches, so the
/// setup cost — world construction, queue-pool allocation — is paid once
/// per pool, not once per plan or per batch.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
/// use systolic_sim::{SimConfig, VerifyPool};
/// use systolic_workloads::{fig7, fig7_topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let compiled =
///     CompiledTopology::compile(&fig7_topology(), &AnalysisConfig::default()).into_shared();
/// let analyzer = Analyzer::new(Arc::clone(&compiled));
/// let batch: Vec<_> = (2..8)
///     .map(|reps| {
///         let program = fig7(reps);
///         let plan = Arc::new(analyzer.analyze(&program)?.into_plan());
///         Ok::<_, systolic_core::CoreError>((program, plan))
///     })
///     .collect::<Result<_, _>>()?;
/// let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 4);
/// let reports = pool.verify_batch(batch.iter().map(|(p, plan)| (p, plan)))?;
/// assert_eq!(reports.len(), batch.len());
/// assert!(reports.iter().all(|r| r.completed));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VerifyPool {
    /// One arena per worker thread, all over clones of one world (clones
    /// share the compiled topology via `Arc`).
    arenas: Vec<SimArena>,
}

impl VerifyPool {
    /// Builds a pool of `threads` arenas (clamped to ≥ 1) over `world`.
    #[must_use]
    pub fn new(world: SimWorld, threads: usize) -> Self {
        let threads = threads.max(1);
        let arenas = (0..threads).map(|_| SimArena::new(world.clone())).collect();
        VerifyPool { arenas }
    }

    /// [`VerifyPool::new`] over [`SimWorld::from_compiled`] — the serving
    /// shape, where routing is served from the shared route closure.
    #[must_use]
    pub fn from_compiled(
        compiled: Arc<CompiledTopology>,
        config: SimConfig,
        threads: usize,
    ) -> Self {
        VerifyPool::new(SimWorld::from_compiled(compiled, config), threads)
    }

    /// Number of worker threads (= arenas) this pool verifies with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.arenas.len()
    }

    /// The world every arena replays against.
    #[must_use]
    pub fn world(&self) -> &SimWorld {
        self.arenas[0].world()
    }

    /// Replays every `(program, plan)` pair of `batch`, fanned out over
    /// the pool's arenas with a work-stealing cursor, and returns the
    /// reports **in input order** — byte-identical to what
    /// [`verify_batch_compiled`](crate::verify_batch_compiled) returns
    /// for the same batch.
    ///
    /// # Errors
    ///
    /// As the sequential path: a setup error (cell-count mismatch) is
    /// reported for the earliest offending batch index; per-run outcomes
    /// (completed / deadlocked, with details) are in the reports.
    pub fn verify_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CommPlan>)>,
    ) -> Result<Vec<VerifyReport>, ModelError> {
        let items: Vec<(&Program, &Arc<CommPlan>)> = batch.into_iter().collect();
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // Pre-grow every arena to the batch's largest queue requirement so
        // a replay's pool shape does not depend on which worker ran it or
        // in what order items were stolen. (Replay outcomes are invariant
        // to extra queues — the compatible policy draws only from its
        // per-direction ranges — but a deterministic pool keeps the
        // parallel path structurally identical to the sequential one.)
        let max_queues = items
            .iter()
            .map(|(_, plan)| plan.requirements().max_per_interval())
            .max()
            .unwrap_or(0)
            .max(1);
        for arena in &mut self.arenas {
            arena.ensure_queues(max_queues);
        }
        // One worker (or one item): skip the thread machinery entirely.
        if self.arenas.len() == 1 || items.len() == 1 {
            let arena = &mut self.arenas[0];
            return items
                .iter()
                .map(|(program, plan)| arena.verify(program, plan))
                .collect();
        }

        // Work-stealing cursor: each worker draws the next unclaimed index
        // until the batch is exhausted. Results carry their index so the
        // merge below restores input order regardless of who ran what.
        let cursor = AtomicUsize::new(0);
        let workers = self.arenas.len().min(items.len());
        let per_worker: Vec<Vec<(usize, Result<VerifyReport, ModelError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .arenas
                    .iter_mut()
                    .take(workers)
                    .map(|arena| {
                        let cursor = &cursor;
                        let items = &items;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&(program, plan)) = items.get(i) else {
                                    break;
                                };
                                local.push((i, arena.verify(program, plan)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| {
                        handle
                            .join()
                            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                    })
                    .collect()
            });

        // Merge into input order. Errors mirror the sequential fail-fast
        // contract: the earliest offending index wins, exactly the error a
        // sequential scan would have stopped at.
        let mut reports: Vec<Option<VerifyReport>> = (0..items.len()).map(|_| None).collect();
        let mut first_error: Option<(usize, ModelError)> = None;
        for (i, result) in per_worker.into_iter().flatten() {
            match result {
                Ok(report) => reports[i] = Some(report),
                Err(error) => {
                    if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_error = Some((i, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(reports
            .into_iter()
            .map(|report| report.expect("every batch index was verified"))
            .collect())
    }
}

/// [`verify_batch_compiled`](crate::verify_batch_compiled) on all cores:
/// builds a [`VerifyPool`] of `threads` arenas and fans the batch out over
/// it. Results are byte-identical to the sequential path, in input order.
///
/// Callers verifying many batches should hold a [`VerifyPool`] and call
/// [`VerifyPool::verify_batch`] instead, amortizing the arena setup.
///
/// # Errors
///
/// As [`verify_batch_compiled`](crate::verify_batch_compiled): a setup
/// error for the earliest offending batch index.
pub fn verify_batch_compiled_parallel<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CommPlan>)>,
    compiled: &Arc<CompiledTopology>,
    config: SimConfig,
    threads: usize,
) -> Result<Vec<VerifyReport>, ModelError> {
    VerifyPool::from_compiled(Arc::clone(compiled), config, threads).verify_batch(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_batch_compiled;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::Topology;
    use systolic_workloads::{fig7, fig7_topology, fig9, fig9_topology};

    fn fig7_batch(n: usize) -> (Arc<CompiledTopology>, Vec<(Program, Arc<CommPlan>)>) {
        let compiled =
            CompiledTopology::compile(&fig7_topology(), &AnalysisConfig::default()).into_shared();
        let analyzer = Analyzer::new(Arc::clone(&compiled));
        let items = (0..n)
            .map(|i| {
                let program = fig7(2 + (i % 5));
                let plan = Arc::new(analyzer.analyze(&program).unwrap().into_plan());
                (program, plan)
            })
            .collect();
        (compiled, items)
    }

    #[test]
    fn pool_matches_sequential_batch() {
        let (compiled, items) = fig7_batch(17);
        let sequential = verify_batch_compiled(
            items.iter().map(|(p, plan)| (p, plan)),
            &compiled,
            SimConfig::default(),
        )
        .unwrap();
        for threads in [1, 2, 3, 4, 7] {
            let mut pool =
                VerifyPool::from_compiled(Arc::clone(&compiled), SimConfig::default(), threads);
            let parallel = pool
                .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
                .unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let (compiled, items) = fig7_batch(8);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 3);
        let first = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        let second = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert_eq!(
            first, second,
            "arena reuse across batches must not leak state"
        );
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn empty_batch_returns_no_reports() {
        let (compiled, _) = fig7_batch(1);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 4);
        let reports = pool.verify_batch(std::iter::empty()).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn threads_clamp_to_one() {
        let (compiled, items) = fig7_batch(3);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 0);
        assert_eq!(pool.threads(), 1);
        let reports = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert!(reports.iter().all(|r| r.completed));
    }

    #[test]
    fn mixed_queue_requirements_pre_grow_every_arena() {
        // fig9 needs 2 queues per interval, fig7 needs 1: the pool grows
        // all arenas to the batch max before fan-out, so results are
        // independent of stealing order.
        let t9 = fig9_topology();
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let compiled = CompiledTopology::compile(&t9, &c9).into_shared();
        let analyzer = Analyzer::new(Arc::clone(&compiled));
        let p9 = fig9();
        let plan9 = Arc::new(analyzer.analyze(&p9).unwrap().into_plan());
        let items: Vec<(Program, Arc<CommPlan>)> =
            (0..6).map(|_| (p9.clone(), Arc::clone(&plan9))).collect();
        let sequential = verify_batch_compiled(
            items.iter().map(|(p, plan)| (p, plan)),
            &compiled,
            SimConfig::default(),
        )
        .unwrap();
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 2);
        let parallel = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.iter().all(|r| r.completed));
    }

    #[test]
    fn setup_error_reports_earliest_offending_index() {
        // Item 1 (3-cell program on the 4-cell world) is the earliest
        // mismatch; the pool must surface exactly that error even though
        // later items also fail.
        let (compiled, mut items) = fig7_batch(6);
        let t9 = fig9_topology();
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan9 = Arc::new(
            Analyzer::for_topology(&t9, &c9)
                .analyze(&fig9())
                .unwrap()
                .into_plan(),
        );
        items[1] = (fig9(), Arc::clone(&plan9));
        items[4] = (fig9(), plan9);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 4);
        let error = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap_err();
        assert!(
            matches!(
                error,
                ModelError::CellCountMismatch {
                    program: 3,
                    topology: 4
                }
            ),
            "{error:?}"
        );
    }

    #[test]
    fn plain_world_pool_works_too() {
        let topology = Topology::linear(2);
        let program = systolic_workloads::fig5_p2();
        let config = AnalysisConfig {
            queues_per_interval: 2,
            lookahead: systolic_core::Lookahead::Unbounded,
        };
        let plan = Arc::new(
            Analyzer::for_topology(&topology, &config)
                .analyze(&program)
                .unwrap()
                .into_plan(),
        );
        let items: Vec<(Program, Arc<CommPlan>)> = (0..4)
            .map(|_| (program.clone(), Arc::clone(&plan)))
            .collect();
        let mut pool = VerifyPool::new(SimWorld::new(&topology, SimConfig::default()), 2);
        let reports = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert!(reports.iter().all(|r| r.completed));
    }
}
