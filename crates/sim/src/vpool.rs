//! Multi-core batch verification over **one** immutable world — a thin
//! adapter over the cross-topology [`VerifyScheduler`].
//!
//! [`VerifyPool`] predates the scheduler: it spans a single [`SimWorld`]
//! with N worker arenas and fans a homogeneous batch out over them. That
//! is exactly a [`VerifyScheduler`] whose every task shares one arena
//! key, so the pool now *is* one — same scoped threads, same
//! work-stealing cursor, same input-order merge, byte-identical to the
//! sequential [`verify_batch_compiled`](crate::verify_batch_compiled)
//! path (`tests/verify_parity.rs` asserts this by property,
//! [`ReplayDeadlock`](crate::ReplayDeadlock) details included).
//!
//! New callers verifying mixed-topology traffic should hold a
//! [`VerifyScheduler`] directly; the pool remains the convenient shape
//! when one compiled topology serves the whole batch.

use std::sync::Arc;

use systolic_core::{CommPlan, CompiledTopology};
use systolic_model::{ModelError, Program};

use crate::{ArenaBudget, SimConfig, SimWorld, VerifyReport, VerifyScheduler};

/// A pool of N reusable arenas over one shared [`SimWorld`], verifying
/// plan batches on all cores. Since the [`VerifyScheduler`] landed this
/// is a documented adapter: a scheduler pinned to a single world, kept
/// for the common one-topology shape and for API stability.
///
/// Build it once per node (or per compiled topology) and feed it batches;
/// arenas are reset in place between replays and between batches, so the
/// setup cost — world construction, queue-pool allocation — is paid once
/// per pool, not once per plan or per batch.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
/// use systolic_sim::{SimConfig, VerifyPool};
/// use systolic_workloads::{fig7, fig7_topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let compiled =
///     CompiledTopology::compile(&fig7_topology(), &AnalysisConfig::default()).into_shared();
/// let analyzer = Analyzer::new(Arc::clone(&compiled));
/// let batch: Vec<_> = (2..8)
///     .map(|reps| {
///         let program = fig7(reps);
///         let plan = Arc::new(analyzer.analyze(&program)?.into_plan());
///         Ok::<_, systolic_core::CoreError>((program, plan))
///     })
///     .collect::<Result<_, _>>()?;
/// let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 4);
/// let reports = pool.verify_batch(batch.iter().map(|(p, plan)| (p, plan)))?;
/// assert_eq!(reports.len(), batch.len());
/// assert!(reports.iter().all(|r| r.completed));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VerifyPool {
    /// The single-world scheduler doing the actual fan-out; each worker's
    /// LRU holds exactly one arena (this pool's world).
    scheduler: VerifyScheduler,
    world: SimWorld,
}

/// The one arena key a pool's tasks share — any constant works, since a
/// pool's scheduler only ever sees this world.
const POOL_WORLD_KEY: u128 = 0;

impl VerifyPool {
    /// Builds a pool of `threads` arenas (clamped to ≥ 1) over `world`.
    #[must_use]
    pub fn new(world: SimWorld, threads: usize) -> Self {
        let scheduler = VerifyScheduler::new(world.config(), threads, ArenaBudget::Fixed(1));
        VerifyPool { scheduler, world }
    }

    /// [`VerifyPool::new`] over [`SimWorld::from_compiled`] — the serving
    /// shape, where routing is served from the shared route closure.
    #[must_use]
    pub fn from_compiled(
        compiled: Arc<CompiledTopology>,
        config: SimConfig,
        threads: usize,
    ) -> Self {
        VerifyPool::new(SimWorld::from_compiled(compiled, config), threads)
    }

    /// Number of worker threads (= arenas) this pool verifies with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.scheduler.threads()
    }

    /// The world every arena replays against.
    #[must_use]
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Replays every `(program, plan)` pair of `batch`, fanned out over
    /// the pool's arenas with a work-stealing cursor, and returns the
    /// reports **in input order** — byte-identical to what
    /// [`verify_batch_compiled`](crate::verify_batch_compiled) returns
    /// for the same batch.
    ///
    /// # Errors
    ///
    /// As the sequential path: a setup error (cell-count mismatch) is
    /// reported for the earliest offending batch index; per-run outcomes
    /// (completed / deadlocked, with details) are in the reports.
    pub fn verify_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CommPlan>)>,
    ) -> Result<Vec<VerifyReport>, ModelError> {
        self.scheduler
            .verify_batch_in_world(&self.world, POOL_WORLD_KEY, batch)
    }
}

/// [`verify_batch_compiled`](crate::verify_batch_compiled) on all cores:
/// builds a [`VerifyPool`] of `threads` arenas and fans the batch out over
/// it. Results are byte-identical to the sequential path, in input order.
///
/// Callers verifying many batches should hold a [`VerifyPool`] and call
/// [`VerifyPool::verify_batch`] instead, amortizing the arena setup.
///
/// # Errors
///
/// As [`verify_batch_compiled`](crate::verify_batch_compiled): a setup
/// error for the earliest offending batch index.
pub fn verify_batch_compiled_parallel<'a>(
    batch: impl IntoIterator<Item = (&'a Program, &'a Arc<CommPlan>)>,
    compiled: &Arc<CompiledTopology>,
    config: SimConfig,
    threads: usize,
) -> Result<Vec<VerifyReport>, ModelError> {
    VerifyPool::from_compiled(Arc::clone(compiled), config, threads).verify_batch(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_batch_compiled;
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::Topology;
    use systolic_workloads::{fig7, fig7_topology, fig9, fig9_topology};

    fn fig7_batch(n: usize) -> (Arc<CompiledTopology>, Vec<(Program, Arc<CommPlan>)>) {
        let compiled =
            CompiledTopology::compile(&fig7_topology(), &AnalysisConfig::default()).into_shared();
        let analyzer = Analyzer::new(Arc::clone(&compiled));
        let items = (0..n)
            .map(|i| {
                let program = fig7(2 + (i % 5));
                let plan = Arc::new(analyzer.analyze(&program).unwrap().into_plan());
                (program, plan)
            })
            .collect();
        (compiled, items)
    }

    #[test]
    fn pool_matches_sequential_batch() {
        let (compiled, items) = fig7_batch(17);
        let sequential = verify_batch_compiled(
            items.iter().map(|(p, plan)| (p, plan)),
            &compiled,
            SimConfig::default(),
        )
        .unwrap();
        for threads in [1, 2, 3, 4, 7] {
            let mut pool =
                VerifyPool::from_compiled(Arc::clone(&compiled), SimConfig::default(), threads);
            let parallel = pool
                .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
                .unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let (compiled, items) = fig7_batch(8);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 3);
        let first = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        let second = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert_eq!(
            first, second,
            "arena reuse across batches must not leak state"
        );
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn empty_batch_returns_no_reports() {
        let (compiled, _) = fig7_batch(1);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 4);
        let reports = pool.verify_batch(std::iter::empty()).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn threads_clamp_to_one() {
        let (compiled, items) = fig7_batch(3);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 0);
        assert_eq!(pool.threads(), 1);
        let reports = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert!(reports.iter().all(|r| r.completed));
    }

    #[test]
    fn mixed_queue_requirements_pre_grow_every_arena() {
        // fig9 needs 2 queues per interval, fig7 needs 1: the pool grows
        // all arenas to the batch max before fan-out, so results are
        // independent of stealing order.
        let t9 = fig9_topology();
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let compiled = CompiledTopology::compile(&t9, &c9).into_shared();
        let analyzer = Analyzer::new(Arc::clone(&compiled));
        let p9 = fig9();
        let plan9 = Arc::new(analyzer.analyze(&p9).unwrap().into_plan());
        let items: Vec<(Program, Arc<CommPlan>)> =
            (0..6).map(|_| (p9.clone(), Arc::clone(&plan9))).collect();
        let sequential = verify_batch_compiled(
            items.iter().map(|(p, plan)| (p, plan)),
            &compiled,
            SimConfig::default(),
        )
        .unwrap();
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 2);
        let parallel = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.iter().all(|r| r.completed));
    }

    #[test]
    fn setup_error_reports_earliest_offending_index() {
        // Item 1 (3-cell program on the 4-cell world) is the earliest
        // mismatch; the pool must surface exactly that error even though
        // later items also fail.
        let (compiled, mut items) = fig7_batch(6);
        let t9 = fig9_topology();
        let c9 = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan9 = Arc::new(
            Analyzer::for_topology(&t9, &c9)
                .analyze(&fig9())
                .unwrap()
                .into_plan(),
        );
        items[1] = (fig9(), Arc::clone(&plan9));
        items[4] = (fig9(), plan9);
        let mut pool = VerifyPool::from_compiled(compiled, SimConfig::default(), 4);
        let error = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap_err();
        assert!(
            matches!(
                error,
                ModelError::CellCountMismatch {
                    program: 3,
                    topology: 4
                }
            ),
            "{error:?}"
        );
    }

    #[test]
    fn plain_world_pool_works_too() {
        let topology = Topology::linear(2);
        let program = systolic_workloads::fig5_p2();
        let config = AnalysisConfig {
            queues_per_interval: 2,
            lookahead: systolic_core::Lookahead::Unbounded,
        };
        let plan = Arc::new(
            Analyzer::for_topology(&topology, &config)
                .analyze(&program)
                .unwrap()
                .into_plan(),
        );
        let items: Vec<(Program, Arc<CommPlan>)> = (0..4)
            .map(|_| (program.clone(), Arc::clone(&plan)))
            .collect();
        let mut pool = VerifyPool::new(SimWorld::new(&topology, SimConfig::default()), 2);
        let reports = pool
            .verify_batch(items.iter().map(|(p, plan)| (p, plan)))
            .unwrap();
        assert!(reports.iter().all(|r| r.completed));
    }
}
