//! Deadlock diagnosis for stalled runs.

use core::fmt;

use systolic_model::{CellId, Hop, MessageId, Op, QueueId};

/// Why a cell is blocked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockReason {
    /// The op's message has no queue assigned on `hop` yet.
    NoQueueAssigned {
        /// The crossing awaiting assignment.
        hop: Hop,
    },
    /// The assigned queue cannot accept another word.
    QueueFull {
        /// The full queue.
        queue: QueueId,
    },
    /// The assigned queue has no word to read.
    QueueEmpty {
        /// The empty queue.
        queue: QueueId,
    },
    /// A latch write waits for its word to depart (capacity-0 semantics).
    AwaitingDeparture {
        /// The latch queue holding the word.
        queue: QueueId,
        /// The word's index within its message.
        word: usize,
    },
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::NoQueueAssigned { hop } => {
                write!(f, "waiting for a queue on {hop}")
            }
            BlockReason::QueueFull { queue } => write!(f, "queue {queue} is full"),
            BlockReason::QueueEmpty { queue } => write!(f, "queue {queue} is empty"),
            BlockReason::AwaitingDeparture { queue, word } => {
                write!(f, "latch {queue} still holds word {word}")
            }
        }
    }
}

/// One blocked cell in a deadlock report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockedCell {
    /// The cell.
    pub cell: CellId,
    /// Its program counter (index of the stuck op).
    pub pc: usize,
    /// The stuck operation.
    pub op: Op,
    /// Why it cannot proceed.
    pub reason: BlockReason,
}

/// The state of one queue at deadlock time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueSnapshot {
    /// The queue.
    pub id: QueueId,
    /// The message holding it, if any.
    pub assigned: Option<MessageId>,
    /// Words currently buffered.
    pub occupancy: usize,
    /// Words of the current assignment that have departed.
    pub departed: usize,
}

/// A full diagnosis of a deadlocked run: which cells are blocked on what,
/// and who holds every queue.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeadlockReport {
    /// Cycle at which the run quiesced without completing.
    pub cycle: u64,
    /// Every cell with remaining work, and why it is stuck.
    pub blocked: Vec<BlockedCell>,
    /// Snapshot of every queue.
    pub queues: Vec<QueueSnapshot>,
}

impl DeadlockReport {
    /// The cells blocked waiting for a queue *assignment* — the signature of
    /// a queue-induced deadlock (as opposed to a program deadlock, where
    /// cells block on full/empty queues in a dependency cycle).
    #[must_use]
    pub fn assignment_waiters(&self) -> Vec<&BlockedCell> {
        self.blocked
            .iter()
            .filter(|b| matches!(b.reason, BlockReason::NoQueueAssigned { .. }))
            .collect()
    }

    /// Renders the report with human-readable cell and message names from
    /// `program` instead of raw ids.
    #[must_use]
    pub fn render(&self, program: &systolic_model::Program) -> String {
        let msg = |m: MessageId| program.message(m).name().to_owned();
        let mut out = format!("deadlock at cycle {}:\n", self.cycle);
        for b in &self.blocked {
            out.push_str(&format!(
                "  {} stuck at op {} ({}({})): {}\n",
                program.cell_name(b.cell),
                b.pc,
                b.op.kind(),
                msg(b.op.message()),
                b.reason
            ));
        }
        for q in &self.queues {
            match q.assigned {
                Some(m) => out.push_str(&format!(
                    "  queue {} held by {} ({} buffered, {} departed)\n",
                    q.id,
                    msg(m),
                    q.occupancy,
                    q.departed
                )),
                None => out.push_str(&format!("  queue {} free\n", q.id)),
            }
        }
        out
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "deadlock at cycle {}:", self.cycle)?;
        for b in &self.blocked {
            writeln!(
                f,
                "  {} stuck at op {} ({}): {}",
                b.cell, b.pc, b.op, b.reason
            )?;
        }
        for q in &self.queues {
            match q.assigned {
                Some(m) => writeln!(
                    f,
                    "  queue {} held by {} ({} buffered, {} departed)",
                    q.id, m, q.occupancy, q.departed
                )?,
                None => writeln!(f, "  queue {} free", q.id)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::Interval;

    #[test]
    fn report_renders_and_filters() {
        let c0 = CellId::new(0);
        let c1 = CellId::new(1);
        let q = QueueId::new(Interval::new(c0, c1), 0);
        let report = DeadlockReport {
            cycle: 42,
            blocked: vec![
                BlockedCell {
                    cell: c0,
                    pc: 3,
                    op: Op::write(MessageId::new(0)),
                    reason: BlockReason::NoQueueAssigned {
                        hop: Hop::new(c0, c1),
                    },
                },
                BlockedCell {
                    cell: c1,
                    pc: 0,
                    op: Op::read(MessageId::new(1)),
                    reason: BlockReason::QueueEmpty { queue: q },
                },
            ],
            queues: vec![QueueSnapshot {
                id: q,
                assigned: Some(MessageId::new(1)),
                occupancy: 0,
                departed: 1,
            }],
        };
        let text = report.to_string();
        assert!(text.contains("deadlock at cycle 42"));
        assert!(text.contains("waiting for a queue"));
        assert!(text.contains("held by m1"));
        assert_eq!(report.assignment_waiters().len(), 1);
    }

    #[test]
    fn block_reasons_render() {
        let c0 = CellId::new(0);
        let c1 = CellId::new(1);
        let q = QueueId::new(Interval::new(c0, c1), 1);
        for r in [
            BlockReason::NoQueueAssigned {
                hop: Hop::new(c0, c1),
            },
            BlockReason::QueueFull { queue: q },
            BlockReason::QueueEmpty { queue: q },
            BlockReason::AwaitingDeparture { queue: q, word: 2 },
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}

#[cfg(test)]
mod render_tests {
    use crate::{run_simulation, FifoPolicy, RunOutcome, SimConfig};
    use systolic_workloads as wl;

    #[test]
    fn render_uses_program_names() {
        let program = wl::fig7(2);
        let out = run_simulation(
            &program,
            &wl::fig7_topology(),
            Box::new(FifoPolicy::new()),
            SimConfig::default(),
        )
        .unwrap();
        let RunOutcome::Deadlocked { report, .. } = out else {
            panic!("must deadlock")
        };
        let text = report.render(&program);
        assert!(text.contains("held by B"), "{text}");
        assert!(text.contains("R(C)"), "{text}");
        assert!(!text.contains("m0"), "no raw ids: {text}");
    }
}
