//! Cycle-stepped simulator for systolic arrays — the runtime side of
//! H.T. Kung, *Deadlock Avoidance for Systolic Communication* (1988).
//!
//! The simulator implements the paper's machine abstraction faithfully:
//!
//! * a fixed pool of hardware [queues](HwQueue) per interval, each serving
//!   one message at a time and released only after the message's last word
//!   has passed (Section 2.3);
//! * **latch** (capacity 0) or **buffered** queues, plus the iWarp-style
//!   **queue extension** into local memory (Section 8);
//! * transparent I/O forwarding processes that move words hop-by-hop along
//!   each message's route;
//! * pluggable run-time [assignment policies](AssignmentPolicy): the
//!   paper's **compatible dynamic assignment** ([`CompatiblePolicy`]:
//!   ordered + simultaneous rules, Section 7), **static** dedicated queues
//!   ([`StaticPolicy`]), and the label-blind baselines ([`FifoPolicy`],
//!   [`GreedyPolicy`]) that reproduce the deadlocks of Figs. 7–9;
//! * cost models contrasting **systolic** and **memory-to-memory**
//!   communication (Fig. 1);
//! * quiescence-based deadlock detection with a full
//!   [diagnosis](DeadlockReport).
//!
//! # Verifying at scale
//!
//! The engine is split into an immutable per-batch [`SimWorld`] (topology,
//! optionally precompiled; simulation parameters) and a reusable
//! [`SimArena`] whose run state — queue pools, program counters, per-hop
//! word tables — is **reset in place** between replays rather than
//! reallocated. Batch verification ([`verify_batch_compiled`]) replays a
//! whole batch of certified plans through one arena: routes come from each
//! plan, plans are shared as `Arc<CommPlan>`, and the queue pool grows to
//! the batch's largest requirement once. That is what lets a serving layer
//! chase cached analyses with simulator replays at cache-hit throughput.
//!
//! On a multi-core node batches fan out over the [`VerifyScheduler`]: N
//! workers, each owning an [`ArenaLru`] of arenas keyed by
//! compiled-topology fingerprint, a work-stealing cursor over the plan
//! indices, and reports merged back into input order — byte-identical to
//! the sequential path run per topology group. One scheduler spans **all**
//! topologies: a heterogeneous mesh/torus/line batch verifies in a single
//! fan-out, workers switching worlds by warm LRU lookup instead of
//! rebuild, with residency governed by an [`ArenaBudget`] (fixed count,
//! observed-cardinality auto sizing, or a byte budget against
//! [`SimArena::approx_bytes`]). Pick `threads` ≈ the cores you can spare:
//! replays are CPU-bound and share no mutable state, so throughput scales
//! until the batch runs out of plans to steal.
//!
//! [`VerifyPool`] remains as a thin adapter — a scheduler pinned to one
//! [`SimWorld`] — for the common one-topology shape
//! ([`verify_batch_compiled_parallel`] is its one-call convenience).
//!
//! ```
//! use std::sync::Arc;
//! use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology};
//! use systolic_sim::{verify_batch_compiled, SimConfig};
//! use systolic_workloads::{fig7, fig7_topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topology = fig7_topology();
//! let compiled = CompiledTopology::compile(&topology, &AnalysisConfig::default()).into_shared();
//! let analyzer = Analyzer::new(Arc::clone(&compiled));
//! let batch: Vec<_> = (2..6)
//!     .map(|reps| {
//!         let program = fig7(reps);
//!         let plan = Arc::new(analyzer.analyze(&program)?.into_plan());
//!         Ok::<_, systolic_core::CoreError>((program, plan))
//!     })
//!     .collect::<Result<_, _>>()?;
//! let reports = verify_batch_compiled(
//!     batch.iter().map(|(p, plan)| (p, plan)),
//!     &compiled,
//!     SimConfig::default(),
//! )?;
//! assert!(reports.iter().all(|r| r.completed));
//! # Ok(())
//! # }
//! ```
//!
//! # Examples
//!
//! Fig. 7 end-to-end: the naive policy deadlocks, the compatible policy
//! completes.
//!
//! ```
//! use systolic_core::{AnalysisConfig, Analyzer};
//! use systolic_sim::{run_simulation, CompatiblePolicy, FifoPolicy, SimConfig};
//! use systolic_workloads::{fig7, fig7_topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = fig7(3);
//! let topology = fig7_topology();
//! let config = SimConfig::default(); // one queue per interval
//!
//! let naive = run_simulation(&program, &topology, Box::new(FifoPolicy::new()), config)?;
//! assert!(naive.is_deadlocked());
//!
//! let analyzer = Analyzer::for_topology(&topology, &AnalysisConfig::default());
//! let plan = analyzer.analyze(&program)?.into_plan();
//! let safe = run_simulation(
//!     &program,
//!     &topology,
//!     Box::new(CompatiblePolicy::new(plan)),
//!     config,
//! )?;
//! assert!(safe.is_completed());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod arena_lru;
mod cost;
mod deadlock;
mod engine;
mod policy;
mod pool;
mod queue;
mod sched;
mod stats;
mod verify;
mod vpool;

pub use arena_lru::{ArenaBudget, ArenaLookup, ArenaLru, MAX_AUTO_ARENAS};
pub use cost::CostModel;
pub use deadlock::{BlockReason, BlockedCell, DeadlockReport, QueueSnapshot};
pub use engine::{run_simulation, RunOutcome, SimArena, SimConfig, SimWorld, Simulation};
pub use policy::{
    AssignmentPolicy, CompatiblePolicy, FifoPolicy, Grant, GreedyPolicy, Request, StaticPolicy,
};
pub use pool::{PoolView, QueuePools};
pub use queue::{HwQueue, QueueConfig, Word};
pub use sched::{SchedulerStats, TopologyFanout, VerifyScheduler, VerifyTaskError};
pub use stats::{AssignmentEvent, RunStats};
pub use verify::{
    verify_batch, verify_batch_compiled, verify_plan, verify_plan_compiled, ReplayDeadlock,
    VerifyReport,
};
pub use vpool::{verify_batch_compiled_parallel, VerifyPool};
