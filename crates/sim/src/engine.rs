//! The cycle-stepped simulation engine.
//!
//! Each cycle proceeds in three phases:
//!
//! 1. **assignment** — stalled messages raise queue requests (oldest
//!    first); the [`AssignmentPolicy`] issues grants;
//! 2. **forwarding** — the transparent I/O processes move words one hop
//!    along each message's route ("transferring words through queues is
//!    transparent to cell programs", Section 2.3);
//! 3. **cells** — each cell attempts its current `R`/`W` operation against
//!    its queues, with latencies and memory-access counts from the
//!    [`CostModel`].
//!
//! The run ends when every cell finishes (**completed**), when a cycle
//! passes with no activity (**deadlocked** — the system is quiescent and
//! can never move again, since all conditions are monotone), or at the
//! configured cycle limit.

use systolic_model::{
    CellId, Interval, MessageId, MessageRoutes, ModelError, Op, Program, QueueId, Topology,
};

use crate::{
    AssignmentPolicy, BlockReason, BlockedCell, CostModel, DeadlockReport, PoolView, QueueConfig,
    QueuePools, QueueSnapshot, Request, RunStats, Word,
};

/// Simulation parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// Hardware queues per interval.
    pub queues_per_interval: usize,
    /// Configuration of every queue (capacity, extension).
    pub queue: QueueConfig,
    /// Cell execution cost model.
    pub cost: CostModel,
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queues_per_interval: 1,
            queue: QueueConfig::default(),
            cost: CostModel::systolic(),
            max_cycles: 1_000_000,
        }
    }
}

/// How a run ended.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Every cell completed its program.
    Completed(RunStats),
    /// The system quiesced with work remaining.
    Deadlocked {
        /// Statistics up to the stall.
        stats: RunStats,
        /// Full diagnosis.
        report: DeadlockReport,
    },
    /// `max_cycles` elapsed (livelock is impossible; this means the limit
    /// was set too low for the workload).
    CycleLimit(RunStats),
}

impl RunOutcome {
    /// `true` for [`RunOutcome::Completed`].
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    /// `true` for [`RunOutcome::Deadlocked`].
    #[must_use]
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, RunOutcome::Deadlocked { .. })
    }

    /// The run statistics, however the run ended.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        match self {
            RunOutcome::Completed(s) | RunOutcome::CycleLimit(s) => s,
            RunOutcome::Deadlocked { stats, .. } => stats,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CellState {
    Ready,
    Busy { remaining: u64 },
    /// A latch write waits for its word to leave the first-hop queue.
    AwaitDeparture { message: MessageId, word: usize },
    Done,
}

/// A configured simulation, ready to run.
#[derive(Debug)]
pub struct Simulation {
    program: Program,
    routes: MessageRoutes,
    pools: QueuePools,
    policy: Box<dyn AssignmentPolicy>,
    config: SimConfig,
    // Cell state.
    pc: Vec<usize>,
    state: Vec<CellState>,
    // Message progress.
    words_written: Vec<usize>,
    /// Per message, per hop: words that have departed that hop's queue.
    departed: Vec<Vec<usize>>,
    // Request bookkeeping.
    request_born: std::collections::BTreeMap<(MessageId, Interval), u64>,
    born_counter: u64,
    stats: RunStats,
    cycle: u64,
}

impl Simulation {
    /// Builds a simulation of `program` over `topology` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns routing/validation errors from
    /// [`MessageRoutes::compute`].
    pub fn new(
        program: &Program,
        topology: &Topology,
        policy: Box<dyn AssignmentPolicy>,
        config: SimConfig,
    ) -> Result<Self, ModelError> {
        let routes = MessageRoutes::compute(program, topology)?;
        let pools = QueuePools::uniform(
            topology.intervals().iter().copied(),
            config.queues_per_interval,
            config.queue,
        );
        let departed = routes.iter().map(|(_, r)| vec![0; r.num_hops()]).collect();
        let state = program
            .cells()
            .iter()
            .map(|cp| if cp.is_empty() { CellState::Done } else { CellState::Ready })
            .collect();
        Ok(Simulation {
            pc: vec![0; program.num_cells()],
            state,
            words_written: vec![0; program.num_messages()],
            departed,
            request_born: std::collections::BTreeMap::new(),
            born_counter: 0,
            stats: RunStats::new(program.num_cells()),
            cycle: 0,
            program: program.clone(),
            routes,
            pools,
            policy,
            config,
        })
    }

    /// Runs to completion, deadlock, or the cycle limit.
    #[must_use]
    pub fn run(mut self) -> RunOutcome {
        loop {
            if self.all_done() {
                self.finish_stats();
                return RunOutcome::Completed(self.stats);
            }
            if self.cycle >= self.config.max_cycles {
                self.finish_stats();
                return RunOutcome::CycleLimit(self.stats);
            }
            let mut activity = 0usize;
            activity += self.phase_assignment();
            activity += self.phase_forwarding();
            activity += self.phase_cells();
            self.cycle += 1;
            if activity == 0 {
                self.finish_stats();
                let report = self.diagnose();
                return RunOutcome::Deadlocked { stats: self.stats, report };
            }
        }
    }

    fn finish_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.queue_high_water =
            self.pools.iter().map(|(id, q)| (id, q.high_water())).collect();
    }

    fn all_done(&self) -> bool {
        self.state.iter().all(|s| matches!(s, CellState::Done))
    }

    fn hop_queue(&self, m: MessageId, hop_index: usize) -> Option<QueueId> {
        let hop = self.routes.route(m).hops().nth(hop_index)?;
        let interval = hop.interval();
        self.pools
            .live_assignment(m, interval)
            .map(|idx| QueueId::new(interval, idx as u32))
    }

    /// Collects requests and applies the policy's grants.
    fn phase_assignment(&mut self) -> usize {
        let mut needs: Vec<(MessageId, systolic_model::Hop)> = Vec::new();
        // Senders stalled on their first hop.
        for cell in self.program.cell_ids() {
            if !matches!(self.state[cell.index()], CellState::Ready) {
                continue;
            }
            let Some(op) = self.program.cell(cell).get(self.pc[cell.index()]) else {
                continue;
            };
            if op.is_write() {
                let m = op.message();
                let hop = self.routes.route(m).hops().next().expect("routes are nonempty");
                if self.pools.live_assignment(m, hop.interval()).is_none()
                    && !self.pools.has_granted(m, hop.interval())
                {
                    needs.push((m, hop));
                }
            }
        }
        // Headers waiting at intermediate hops.
        for (m, route) in self.routes.iter() {
            let hops: Vec<_> = route.hops().collect();
            for k in 1..hops.len() {
                let prev_interval = hops[k - 1].interval();
                let Some(prev_idx) = self.pools.live_assignment(m, prev_interval) else {
                    continue;
                };
                let prev_q = self.pools.queue(QueueId::new(prev_interval, prev_idx as u32));
                if prev_q.front().is_some()
                    && self.pools.live_assignment(m, hops[k].interval()).is_none()
                    && !self.pools.has_granted(m, hops[k].interval())
                {
                    needs.push((m, hops[k]));
                }
            }
        }
        let mut requests: Vec<Request> =
            needs.into_iter().map(|(m, hop)| self.make_request(m, hop)).collect();
        requests.sort_by_key(|r| r.born);

        let grants = {
            let view = PoolView::new(&self.pools);
            self.policy.grant(&view, &requests)
        };
        let n = grants.len();
        for g in grants {
            debug_assert!(
                self.pools.free_queues(g.hop.interval()).contains(&g.queue),
                "policy granted a non-free queue"
            );
            self.pools.grant(g.message, g.hop, g.queue);
            self.request_born.remove(&(g.message, g.hop.interval()));
            self.stats.grants += 1;
            self.stats.assignment_events.push(crate::AssignmentEvent {
                cycle: self.cycle,
                queue: QueueId::new(g.hop.interval(), g.queue as u32),
                message: g.message,
                granted: true,
            });
        }
        n
    }

    fn make_request(&mut self, m: MessageId, hop: systolic_model::Hop) -> Request {
        let key = (m, hop.interval());
        let born = match self.request_born.get(&key) {
            Some(&b) => b,
            None => {
                self.born_counter += 1;
                self.request_born.insert(key, self.born_counter);
                self.born_counter
            }
        };
        Request { message: m, hop, born }
    }

    /// Moves words one hop along each route, downstream hops first.
    fn phase_forwarding(&mut self) -> usize {
        let mut moves = 0;
        let message_ids: Vec<MessageId> = self.program.message_ids().collect();
        for m in message_ids {
            let num_hops = self.routes.route(m).num_hops();
            for k in (1..num_hops).rev() {
                let Some(src) = self.hop_queue(m, k - 1) else { continue };
                let Some(dst) = self.hop_queue(m, k) else { continue };
                if self.pools.queue(src).front().is_none() {
                    continue;
                }
                if !self.pools.queue(dst).can_accept() {
                    continue;
                }
                let word = self.pools.queue_mut(src).pop();
                let spilled = self.pools.queue_mut(dst).push(word);
                if spilled {
                    self.stats.spill_accesses += 2;
                }
                self.stats.words_forwarded += 1;
                moves += 1;
                self.note_departure(m, k - 1, src.interval());
            }
        }
        moves
    }

    /// Records that a word of `m` left the queue at `hop_index`, releasing
    /// the queue after the message's last word has passed it.
    fn note_departure(&mut self, m: MessageId, hop_index: usize, interval: Interval) {
        self.departed[m.index()][hop_index] += 1;
        if self.departed[m.index()][hop_index] == self.program.word_count(m) {
            let queue = self
                .pools
                .live_assignment(m, interval)
                .expect("departing message holds the queue");
            self.pools.release(m, interval);
            self.stats.assignment_events.push(crate::AssignmentEvent {
                cycle: self.cycle,
                queue: QueueId::new(interval, queue as u32),
                message: m,
                granted: false,
            });
        }
    }

    /// Each cell attempts its current operation.
    fn phase_cells(&mut self) -> usize {
        let mut activity = 0;
        // Words present at phase start; same-cycle sender pushes are not
        // readable, giving every transfer at least one cycle of latency.
        let available: std::collections::BTreeMap<QueueId, usize> =
            self.pools.iter().map(|(id, q)| (id, q.occupancy())).collect();
        let mut consumed: std::collections::BTreeMap<QueueId, usize> =
            std::collections::BTreeMap::new();

        let cells: Vec<CellId> = self.program.cell_ids().collect();
        for cell in cells {
            let i = cell.index();
            match self.state[i] {
                CellState::Done => {}
                CellState::Busy { remaining } => {
                    self.stats.busy_cycles[i] += 1;
                    activity += 1;
                    self.state[i] = if remaining > 1 {
                        CellState::Busy { remaining: remaining - 1 }
                    } else {
                        CellState::Ready
                    };
                    self.finish_if_done(cell);
                }
                CellState::AwaitDeparture { message, word } => {
                    if self.departed[message.index()][0] > word {
                        // The latch released our word: the write completes.
                        self.pc[i] += 1;
                        self.state[i] = CellState::Ready;
                        activity += 1;
                        self.finish_if_done(cell);
                    } else {
                        self.stats.blocked_cycles[i] += 1;
                    }
                }
                CellState::Ready => {
                    let Some(op) = self.program.cell(cell).get(self.pc[i]) else {
                        self.state[i] = CellState::Done;
                        activity += 1;
                        continue;
                    };
                    activity += self.attempt_op(cell, op, &available, &mut consumed);
                    self.finish_if_done(cell);
                }
            }
        }
        activity
    }

    fn finish_if_done(&mut self, cell: CellId) {
        let i = cell.index();
        if matches!(self.state[i], CellState::Ready)
            && self.pc[i] >= self.program.cell(cell).len()
        {
            self.state[i] = CellState::Done;
        }
    }

    fn attempt_op(
        &mut self,
        cell: CellId,
        op: Op,
        available: &std::collections::BTreeMap<QueueId, usize>,
        consumed: &mut std::collections::BTreeMap<QueueId, usize>,
    ) -> usize {
        let i = cell.index();
        let m = op.message();
        if op.is_write() {
            let Some(qid) = self.hop_queue(m, 0) else {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            };
            if !self.pools.queue(qid).can_accept() {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            }
            let word = Word { message: m, index: self.words_written[m.index()] };
            self.words_written[m.index()] += 1;
            let spilled = self.pools.queue_mut(qid).push(word);
            if spilled {
                self.stats.spill_accesses += 2;
            }
            self.stats.memory_accesses += self.config.cost.write_mem_accesses;
            self.stats.busy_cycles[i] += 1;
            if self.pools.queue(qid).config().capacity == 0 {
                // Latch semantics: the write completes only when the word
                // departs (Section 3.2).
                self.state[i] = CellState::AwaitDeparture { message: m, word: word.index };
            } else {
                self.pc[i] += 1;
                let latency = self.config.cost.write_latency();
                if latency > 1 {
                    self.state[i] = CellState::Busy { remaining: latency - 1 };
                }
            }
            1
        } else {
            let last_hop = self.routes.route(m).num_hops() - 1;
            let Some(qid) = self.hop_queue(m, last_hop) else {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            };
            let already = consumed.get(&qid).copied().unwrap_or(0);
            let at_start = available.get(&qid).copied().unwrap_or(0);
            if self.pools.queue(qid).front().is_none() || already >= at_start {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            }
            let word = self.pools.queue_mut(qid).pop();
            debug_assert_eq!(word.message, m, "queue serves one message at a time");
            *consumed.entry(qid).or_insert(0) += 1;
            self.stats.words_delivered += 1;
            self.stats.memory_accesses += self.config.cost.read_mem_accesses;
            self.stats.busy_cycles[i] += 1;
            self.note_departure(m, last_hop, qid.interval());
            self.pc[i] += 1;
            let latency = self.config.cost.read_latency();
            if latency > 1 {
                self.state[i] = CellState::Busy { remaining: latency - 1 };
            }
            1
        }
    }

    /// Builds the deadlock report for the current (quiescent) state.
    fn diagnose(&self) -> DeadlockReport {
        let mut blocked = Vec::new();
        for cell in self.program.cell_ids() {
            let i = cell.index();
            let Some(op) = self.program.cell(cell).get(self.pc[i]) else {
                continue;
            };
            let m = op.message();
            let reason = match self.state[i] {
                CellState::AwaitDeparture { message, word } => {
                    let qid = self.hop_queue(message, 0).expect("latch holds assignment");
                    BlockReason::AwaitingDeparture { queue: qid, word }
                }
                _ if op.is_write() => match self.hop_queue(m, 0) {
                    None => BlockReason::NoQueueAssigned {
                        hop: self.routes.route(m).hops().next().expect("nonempty route"),
                    },
                    Some(qid) => BlockReason::QueueFull { queue: qid },
                },
                _ => {
                    let last = self.routes.route(m).num_hops() - 1;
                    match self.hop_queue(m, last) {
                        None => BlockReason::NoQueueAssigned {
                            hop: self
                                .routes
                                .route(m)
                                .hops()
                                .nth(last)
                                .expect("last hop exists"),
                        },
                        Some(qid) => BlockReason::QueueEmpty { queue: qid },
                    }
                }
            };
            blocked.push(BlockedCell { cell, pc: self.pc[i], op, reason });
        }
        let queues = self
            .pools
            .iter()
            .map(|(id, q)| QueueSnapshot {
                id,
                assigned: q.assigned(),
                occupancy: q.occupancy(),
                departed: q.departed(),
            })
            .collect();
        DeadlockReport { cycle: self.cycle, blocked, queues }
    }
}

/// Convenience wrapper: build and run in one call.
///
/// # Errors
///
/// Propagates [`Simulation::new`] errors.
pub fn run_simulation(
    program: &Program,
    topology: &Topology,
    policy: Box<dyn AssignmentPolicy>,
    config: SimConfig,
) -> Result<RunOutcome, ModelError> {
    Ok(Simulation::new(program, topology, policy, config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompatiblePolicy, FifoPolicy, GreedyPolicy, StaticPolicy};
    use systolic_core::{AnalysisConfig, Analyzer, Lookahead};
    use systolic_model::parse_program;
    use systolic_workloads as wl;

    fn buffered(queues: usize, capacity: usize) -> SimConfig {
        SimConfig {
            queues_per_interval: queues,
            queue: QueueConfig { capacity, extension: false },
            ..Default::default()
        }
    }

    fn compatible_policy(
        program: &Program,
        topology: &Topology,
        queues: usize,
        lookahead: Lookahead,
    ) -> Box<dyn AssignmentPolicy> {
        let config = AnalysisConfig { queues_per_interval: queues, lookahead };
        let plan = Analyzer::for_topology(topology, &config)
            .analyze(program)
            .expect("analysis succeeds")
            .into_plan();
        Box::new(CompatiblePolicy::new(plan))
    }

    #[test]
    fn single_transfer_completes() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let out =
            run_simulation(&p, &Topology::linear(2), Box::new(GreedyPolicy::new()), buffered(1, 1))
                .unwrap();
        let RunOutcome::Completed(stats) = out else { panic!("expected completion") };
        assert_eq!(stats.words_delivered, 1);
        assert_eq!(stats.memory_accesses, 0, "systolic model touches no memory");
        assert!(stats.cycles >= 2, "at least one cycle of queue latency");
    }

    #[test]
    fn fig2_fir_completes_with_one_queue_per_direction() {
        // All FIR messages share one label; each interval carries one
        // message per direction, so 2 queues per interval suffice.
        let p = wl::fig2_fir();
        let t = wl::fig2_topology();
        let policy = compatible_policy(&p, &t, 2, Lookahead::Disabled);
        let out = run_simulation(&p, &t, policy, buffered(2, 1)).unwrap();
        assert!(out.is_completed(), "FIR must complete: {out:?}");
        assert_eq!(out.stats().words_delivered, 15);
    }

    #[test]
    fn fig5_p2_deadlocks_on_latches_but_completes_buffered() {
        // P2: both cells write first. With latch queues (capacity 0) the
        // writes never complete (Section 3.2); with 1 word of buffering the
        // run finishes (Section 8 + lookahead classification).
        let p = wl::fig5_p2();
        let t = Topology::linear(2);
        let latch = run_simulation(
            &p,
            &t,
            Box::new(GreedyPolicy::new()),
            buffered(2, 0),
        )
        .unwrap();
        assert!(latch.is_deadlocked(), "P2 deadlocks on latches");

        let buf = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 1)).unwrap();
        assert!(buf.is_completed(), "P2 completes with buffering");
    }

    #[test]
    fn fig5_p1_needs_two_words_of_buffering_and_two_queues() {
        let p = wl::fig5_p1();
        let t = Topology::linear(2);
        // Capacity 1: deadlocked (C1 blocks on its second W(A)).
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 1)).unwrap();
        assert!(out.is_deadlocked());
        // Capacity 2, separate queues for A and B: completes (Fig. 10).
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 2)).unwrap();
        assert!(out.is_completed());
        // Capacity 2 but a single queue: A fills it and B can never pass.
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(1, 2)).unwrap();
        assert!(out.is_deadlocked());
    }

    #[test]
    fn fig5_p3_deadlocks_no_matter_what() {
        let p = wl::fig5_p3();
        let t = Topology::linear(2);
        for (queues, cap) in [(1, 0), (2, 1), (4, 16)] {
            let out =
                run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(queues, cap))
                    .unwrap();
            assert!(out.is_deadlocked(), "P3 must deadlock with {queues} queues cap {cap}");
        }
    }

    #[test]
    fn fig6_cycle_completes() {
        let p = wl::fig6_cycle();
        let t = wl::fig6_topology();
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(1, 1)).unwrap();
        assert!(out.is_completed(), "message cycles are not deadlocks: {out:?}");
    }

    #[test]
    fn fig7_fifo_deadlocks_compatible_completes() {
        let p = wl::fig7(3);
        let t = wl::fig7_topology();
        let naive =
            run_simulation(&p, &t, Box::new(FifoPolicy::new()), buffered(1, 1)).unwrap();
        let RunOutcome::Deadlocked { report, .. } = naive else {
            panic!("fifo policy must deadlock on Fig. 7")
        };
        // The deadlock is queue-induced: someone waits for an assignment.
        assert!(!report.assignment_waiters().is_empty(), "{report}");

        let policy = compatible_policy(&p, &t, 1, Lookahead::Disabled);
        let safe = run_simulation(&p, &t, policy, buffered(1, 1)).unwrap();
        assert!(safe.is_completed(), "compatible assignment completes Fig. 7");
    }

    #[test]
    fn fig8_one_queue_deadlocks_two_complete() {
        let p = wl::fig8();
        let t = wl::fig8_topology();
        let one = run_simulation(&p, &t, Box::new(FifoPolicy::new()), buffered(1, 1)).unwrap();
        assert!(one.is_deadlocked(), "Fig. 8 with one queue deadlocks");

        // Two queues: even the naive policies complete.
        for policy in [
            Box::new(FifoPolicy::new()) as Box<dyn AssignmentPolicy>,
            Box::new(GreedyPolicy::new()),
        ] {
            let out = run_simulation(&p, &t, policy, buffered(2, 1)).unwrap();
            assert!(out.is_completed(), "Fig. 8 with two queues completes");
        }
        // And the compatible policy (which reserves both queues at once).
        let policy = compatible_policy(&p, &t, 2, Lookahead::Disabled);
        let out = run_simulation(&p, &t, policy, buffered(2, 1)).unwrap();
        assert!(out.is_completed());
    }

    #[test]
    fn fig9_one_queue_deadlocks_static_two_completes() {
        let p = wl::fig9();
        let t = wl::fig9_topology();
        let one = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(1, 1)).unwrap();
        assert!(one.is_deadlocked(), "Fig. 9 with one queue deadlocks");

        // Paper: two queues, A and B statically separated => no deadlock.
        let config = AnalysisConfig { queues_per_interval: 2, ..Default::default() };
        let plan = Analyzer::for_topology(&t, &config).analyze(&p).unwrap().into_plan();
        let static_policy = StaticPolicy::new(&plan, 2).unwrap();
        let out = run_simulation(&p, &t, Box::new(static_policy), buffered(2, 1)).unwrap();
        assert!(out.is_completed());
    }

    #[test]
    fn mem2mem_costs_four_accesses_per_updated_word() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*4 }\nprogram c1 { R(A)*4 }\n",
        )
        .unwrap();
        let config = SimConfig { cost: CostModel::memory_to_memory(), ..buffered(1, 1) };
        let out =
            run_simulation(&p, &Topology::linear(2), Box::new(GreedyPolicy::new()), config)
                .unwrap();
        let RunOutcome::Completed(stats) = out else { panic!("expected completion") };
        // 4 words x (2 accesses on write + 2 on read).
        assert_eq!(stats.memory_accesses, 16);
        assert_eq!(stats.accesses_per_word(), 4.0);

        let systolic = run_simulation(
            &p,
            &Topology::linear(2),
            Box::new(GreedyPolicy::new()),
            buffered(1, 1),
        )
        .unwrap();
        assert_eq!(systolic.stats().memory_accesses, 0);
        assert!(
            systolic.stats().cycles < stats.cycles,
            "systolic is faster: {} vs {}",
            systolic.stats().cycles,
            stats.cycles
        );
    }

    #[test]
    fn queue_extension_rescues_p1_with_small_queues() {
        // P1 needs 2 words of buffering; with capacity 1 + extension the
        // overflow spills to memory and the run completes (Section 8.1's
        // queue-extension mechanism), at a measurable spill cost.
        let p = wl::fig5_p1();
        let t = Topology::linear(2);
        let config = SimConfig {
            queues_per_interval: 2,
            queue: QueueConfig { capacity: 1, extension: true },
            ..Default::default()
        };
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), config).unwrap();
        let RunOutcome::Completed(stats) = out else { panic!("expected completion: {out:?}") };
        assert!(stats.spill_accesses > 0, "extension must have been used");
    }

    #[test]
    fn multi_hop_message_is_forwarded() {
        let p = parse_program(
            "cells 4\nmessage A: c0 -> c3\nprogram c0 { W(A)*2 }\nprogram c3 { R(A)*2 }\n\
             program c1 { }\nprogram c2 { }\n",
        )
        .unwrap();
        let out =
            run_simulation(&p, &Topology::linear(4), Box::new(GreedyPolicy::new()), buffered(1, 1))
                .unwrap();
        let RunOutcome::Completed(stats) = out else { panic!("expected completion") };
        // 2 words x 2 intermediate hops.
        assert_eq!(stats.words_forwarded, 4);
        assert_eq!(stats.words_delivered, 2);
    }

    #[test]
    fn cycle_limit_is_reported() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*100 }\nprogram c1 { R(A)*100 }\n",
        )
        .unwrap();
        let config = SimConfig { max_cycles: 5, ..buffered(1, 1) };
        let out =
            run_simulation(&p, &Topology::linear(2), Box::new(GreedyPolicy::new()), config)
                .unwrap();
        assert!(matches!(out, RunOutcome::CycleLimit(_)));
    }

    #[test]
    fn deadlock_report_names_holder_and_waiter() {
        let p = wl::fig7(2);
        let t = wl::fig7_topology();
        let out = run_simulation(&p, &t, Box::new(FifoPolicy::new()), buffered(1, 1)).unwrap();
        let RunOutcome::Deadlocked { report, .. } = out else { panic!("must deadlock") };
        let text = report.to_string();
        assert!(text.contains("held by"), "{text}");
        assert!(text.contains("waiting for a queue"), "{text}");
    }

    #[test]
    fn blocked_and_busy_cycles_are_tracked() {
        let p = wl::fig7(3);
        let t = wl::fig7_topology();
        let policy = compatible_policy(&p, &t, 1, Lookahead::Disabled);
        let out = run_simulation(&p, &t, policy, buffered(1, 1)).unwrap();
        let RunOutcome::Completed(stats) = out else { panic!("expected completion") };
        // c4 (reader of C then B) must have been blocked at some point while
        // C crossed three intervals.
        assert!(stats.total_blocked() > 0);
        assert!(stats.busy(CellId::new(3)) > 0);
        assert!(stats.grants >= 5, "A, B and C each secure queues along their routes");
    }

    #[test]
    fn empty_program_completes_immediately() {
        let p = systolic_model::ProgramBuilder::new(3).build().unwrap();
        let out =
            run_simulation(&p, &Topology::linear(3), Box::new(GreedyPolicy::new()), buffered(1, 1))
                .unwrap();
        let RunOutcome::Completed(stats) = out else { panic!("expected completion") };
        assert_eq!(stats.words_delivered, 0);
    }

    #[test]
    fn workload_generators_run_to_completion() {
        // A smoke sweep: every generator's output completes under the
        // compatible policy with generous queues.
        let cases: Vec<(Program, Topology)> = vec![
            (wl::fir(4, 8).unwrap(), wl::fir_topology(4)),
            (wl::matvec(4).unwrap(), wl::matvec_topology(4)),
            (wl::odd_even_sort(4, 4).unwrap(), wl::sort_topology(4)),
            (wl::seq_align(3, 4).unwrap(), wl::seq_align_topology(3)),
            (wl::horner(3, 3).unwrap(), wl::horner_topology(3)),
            (wl::token_ring(4, 2).unwrap(), wl::ring_topology(4)),
            (wl::mesh_matmul(2, 3, 3).unwrap(), wl::matmul_topology(2, 3)),
            (wl::wavefront(3, 3, 2).unwrap(), wl::wavefront_topology(3, 3)),
        ];
        for (program, topology) in cases {
            let config = AnalysisConfig { queues_per_interval: 8, ..Default::default() };
            let analysis = Analyzer::for_topology(&topology, &config)
                .analyze(&program)
                .expect("workloads are deadlock-free");
            let policy = Box::new(CompatiblePolicy::new(analysis.into_plan()));
            let out = run_simulation(&program, &topology, policy, buffered(8, 2)).unwrap();
            assert!(out.is_completed(), "workload failed: {out:?}");
        }
    }
}
