//! The cycle-stepped simulation engine.
//!
//! Each cycle proceeds in three phases:
//!
//! 1. **assignment** — stalled messages raise queue requests (oldest
//!    first); the [`AssignmentPolicy`] issues grants;
//! 2. **forwarding** — the transparent I/O processes move words one hop
//!    along each message's route ("transferring words through queues is
//!    transparent to cell programs", Section 2.3);
//! 3. **cells** — each cell attempts its current `R`/`W` operation against
//!    its queues, with latencies and memory-access counts from the
//!    [`CostModel`].
//!
//! The run ends when every cell finishes (**completed**), when a cycle
//! passes with no activity (**deadlocked** — the system is quiescent and
//! can never move again, since all conditions are monotone), or at the
//! configured cycle limit.
//!
//! # Architecture: world / arena split
//!
//! The engine separates what is **immutable across a batch of replays**
//! from what is **mutable per run**:
//!
//! * [`SimWorld`] — the topology (optionally a precompiled
//!   [`CompiledTopology`] whose route closure serves routing for free) and
//!   the [`SimConfig`]. Built once per batch.
//! * [`SimArena`] — the reusable run state: the flat queue pool
//!   ([`QueuePools`]), per-cell program counters, per-hop departure
//!   counters and request bookkeeping, all held in arena vectors indexed
//!   by cell/interval/hop ids. Between replays the arena is **reset, not
//!   reallocated**: buffers are cleared in place and reused, so a batch of
//!   N replays performs one setup, not N.
//!
//! [`Simulation`] remains as the one-shot convenience wrapper (build one
//! world + arena, run once); batch callers use [`SimArena`] directly — see
//! [`crate::verify_batch_compiled`].

use std::sync::Arc;

use systolic_core::CompiledTopology;
use systolic_model::{
    CellId, Hop, MessageId, MessageRoutes, ModelError, Op, Program, QueueId, Topology,
};

use crate::{
    AssignmentEvent, AssignmentPolicy, BlockReason, BlockedCell, CostModel, DeadlockReport,
    PoolView, QueueConfig, QueuePools, QueueSnapshot, Request, RunStats, Word,
};

/// Simulation parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// Hardware queues per interval.
    pub queues_per_interval: usize,
    /// Configuration of every queue (capacity, extension).
    pub queue: QueueConfig,
    /// Cell execution cost model.
    pub cost: CostModel,
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queues_per_interval: 1,
            queue: QueueConfig::default(),
            cost: CostModel::systolic(),
            max_cycles: 1_000_000,
        }
    }
}

/// How a run ended.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Every cell completed its program.
    Completed(RunStats),
    /// The system quiesced with work remaining.
    Deadlocked {
        /// Statistics up to the stall.
        stats: RunStats,
        /// Full diagnosis.
        report: DeadlockReport,
    },
    /// `max_cycles` elapsed (livelock is impossible; this means the limit
    /// was set too low for the workload).
    CycleLimit(RunStats),
}

impl RunOutcome {
    /// `true` for [`RunOutcome::Completed`].
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    /// `true` for [`RunOutcome::Deadlocked`].
    #[must_use]
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, RunOutcome::Deadlocked { .. })
    }

    /// The run statistics, however the run ended.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        match self {
            RunOutcome::Completed(s) | RunOutcome::CycleLimit(s) => s,
            RunOutcome::Deadlocked { stats, .. } => stats,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CellState {
    Ready,
    Busy {
        remaining: u64,
    },
    /// A latch write waits for its word to leave the first-hop queue.
    AwaitDeparture {
        message: MessageId,
        word: usize,
    },
    Done,
}

#[derive(Clone, Debug)]
enum WorldTopology {
    /// A plain topology: routes are computed per program.
    Plain(Topology),
    /// A precompiled topology: routes come from the shared route closure.
    Compiled(Arc<CompiledTopology>),
}

/// The immutable per-batch half of a simulation: the topology (plain or
/// precompiled) and the simulation parameters. One `SimWorld` is built per
/// batch and shared by every replay through its [`SimArena`].
#[derive(Clone, Debug)]
pub struct SimWorld {
    topology: WorldTopology,
    config: SimConfig,
}

impl SimWorld {
    /// A world over a plain topology. Routing state is derived per program
    /// via [`MessageRoutes::compute`].
    #[must_use]
    pub fn new(topology: &Topology, config: SimConfig) -> Self {
        SimWorld {
            topology: WorldTopology::Plain(topology.clone()),
            config,
        }
    }

    /// A world over a precompiled topology: [`SimWorld::routes_for`] is
    /// served from the compilation's route closure (one BFS per *source*
    /// amortized across the whole batch, instead of one per message per
    /// replay).
    #[must_use]
    pub fn from_compiled(compiled: Arc<CompiledTopology>, config: SimConfig) -> Self {
        SimWorld {
            topology: WorldTopology::Compiled(compiled),
            config,
        }
    }

    /// The topology simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        match &self.topology {
            WorldTopology::Plain(t) => t,
            WorldTopology::Compiled(c) => c.topology(),
        }
    }

    /// The simulation parameters.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Routes every message of `program` over this world's topology —
    /// from the precompiled route closure when the world holds one.
    ///
    /// # Errors
    ///
    /// As [`MessageRoutes::compute`]: cell-count mismatches and routing
    /// failures.
    pub fn routes_for(&self, program: &Program) -> Result<MessageRoutes, ModelError> {
        match &self.topology {
            WorldTopology::Plain(t) => MessageRoutes::compute(program, t),
            WorldTopology::Compiled(c) => c.routes_for(program),
        }
    }
}

/// The mutable, reusable half of a simulation: queue pools, per-cell and
/// per-hop run state, and per-cycle scratch buffers, all reset in place
/// between replays.
///
/// One arena serves a whole batch: call [`SimArena::run`] (or
/// [`SimArena::run_with_routes`]) once per replay. Queue pools grow on
/// demand via [`SimArena::ensure_queues`] and never shrink, so a batch
/// whose plans need different queue counts still reuses one allocation.
///
/// # Examples
///
/// ```
/// use systolic_sim::{GreedyPolicy, SimArena, SimConfig, SimWorld};
/// use systolic_model::{parse_program, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let world = SimWorld::new(&Topology::linear(2), SimConfig::default());
/// let mut arena = SimArena::new(world);
/// let mut policy = GreedyPolicy::new();
/// for reps in 1..4 {
///     let program = parse_program(&format!(
///         "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ W(A)*{reps} }}\nprogram c1 {{ R(A)*{reps} }}\n",
///     ))?;
///     // Same arena, three replays: state is reset, not reallocated.
///     let outcome = arena.run(&program, &mut policy)?;
///     assert!(outcome.is_completed());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimArena {
    world: SimWorld,
    pools: QueuePools,
    // Per-cell state.
    pc: Vec<usize>,
    state: Vec<CellState>,
    /// Cells with non-empty programs — the only ones the cycle loops
    /// visit (a large fabric runs small programs: most cells are idle).
    active: Vec<u32>,
    // Per-message state.
    words_written: Vec<usize>,
    /// Hop table offsets: message `m`'s hops live at
    /// `hop_off[m]..hop_off[m + 1]` in the flat per-hop arrays.
    hop_off: Vec<usize>,
    /// Directed hop per (message, hop index), flattened.
    hops: Vec<Hop>,
    /// Interval-table index of each hop, flattened (parallel to `hops`).
    hop_iv: Vec<u32>,
    /// Words that have departed each hop's queue, flattened.
    departed: Vec<usize>,
    /// Request birth stamps per `(message, interval)`; 0 = no open request.
    request_born: Vec<u64>,
    born_counter: u64,
    // Per-cycle scratch (reused every cycle of every replay). The
    // per-queue tables are *stamped* with the cycle tag instead of being
    // cleared: an entry whose stamp is stale reads as zero, so a cycle
    // touches only the queues its reads actually target, not the whole
    // pool.
    needs: Vec<(MessageId, Hop)>,
    requests: Vec<Request>,
    /// `(cycle tag, occupancy at phase start)` per flat queue index.
    avail: Vec<(u64, usize)>,
    /// `(cycle tag, words consumed this cycle)` per flat queue index.
    consumed: Vec<(u64, usize)>,
    // Current-run accounting.
    stats: RunStats,
    cycle: u64,
}

impl SimArena {
    /// Builds the arena for `world`, allocating queue pools for every
    /// interval of its topology.
    #[must_use]
    pub fn new(world: SimWorld) -> Self {
        let config = world.config();
        let pools = QueuePools::uniform(
            world.topology().intervals().iter().copied(),
            config.queues_per_interval,
            config.queue,
        );
        SimArena {
            world,
            pools,
            pc: Vec::new(),
            state: Vec::new(),
            active: Vec::new(),
            words_written: Vec::new(),
            hop_off: Vec::new(),
            hops: Vec::new(),
            hop_iv: Vec::new(),
            departed: Vec::new(),
            request_born: Vec::new(),
            born_counter: 0,
            needs: Vec::new(),
            requests: Vec::new(),
            avail: Vec::new(),
            consumed: Vec::new(),
            stats: RunStats::default(),
            cycle: 0,
        }
    }

    /// Convenience: [`SimArena::new`] over [`SimWorld::new`].
    #[must_use]
    pub fn from_topology(topology: &Topology, config: SimConfig) -> Self {
        SimArena::new(SimWorld::new(topology, config))
    }

    /// Convenience: [`SimArena::new`] over [`SimWorld::from_compiled`].
    #[must_use]
    pub fn from_compiled(compiled: Arc<CompiledTopology>, config: SimConfig) -> Self {
        SimArena::new(SimWorld::from_compiled(compiled, config))
    }

    /// The world this arena replays against.
    #[must_use]
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Raises the queue pool to at least `queues_per_interval` queues on
    /// every interval (never shrinks). Call between replays when a plan
    /// needs more queues than the world's configured floor.
    pub fn ensure_queues(&mut self, queues_per_interval: usize) {
        self.pools.ensure_queues_per_interval(queues_per_interval);
    }

    /// A coarse estimate of this arena's resident memory, in bytes —
    /// dominated by the queue pool (one pool per directed interval of the
    /// fabric) plus the flattened run-state tables. The estimate is what
    /// [`ArenaLru`](crate::ArenaLru) uses to enforce an
    /// [`ArenaBudget::MemBytes`](crate::ArenaBudget) residency budget; it
    /// grows as the pool grows ([`ensure_queues`](SimArena::ensure_queues))
    /// and as larger programs stretch the per-hop tables.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let per_queue_words = self.world.config().queue.capacity.max(1);
        let queue_bytes = self
            .pools
            .num_queues()
            .saturating_mul(per_queue_words * std::mem::size_of::<Word>() + 96);
        let cell_bytes = (self.pc.capacity() + self.active.capacity()) * 8
            + self.state.capacity() * std::mem::size_of::<CellState>();
        let hop_bytes = self.hops.capacity() * std::mem::size_of::<Hop>()
            + (self.hop_off.capacity() + self.hop_iv.capacity() + self.departed.capacity()) * 8
            + self.request_born.capacity() * 8;
        let scratch_bytes = (self.avail.capacity() + self.consumed.capacity()) * 16
            + self.needs.capacity() * std::mem::size_of::<(MessageId, Hop)>()
            + self.requests.capacity() * std::mem::size_of::<Request>();
        1024 + queue_bytes + cell_bytes + hop_bytes + scratch_bytes
    }

    /// Routes `program` and replays it under `policy`, resetting the
    /// arena's run state in place.
    ///
    /// # Errors
    ///
    /// Routing/validation errors from [`SimWorld::routes_for`].
    pub fn run(
        &mut self,
        program: &Program,
        policy: &mut dyn AssignmentPolicy,
    ) -> Result<RunOutcome, ModelError> {
        let routes = self.world.routes_for(program)?;
        Ok(self.run_with_routes(program, &routes, policy))
    }

    /// Replays `program` with precomputed `routes` (e.g. a certified
    /// plan's) under `policy`. The routes must have been computed over
    /// this world's topology for this program.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not cover exactly the program's messages or
    /// crosses an interval the topology does not have.
    pub fn run_with_routes(
        &mut self,
        program: &Program,
        routes: &MessageRoutes,
        policy: &mut dyn AssignmentPolicy,
    ) -> RunOutcome {
        assert_eq!(
            routes.len(),
            program.num_messages(),
            "routes must cover exactly the program's messages"
        );
        self.reset(program, routes);
        policy.begin_run();
        loop {
            if self.all_done() {
                self.finish_stats();
                return RunOutcome::Completed(std::mem::take(&mut self.stats));
            }
            if self.cycle >= self.world.config.max_cycles {
                self.finish_stats();
                return RunOutcome::CycleLimit(std::mem::take(&mut self.stats));
            }
            let mut activity = 0usize;
            activity += self.phase_assignment(program, policy);
            activity += self.phase_forwarding(program);
            activity += self.phase_cells(program);
            self.cycle += 1;
            if activity == 0 {
                self.finish_stats();
                let report = self.diagnose(program);
                return RunOutcome::Deadlocked {
                    stats: std::mem::take(&mut self.stats),
                    report,
                };
            }
        }
    }

    /// Clears all run state in place and rebuilds the per-message hop
    /// tables for this replay. No long-lived allocation is dropped; the
    /// flat vectors only grow to the batch's high-water mark.
    fn reset(&mut self, program: &Program, routes: &MessageRoutes) {
        let cells = program.num_cells();
        let msgs = program.num_messages();
        self.pools.reset_for(msgs);
        self.pc.clear();
        self.pc.resize(cells, 0);
        self.state.clear();
        self.state.extend(program.cells().iter().map(|cp| {
            if cp.is_empty() {
                CellState::Done
            } else {
                CellState::Ready
            }
        }));
        self.active.clear();
        self.active.extend(
            program
                .cells()
                .iter()
                .enumerate()
                .filter(|(_, cp)| !cp.is_empty())
                .map(|(i, _)| i as u32),
        );
        self.words_written.clear();
        self.words_written.resize(msgs, 0);
        self.hop_off.clear();
        self.hops.clear();
        self.hop_iv.clear();
        self.hop_off.push(0);
        for (_, route) in routes.iter() {
            for hop in route.hops() {
                let iv = self
                    .pools
                    .interval_index(hop.interval())
                    // lint: panic-ok(world construction validated every route against the topology)
                    .expect("route crosses an interval of the world's topology");
                self.hops.push(hop);
                self.hop_iv.push(iv as u32);
            }
            self.hop_off.push(self.hops.len());
        }
        self.departed.clear();
        self.departed.resize(self.hops.len(), 0);
        self.request_born.clear();
        self.request_born
            .resize(msgs * self.pools.num_intervals(), 0);
        self.born_counter = 0;
        // Zero the stamps (cycle tags restart every replay).
        self.avail.clear();
        self.avail.resize(self.pools.num_queues(), (0, 0));
        self.consumed.clear();
        self.consumed.resize(self.pools.num_queues(), (0, 0));
        self.stats = RunStats::new(cells);
        self.cycle = 0;
    }

    fn finish_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.queue_high_water = self
            .pools
            .iter()
            .map(|(id, q)| (id, q.high_water()))
            .collect();
    }

    fn all_done(&self) -> bool {
        self.active
            .iter()
            .all(|&i| matches!(self.state[i as usize], CellState::Done))
    }

    /// Collects requests and applies the policy's grants.
    fn phase_assignment(&mut self, program: &Program, policy: &mut dyn AssignmentPolicy) -> usize {
        self.needs.clear();
        // Senders stalled on their first hop.
        for idx in 0..self.active.len() {
            let cell = CellId::new(self.active[idx]);
            let i = cell.index();
            if !matches!(self.state[i], CellState::Ready) {
                continue;
            }
            let Some(op) = program.cell(cell).get(self.pc[i]) else {
                continue;
            };
            if op.is_write() {
                let m = op.message();
                let h0 = self.hop_off[m.index()];
                debug_assert!(h0 < self.hop_off[m.index() + 1], "routes are nonempty");
                let iv = self.hop_iv[h0] as usize;
                if self.pools.live_at(m, iv).is_none() && !self.pools.has_granted_at(m, iv) {
                    self.needs.push((m, self.hops[h0]));
                }
            }
        }
        // Headers waiting at intermediate hops.
        for m_idx in 0..self.words_written.len() {
            let m = MessageId::new(m_idx as u32);
            let (start, end) = (self.hop_off[m_idx], self.hop_off[m_idx + 1]);
            for k in start + 1..end {
                let prev_iv = self.hop_iv[k - 1] as usize;
                let Some(prev_q) = self.pools.live_at(m, prev_iv) else {
                    continue;
                };
                let cur_iv = self.hop_iv[k] as usize;
                if self.pools.queue_at(prev_iv, prev_q).front().is_some()
                    && self.pools.live_at(m, cur_iv).is_none()
                    && !self.pools.has_granted_at(m, cur_iv)
                {
                    self.needs.push((m, self.hops[k]));
                }
            }
        }
        self.requests.clear();
        let n_iv = self.pools.num_intervals();
        for idx in 0..self.needs.len() {
            let (m, hop) = self.needs[idx];
            let iv = self
                .pools
                .interval_index(hop.interval())
                .expect("needs carry known intervals"); // lint: panic-ok(needs were built from the same world)
            let slot = m.index() * n_iv + iv;
            if self.request_born[slot] == 0 {
                self.born_counter += 1;
                self.request_born[slot] = self.born_counter;
            }
            self.requests.push(Request {
                message: m,
                hop,
                born: self.request_born[slot],
            });
        }
        self.requests.sort_by_key(|r| r.born);

        let grants = {
            let view = PoolView::new(&self.pools);
            policy.grant(&view, &self.requests)
        };
        let n = grants.len();
        for g in grants {
            debug_assert!(
                self.pools.free_queues(g.hop.interval()).contains(&g.queue),
                "policy granted a non-free queue"
            );
            self.pools.grant(g.message, g.hop, g.queue);
            let iv = self
                .pools
                .interval_index(g.hop.interval())
                .expect("grants land on known intervals"); // lint: panic-ok(grants were issued from the same pool set)
            self.request_born[g.message.index() * n_iv + iv] = 0;
            self.stats.grants += 1;
            self.stats.assignment_events.push(AssignmentEvent {
                cycle: self.cycle,
                queue: QueueId::new(g.hop.interval(), g.queue as u32),
                message: g.message,
                granted: true,
            });
        }
        n
    }

    /// Moves words one hop along each route, downstream hops first.
    fn phase_forwarding(&mut self, program: &Program) -> usize {
        let mut moves = 0;
        for m_idx in 0..self.words_written.len() {
            let m = MessageId::new(m_idx as u32);
            let (start, end) = (self.hop_off[m_idx], self.hop_off[m_idx + 1]);
            for k in (start + 1..end).rev() {
                let src_iv = self.hop_iv[k - 1] as usize;
                let dst_iv = self.hop_iv[k] as usize;
                let Some(src_q) = self.pools.live_at(m, src_iv) else {
                    continue;
                };
                let Some(dst_q) = self.pools.live_at(m, dst_iv) else {
                    continue;
                };
                if self.pools.queue_at(src_iv, src_q).front().is_none() {
                    continue;
                }
                if !self.pools.queue_at(dst_iv, dst_q).can_accept() {
                    continue;
                }
                let word = self.pools.queue_at_mut(src_iv, src_q).pop();
                let spilled = self.pools.queue_at_mut(dst_iv, dst_q).push(word);
                if spilled {
                    self.stats.spill_accesses += 2;
                }
                self.stats.words_forwarded += 1;
                moves += 1;
                self.note_departure(program, m, k - 1);
            }
        }
        moves
    }

    /// Records that a word of `m` left the queue at flat hop index
    /// `flat_k`, releasing the queue after the message's last word has
    /// passed it.
    fn note_departure(&mut self, program: &Program, m: MessageId, flat_k: usize) {
        self.departed[flat_k] += 1;
        if self.departed[flat_k] == program.word_count(m) {
            let iv = self.hop_iv[flat_k] as usize;
            let queue = self
                .pools
                .live_at(m, iv)
                .expect("departing message holds the queue"); // lint: panic-ok(departure follows a grant; pool corruption otherwise)
            let interval = self.pools.interval_at(iv);
            self.pools.release(m, interval);
            self.stats.assignment_events.push(AssignmentEvent {
                cycle: self.cycle,
                queue: QueueId::new(interval, queue as u32),
                message: m,
                granted: false,
            });
        }
    }

    /// Each cell attempts its current operation.
    fn phase_cells(&mut self, program: &Program) -> usize {
        let mut activity = 0;
        // Words present at phase start; same-cycle sender pushes are not
        // readable, giving every transfer at least one cycle of latency.
        // Snapshot occupancy only for the queues this cycle's read ops
        // target (grants happen in phase 1, so assignments are stable
        // here); everything else keeps a stale stamp and reads as zero.
        let tag = self.cycle + 1;
        for idx in 0..self.active.len() {
            let i = self.active[idx] as usize;
            if !matches!(self.state[i], CellState::Ready) {
                continue;
            }
            let Some(op) = program.cell(CellId::new(i as u32)).get(self.pc[i]) else {
                continue;
            };
            if op.is_write() {
                continue;
            }
            let m = op.message();
            let last = self.hop_off[m.index() + 1] - 1;
            let iv = self.hop_iv[last] as usize;
            if let Some(q) = self.pools.live_at(m, iv) {
                let flat = self.pools.flat_index(iv, q);
                self.avail[flat] = (tag, self.pools.queue_at(iv, q).occupancy());
            }
        }

        for idx in 0..self.active.len() {
            let i = self.active[idx] as usize;
            let cell = CellId::new(i as u32);
            match self.state[i] {
                CellState::Done => {}
                CellState::Busy { remaining } => {
                    self.stats.busy_cycles[i] += 1;
                    activity += 1;
                    self.state[i] = if remaining > 1 {
                        CellState::Busy {
                            remaining: remaining - 1,
                        }
                    } else {
                        CellState::Ready
                    };
                    self.finish_if_done(program, cell);
                }
                CellState::AwaitDeparture { message, word } => {
                    if self.departed[self.hop_off[message.index()]] > word {
                        // The latch released our word: the write completes.
                        self.pc[i] += 1;
                        self.state[i] = CellState::Ready;
                        activity += 1;
                        self.finish_if_done(program, cell);
                    } else {
                        self.stats.blocked_cycles[i] += 1;
                    }
                }
                CellState::Ready => {
                    let Some(op) = program.cell(cell).get(self.pc[i]) else {
                        self.state[i] = CellState::Done;
                        activity += 1;
                        continue;
                    };
                    activity += self.attempt_op(program, cell, op);
                    self.finish_if_done(program, cell);
                }
            }
        }
        activity
    }

    fn finish_if_done(&mut self, program: &Program, cell: CellId) {
        let i = cell.index();
        if matches!(self.state[i], CellState::Ready) && self.pc[i] >= program.cell(cell).len() {
            self.state[i] = CellState::Done;
        }
    }

    fn attempt_op(&mut self, program: &Program, cell: CellId, op: Op) -> usize {
        let i = cell.index();
        let m = op.message();
        let cost = self.world.config.cost;
        if op.is_write() {
            let h0 = self.hop_off[m.index()];
            let iv = self.hop_iv[h0] as usize;
            let Some(q) = self.pools.live_at(m, iv) else {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            };
            if !self.pools.queue_at(iv, q).can_accept() {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            }
            let word = Word {
                message: m,
                index: self.words_written[m.index()],
            };
            self.words_written[m.index()] += 1;
            let spilled = self.pools.queue_at_mut(iv, q).push(word);
            if spilled {
                self.stats.spill_accesses += 2;
            }
            self.stats.memory_accesses += cost.write_mem_accesses;
            self.stats.busy_cycles[i] += 1;
            if self.pools.queue_at(iv, q).config().capacity == 0 {
                // Latch semantics: the write completes only when the word
                // departs (Section 3.2).
                self.state[i] = CellState::AwaitDeparture {
                    message: m,
                    word: word.index,
                };
            } else {
                self.pc[i] += 1;
                let latency = cost.write_latency();
                if latency > 1 {
                    self.state[i] = CellState::Busy {
                        remaining: latency - 1,
                    };
                }
            }
            1
        } else {
            let last = self.hop_off[m.index() + 1] - 1;
            let iv = self.hop_iv[last] as usize;
            let Some(q) = self.pools.live_at(m, iv) else {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            };
            let flat = self.pools.flat_index(iv, q);
            let tag = self.cycle + 1;
            let at_start = if self.avail[flat].0 == tag {
                self.avail[flat].1
            } else {
                0
            };
            let already = if self.consumed[flat].0 == tag {
                self.consumed[flat].1
            } else {
                0
            };
            if self.pools.queue_at(iv, q).front().is_none() || already >= at_start {
                self.stats.blocked_cycles[i] += 1;
                return 0;
            }
            let word = self.pools.queue_at_mut(iv, q).pop();
            debug_assert_eq!(word.message, m, "queue serves one message at a time");
            self.consumed[flat] = (tag, already + 1);
            self.stats.words_delivered += 1;
            self.stats.memory_accesses += cost.read_mem_accesses;
            self.stats.busy_cycles[i] += 1;
            self.note_departure(program, m, last);
            self.pc[i] += 1;
            let latency = cost.read_latency();
            if latency > 1 {
                self.state[i] = CellState::Busy {
                    remaining: latency - 1,
                };
            }
            1
        }
    }

    /// Builds the deadlock report for the current (quiescent) state.
    fn diagnose(&self, program: &Program) -> DeadlockReport {
        let mut blocked = Vec::new();
        let queue_id = |iv: usize, q: usize| QueueId::new(self.pools.interval_at(iv), q as u32);
        for cell in program.cell_ids() {
            let i = cell.index();
            let Some(op) = program.cell(cell).get(self.pc[i]) else {
                continue;
            };
            let m = op.message();
            let reason = match self.state[i] {
                CellState::AwaitDeparture { message, word } => {
                    let h0 = self.hop_off[message.index()];
                    let iv = self.hop_iv[h0] as usize;
                    let q = self
                        .pools
                        .live_at(message, iv)
                        .expect("latch holds assignment"); // lint: panic-ok(latched set is rebuilt each step from live grants)
                    BlockReason::AwaitingDeparture {
                        queue: queue_id(iv, q),
                        word,
                    }
                }
                _ if op.is_write() => {
                    let h0 = self.hop_off[m.index()];
                    let iv = self.hop_iv[h0] as usize;
                    match self.pools.live_at(m, iv) {
                        None => BlockReason::NoQueueAssigned { hop: self.hops[h0] },
                        Some(q) => BlockReason::QueueFull {
                            queue: queue_id(iv, q),
                        },
                    }
                }
                _ => {
                    let last = self.hop_off[m.index() + 1] - 1;
                    let iv = self.hop_iv[last] as usize;
                    match self.pools.live_at(m, iv) {
                        None => BlockReason::NoQueueAssigned {
                            hop: self.hops[last],
                        },
                        Some(q) => BlockReason::QueueEmpty {
                            queue: queue_id(iv, q),
                        },
                    }
                }
            };
            blocked.push(BlockedCell {
                cell,
                pc: self.pc[i],
                op,
                reason,
            });
        }
        let queues = self
            .pools
            .iter()
            .map(|(id, q)| QueueSnapshot {
                id,
                assigned: q.assigned(),
                occupancy: q.occupancy(),
                departed: q.departed(),
            })
            .collect();
        DeadlockReport {
            cycle: self.cycle,
            blocked,
            queues,
        }
    }
}

/// A configured one-shot simulation, ready to run.
///
/// This is the convenience wrapper over the [`SimWorld`]/[`SimArena`]
/// split: it builds a fresh world and arena for a single replay. Batch
/// callers reuse one [`SimArena`] across replays instead.
#[derive(Debug)]
pub struct Simulation {
    arena: SimArena,
    program: Program,
    routes: MessageRoutes,
    policy: Box<dyn AssignmentPolicy>,
}

impl Simulation {
    /// Builds a simulation of `program` over `topology` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns routing/validation errors from
    /// [`MessageRoutes::compute`].
    pub fn new(
        program: &Program,
        topology: &Topology,
        policy: Box<dyn AssignmentPolicy>,
        config: SimConfig,
    ) -> Result<Self, ModelError> {
        let world = SimWorld::new(topology, config);
        let routes = world.routes_for(program)?;
        Ok(Simulation {
            arena: SimArena::new(world),
            program: program.clone(),
            routes,
            policy,
        })
    }

    /// Runs to completion, deadlock, or the cycle limit.
    #[must_use]
    pub fn run(mut self) -> RunOutcome {
        self.arena
            .run_with_routes(&self.program, &self.routes, self.policy.as_mut())
    }
}

/// Convenience wrapper: build and run in one call.
///
/// # Errors
///
/// Propagates [`Simulation::new`] errors.
pub fn run_simulation(
    program: &Program,
    topology: &Topology,
    policy: Box<dyn AssignmentPolicy>,
    config: SimConfig,
) -> Result<RunOutcome, ModelError> {
    Ok(Simulation::new(program, topology, policy, config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompatiblePolicy, FifoPolicy, GreedyPolicy, StaticPolicy};
    use systolic_core::{AnalysisConfig, Analyzer, Lookahead};
    use systolic_model::parse_program;
    use systolic_workloads as wl;

    fn buffered(queues: usize, capacity: usize) -> SimConfig {
        SimConfig {
            queues_per_interval: queues,
            queue: QueueConfig {
                capacity,
                extension: false,
            },
            ..Default::default()
        }
    }

    fn compatible_policy(
        program: &Program,
        topology: &Topology,
        queues: usize,
        lookahead: Lookahead,
    ) -> Box<dyn AssignmentPolicy> {
        let config = AnalysisConfig {
            queues_per_interval: queues,
            lookahead,
        };
        let plan = Analyzer::for_topology(topology, &config)
            .analyze(program)
            .expect("analysis succeeds")
            .into_plan();
        Box::new(CompatiblePolicy::new(plan))
    }

    #[test]
    fn single_transfer_completes() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let out = run_simulation(
            &p,
            &Topology::linear(2),
            Box::new(GreedyPolicy::new()),
            buffered(1, 1),
        )
        .unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("expected completion")
        };
        assert_eq!(stats.words_delivered, 1);
        assert_eq!(stats.memory_accesses, 0, "systolic model touches no memory");
        assert!(stats.cycles >= 2, "at least one cycle of queue latency");
    }

    #[test]
    fn fig2_fir_completes_with_one_queue_per_direction() {
        // All FIR messages share one label; each interval carries one
        // message per direction, so 2 queues per interval suffice.
        let p = wl::fig2_fir();
        let t = wl::fig2_topology();
        let policy = compatible_policy(&p, &t, 2, Lookahead::Disabled);
        let out = run_simulation(&p, &t, policy, buffered(2, 1)).unwrap();
        assert!(out.is_completed(), "FIR must complete: {out:?}");
        assert_eq!(out.stats().words_delivered, 15);
    }

    #[test]
    fn fig5_p2_deadlocks_on_latches_but_completes_buffered() {
        // P2: both cells write first. With latch queues (capacity 0) the
        // writes never complete (Section 3.2); with 1 word of buffering the
        // run finishes (Section 8 + lookahead classification).
        let p = wl::fig5_p2();
        let t = Topology::linear(2);
        let latch = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 0)).unwrap();
        assert!(latch.is_deadlocked(), "P2 deadlocks on latches");

        let buf = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 1)).unwrap();
        assert!(buf.is_completed(), "P2 completes with buffering");
    }

    #[test]
    fn fig5_p1_needs_two_words_of_buffering_and_two_queues() {
        let p = wl::fig5_p1();
        let t = Topology::linear(2);
        // Capacity 1: deadlocked (C1 blocks on its second W(A)).
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 1)).unwrap();
        assert!(out.is_deadlocked());
        // Capacity 2, separate queues for A and B: completes (Fig. 10).
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(2, 2)).unwrap();
        assert!(out.is_completed());
        // Capacity 2 but a single queue: A fills it and B can never pass.
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(1, 2)).unwrap();
        assert!(out.is_deadlocked());
    }

    #[test]
    fn fig5_p3_deadlocks_no_matter_what() {
        let p = wl::fig5_p3();
        let t = Topology::linear(2);
        for (queues, cap) in [(1, 0), (2, 1), (4, 16)] {
            let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(queues, cap))
                .unwrap();
            assert!(
                out.is_deadlocked(),
                "P3 must deadlock with {queues} queues cap {cap}"
            );
        }
    }

    #[test]
    fn fig6_cycle_completes() {
        let p = wl::fig6_cycle();
        let t = wl::fig6_topology();
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(1, 1)).unwrap();
        assert!(
            out.is_completed(),
            "message cycles are not deadlocks: {out:?}"
        );
    }

    #[test]
    fn fig7_fifo_deadlocks_compatible_completes() {
        let p = wl::fig7(3);
        let t = wl::fig7_topology();
        let naive = run_simulation(&p, &t, Box::new(FifoPolicy::new()), buffered(1, 1)).unwrap();
        let RunOutcome::Deadlocked { report, .. } = naive else {
            panic!("fifo policy must deadlock on Fig. 7")
        };
        // The deadlock is queue-induced: someone waits for an assignment.
        assert!(!report.assignment_waiters().is_empty(), "{report}");

        let policy = compatible_policy(&p, &t, 1, Lookahead::Disabled);
        let safe = run_simulation(&p, &t, policy, buffered(1, 1)).unwrap();
        assert!(
            safe.is_completed(),
            "compatible assignment completes Fig. 7"
        );
    }

    #[test]
    fn fig8_one_queue_deadlocks_two_complete() {
        let p = wl::fig8();
        let t = wl::fig8_topology();
        let one = run_simulation(&p, &t, Box::new(FifoPolicy::new()), buffered(1, 1)).unwrap();
        assert!(one.is_deadlocked(), "Fig. 8 with one queue deadlocks");

        // Two queues: even the naive policies complete.
        for policy in [
            Box::new(FifoPolicy::new()) as Box<dyn AssignmentPolicy>,
            Box::new(GreedyPolicy::new()),
        ] {
            let out = run_simulation(&p, &t, policy, buffered(2, 1)).unwrap();
            assert!(out.is_completed(), "Fig. 8 with two queues completes");
        }
        // And the compatible policy (which reserves both queues at once).
        let policy = compatible_policy(&p, &t, 2, Lookahead::Disabled);
        let out = run_simulation(&p, &t, policy, buffered(2, 1)).unwrap();
        assert!(out.is_completed());
    }

    #[test]
    fn fig9_one_queue_deadlocks_static_two_completes() {
        let p = wl::fig9();
        let t = wl::fig9_topology();
        let one = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), buffered(1, 1)).unwrap();
        assert!(one.is_deadlocked(), "Fig. 9 with one queue deadlocks");

        // Paper: two queues, A and B statically separated => no deadlock.
        let config = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(&t, &config)
            .analyze(&p)
            .unwrap()
            .into_plan();
        let static_policy = StaticPolicy::new(&plan, 2).unwrap();
        let out = run_simulation(&p, &t, Box::new(static_policy), buffered(2, 1)).unwrap();
        assert!(out.is_completed());
    }

    #[test]
    fn mem2mem_costs_four_accesses_per_updated_word() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*4 }\nprogram c1 { R(A)*4 }\n",
        )
        .unwrap();
        let config = SimConfig {
            cost: CostModel::memory_to_memory(),
            ..buffered(1, 1)
        };
        let out = run_simulation(
            &p,
            &Topology::linear(2),
            Box::new(GreedyPolicy::new()),
            config,
        )
        .unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("expected completion")
        };
        // 4 words x (2 accesses on write + 2 on read).
        assert_eq!(stats.memory_accesses, 16);
        assert_eq!(stats.accesses_per_word(), 4.0);

        let systolic = run_simulation(
            &p,
            &Topology::linear(2),
            Box::new(GreedyPolicy::new()),
            buffered(1, 1),
        )
        .unwrap();
        assert_eq!(systolic.stats().memory_accesses, 0);
        assert!(
            systolic.stats().cycles < stats.cycles,
            "systolic is faster: {} vs {}",
            systolic.stats().cycles,
            stats.cycles
        );
    }

    #[test]
    fn queue_extension_rescues_p1_with_small_queues() {
        // P1 needs 2 words of buffering; with capacity 1 + extension the
        // overflow spills to memory and the run completes (Section 8.1's
        // queue-extension mechanism), at a measurable spill cost.
        let p = wl::fig5_p1();
        let t = Topology::linear(2);
        let config = SimConfig {
            queues_per_interval: 2,
            queue: QueueConfig {
                capacity: 1,
                extension: true,
            },
            ..Default::default()
        };
        let out = run_simulation(&p, &t, Box::new(GreedyPolicy::new()), config).unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("expected completion: {out:?}")
        };
        assert!(stats.spill_accesses > 0, "extension must have been used");
    }

    #[test]
    fn multi_hop_message_is_forwarded() {
        let p = parse_program(
            "cells 4\nmessage A: c0 -> c3\nprogram c0 { W(A)*2 }\nprogram c3 { R(A)*2 }\n\
             program c1 { }\nprogram c2 { }\n",
        )
        .unwrap();
        let out = run_simulation(
            &p,
            &Topology::linear(4),
            Box::new(GreedyPolicy::new()),
            buffered(1, 1),
        )
        .unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("expected completion")
        };
        // 2 words x 2 intermediate hops.
        assert_eq!(stats.words_forwarded, 4);
        assert_eq!(stats.words_delivered, 2);
    }

    #[test]
    fn cycle_limit_is_reported() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*100 }\nprogram c1 { R(A)*100 }\n",
        )
        .unwrap();
        let config = SimConfig {
            max_cycles: 5,
            ..buffered(1, 1)
        };
        let out = run_simulation(
            &p,
            &Topology::linear(2),
            Box::new(GreedyPolicy::new()),
            config,
        )
        .unwrap();
        assert!(matches!(out, RunOutcome::CycleLimit(_)));
    }

    #[test]
    fn deadlock_report_names_holder_and_waiter() {
        let p = wl::fig7(2);
        let t = wl::fig7_topology();
        let out = run_simulation(&p, &t, Box::new(FifoPolicy::new()), buffered(1, 1)).unwrap();
        let RunOutcome::Deadlocked { report, .. } = out else {
            panic!("must deadlock")
        };
        let text = report.to_string();
        assert!(text.contains("held by"), "{text}");
        assert!(text.contains("waiting for a queue"), "{text}");
    }

    #[test]
    fn blocked_and_busy_cycles_are_tracked() {
        let p = wl::fig7(3);
        let t = wl::fig7_topology();
        let policy = compatible_policy(&p, &t, 1, Lookahead::Disabled);
        let out = run_simulation(&p, &t, policy, buffered(1, 1)).unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("expected completion")
        };
        // c4 (reader of C then B) must have been blocked at some point while
        // C crossed three intervals.
        assert!(stats.total_blocked() > 0);
        assert!(stats.busy(CellId::new(3)) > 0);
        assert!(
            stats.grants >= 5,
            "A, B and C each secure queues along their routes"
        );
    }

    #[test]
    fn empty_program_completes_immediately() {
        let p = systolic_model::ProgramBuilder::new(3).build().unwrap();
        let out = run_simulation(
            &p,
            &Topology::linear(3),
            Box::new(GreedyPolicy::new()),
            buffered(1, 1),
        )
        .unwrap();
        let RunOutcome::Completed(stats) = out else {
            panic!("expected completion")
        };
        assert_eq!(stats.words_delivered, 0);
    }

    #[test]
    fn workload_generators_run_to_completion() {
        // A smoke sweep: every generator's output completes under the
        // compatible policy with generous queues.
        let cases: Vec<(Program, Topology)> = vec![
            (wl::fir(4, 8).unwrap(), wl::fir_topology(4)),
            (wl::matvec(4).unwrap(), wl::matvec_topology(4)),
            (wl::odd_even_sort(4, 4).unwrap(), wl::sort_topology(4)),
            (wl::seq_align(3, 4).unwrap(), wl::seq_align_topology(3)),
            (wl::horner(3, 3).unwrap(), wl::horner_topology(3)),
            (wl::token_ring(4, 2).unwrap(), wl::ring_topology(4)),
            (wl::mesh_matmul(2, 3, 3).unwrap(), wl::matmul_topology(2, 3)),
            (
                wl::wavefront(3, 3, 2).unwrap(),
                wl::wavefront_topology(3, 3),
            ),
        ];
        for (program, topology) in cases {
            let config = AnalysisConfig {
                queues_per_interval: 8,
                ..Default::default()
            };
            let analysis = Analyzer::for_topology(&topology, &config)
                .analyze(&program)
                .expect("workloads are deadlock-free");
            let policy = Box::new(CompatiblePolicy::new(analysis.into_plan()));
            let out = run_simulation(&program, &topology, policy, buffered(8, 2)).unwrap();
            assert!(out.is_completed(), "workload failed: {out:?}");
        }
    }
}

#[cfg(test)]
mod arena_tests {
    use super::*;
    use crate::{CompatiblePolicy, GreedyPolicy};
    use systolic_core::{AnalysisConfig, Analyzer};
    use systolic_model::parse_program;
    use systolic_workloads as wl;

    /// Replaying through one arena must be bit-identical to fresh
    /// one-shot simulations — for completions and for deadlocks.
    #[test]
    fn arena_replays_match_one_shot_runs() {
        let cases: Vec<(Program, Topology, usize)> = vec![
            (wl::fig7(3), wl::fig7_topology(), 1),
            (wl::fig7(2), wl::fig7_topology(), 1),
            (wl::fig7(5), wl::fig7_topology(), 1),
        ];
        let config = SimConfig::default();
        let mut arena = SimArena::from_topology(&wl::fig7_topology(), config);
        for (program, topology, queues) in cases {
            let a_config = AnalysisConfig {
                queues_per_interval: queues,
                ..Default::default()
            };
            let plan = Analyzer::for_topology(&topology, &a_config)
                .analyze(&program)
                .unwrap()
                .into_plan();
            let mut policy = CompatiblePolicy::new(plan.clone());
            let arena_out = arena.run(&program, &mut policy).unwrap();
            let fresh_out = run_simulation(
                &program,
                &topology,
                Box::new(CompatiblePolicy::new(plan)),
                config,
            )
            .unwrap();
            assert_eq!(arena_out.is_completed(), fresh_out.is_completed());
            assert_eq!(arena_out.stats().cycles, fresh_out.stats().cycles);
            assert_eq!(
                arena_out.stats().words_delivered,
                fresh_out.stats().words_delivered
            );
            assert_eq!(arena_out.stats().grants, fresh_out.stats().grants);
        }
    }

    /// Stateful policies reset with the arena: a FIFO policy reused across
    /// replays must not carry a deadlocked run's arrival lines into the
    /// next run (its stale entries would grab queues for messages that
    /// never requested them).
    #[test]
    fn stateful_policy_resets_between_replays() {
        use crate::FifoPolicy;
        let t = Topology::linear(2);
        let mut arena = SimArena::from_topology(
            &t,
            SimConfig {
                queues_per_interval: 1,
                ..Default::default()
            },
        );
        let mut fifo = FifoPolicy::new();
        // P1 deadlocks with 1 queue, leaving requests waiting in the line.
        let out = arena.run(&wl::fig5_p1(), &mut fifo).unwrap();
        assert!(out.is_deadlocked());
        // A fresh transfer through the same (reused) policy must complete.
        let ok = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let out = arena.run(&ok, &mut fifo).unwrap();
        assert!(
            out.is_completed(),
            "stale FIFO lines leaked into the replay: {out:?}"
        );
    }

    /// A deadlocked replay must not poison later replays in the same
    /// arena: the reset clears queues, assignments and history.
    #[test]
    fn deadlocked_replay_does_not_poison_the_arena() {
        let t = Topology::linear(2);
        let mut arena = SimArena::from_topology(
            &t,
            SimConfig {
                queues_per_interval: 2,
                ..Default::default()
            },
        );
        let mut greedy = GreedyPolicy::new();
        let p3 = wl::fig5_p3();
        let out = arena.run(&p3, &mut greedy).unwrap();
        assert!(out.is_deadlocked(), "P3 deadlocks");

        let ok = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let out = arena.run(&ok, &mut greedy).unwrap();
        assert!(
            out.is_completed(),
            "arena is clean after a deadlock: {out:?}"
        );
        assert_eq!(out.stats().words_delivered, 1);
    }

    /// `ensure_queues` grows the pool between replays; runs needing fewer
    /// queues are unaffected by the larger pool under the compatible
    /// policy (it only draws from its per-direction ranges).
    #[test]
    fn ensure_queues_grows_between_replays() {
        let t = wl::fig9_topology();
        let p = wl::fig9();
        let mut arena = SimArena::from_topology(&t, SimConfig::default());
        let config = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        let plan = Analyzer::for_topology(&t, &config)
            .analyze(&p)
            .unwrap()
            .into_plan();
        arena.ensure_queues(plan.requirements().max_per_interval());
        let mut policy = CompatiblePolicy::new(plan);
        let out = arena.run(&p, &mut policy).unwrap();
        assert!(out.is_completed(), "{out:?}");
    }

    /// Worlds built from a `CompiledTopology` route from the closure and
    /// behave identically to plain worlds.
    #[test]
    fn compiled_world_matches_plain_world() {
        let t = wl::fig7_topology();
        let p = wl::fig7(4);
        let plan = Analyzer::for_topology(&t, &AnalysisConfig::default())
            .analyze(&p)
            .unwrap()
            .into_plan();
        let compiled = CompiledTopology::compile(&t, &AnalysisConfig::default()).into_shared();
        let mut plain = SimArena::from_topology(&t, SimConfig::default());
        let mut via_compiled = SimArena::from_compiled(compiled, SimConfig::default());
        let mut policy_a = CompatiblePolicy::new(plan.clone());
        let mut policy_b = CompatiblePolicy::new(plan);
        let a = plain.run(&p, &mut policy_a).unwrap();
        let b = via_compiled.run(&p, &mut policy_b).unwrap();
        assert_eq!(a.stats().cycles, b.stats().cycles);
        assert_eq!(a.stats().words_delivered, b.stats().words_delivered);
    }

    #[test]
    fn run_rejects_cell_count_mismatch() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let mut arena = SimArena::from_topology(&Topology::linear(3), SimConfig::default());
        let mut policy = GreedyPolicy::new();
        assert!(matches!(
            arena.run(&p, &mut policy),
            Err(ModelError::CellCountMismatch { .. })
        ));
    }
}
