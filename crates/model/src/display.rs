//! Paper-style rendering helpers: cell programs side by side, as in the
//! figures of the paper.

use crate::{CellId, Program};

/// Serializes a program to the text format accepted by
/// [`parse_program`](crate::parse_program), so programs round-trip:
/// `parse_program(&program_to_text(&p))? == p`.
///
/// This losslessness is a *stability contract*, not a convenience: the
/// binary codec in `systolic_core` and the daemon's snapshot tier persist
/// programs (and topologies, via [`Topology::spec`](crate::Topology::spec)
/// / [`Topology::from_spec`](crate::Topology::from_spec)) as this text, so
/// any change to either side that breaks the round-trip silently corrupts
/// warm-start snapshots. The contract is locked by
/// `text_roundtrip_is_a_stable_snapshot_contract` in this module's tests.
///
/// # Examples
///
/// ```
/// use systolic_model::{parse_program, program_to_text};
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let p = parse_program(
///     "cells 2\n\
///      message A: c0 -> c1\n\
///      program c0 { W(A)*2 }\n\
///      program c1 { R(A) R(A) }\n",
/// )?;
/// let text = program_to_text(&p);
/// assert_eq!(parse_program(&text)?, p);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn program_to_text(program: &Program) -> String {
    let mut out = String::from("cells");
    for cell in program.cell_ids() {
        out.push(' ');
        out.push_str(program.cell_name(cell));
    }
    out.push('\n');
    for decl in program.messages() {
        out.push_str(&format!(
            "message {}: {} -> {}\n",
            decl.name(),
            program.cell_name(decl.sender()),
            program.cell_name(decl.receiver()),
        ));
    }
    for cell in program.cell_ids() {
        out.push_str(&format!("program {} {{", program.cell_name(cell)));
        for op in program.cell(cell).iter() {
            out.push_str(&format!(
                " {}({})",
                op.kind(),
                program.message(op.message()).name()
            ));
        }
        out.push_str(" }\n");
    }
    out
}

/// Renders the cell programs in side-by-side columns, one row per step,
/// like Figs. 2 and 5 of the paper.
///
/// # Examples
///
/// ```
/// use systolic_model::{parse_program, side_by_side};
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let p = parse_program(
///     "cells 2\n\
///      message A: c0 -> c1\n\
///      program c0 { W(A) }\n\
///      program c1 { R(A) }\n",
/// )?;
/// let table = side_by_side(&p);
/// assert!(table.contains("c0"));
/// assert!(table.contains("W(A)"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn side_by_side(program: &Program) -> String {
    let num_cells = program.num_cells();
    let rows = program.cells().iter().map(|cp| cp.len()).max().unwrap_or(0);

    // Render every op with the message's *name*, as the paper does.
    let rendered: Vec<Vec<String>> = program
        .cells()
        .iter()
        .map(|cp| {
            cp.iter()
                .map(|op| format!("{}({})", op.kind(), program.message(op.message()).name()))
                .collect()
        })
        .collect();

    let mut widths: Vec<usize> = (0..num_cells)
        .map(|i| {
            let header = program.cell_name(CellId::new(i as u32)).len();
            rendered[i]
                .iter()
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max(header)
        })
        .collect();
    for w in &mut widths {
        *w += 2;
    }

    let mut out = String::new();
    for (i, &width) in widths.iter().enumerate().take(num_cells) {
        let name = program.cell_name(CellId::new(i as u32));
        out.push_str(&format!("{name:<width$}"));
    }
    out.push('\n');
    for &width in widths.iter().take(num_cells) {
        out.push_str(&format!("{:-<width$}", "", width = width.saturating_sub(2)));
        out.push_str("  ");
    }
    out.push('\n');
    for row in 0..rows {
        for i in 0..num_cells {
            let cell_text = rendered[i].get(row).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{cell_text:<width$}", width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn renders_column_per_cell() {
        let p = parse_program(
            "cells c0 c1\n\
             message A: c0 -> c1\n\
             program c0 { W(A) W(A) }\n\
             program c1 { R(A) R(A) }\n",
        )
        .unwrap();
        let s = side_by_side(&p);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("c0") && lines[0].contains("c1"));
        // two header lines + two op rows
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("W(A)") && lines[2].contains("R(A)"));
    }

    #[test]
    fn uneven_cell_lengths_pad_with_blanks() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             program c0 { W(A) W(A) W(A) }\n\
             program c1 { R(A)*3 }\n",
        )
        .unwrap();
        let s = side_by_side(&p);
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn empty_program_renders_headers_only() {
        let p = parse_program("cells 2\n").unwrap();
        let s = side_by_side(&p);
        assert_eq!(s.lines().count(), 2);
    }
}

#[cfg(test)]
mod serialize_tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn roundtrips_named_cells_and_multiline_programs() {
        let p = parse_program(
            "cells host c1 c2\n\
             message XA: host -> c1\n\
             message YA: c1 -> host\n\
             message XB: c1 -> c2\n\
             program host { W(XA) W(XA) R(YA) }\n\
             program c1 { R(XA) W(XB) R(XA) W(YA) }\n\
             program c2 { R(XB) }\n",
        )
        .unwrap();
        let text = program_to_text(&p);
        assert_eq!(parse_program(&text).unwrap(), p);
    }

    #[test]
    fn roundtrips_empty_cells() {
        let p = parse_program(
            "cells 3\nmessage A: c0 -> c2\nprogram c0 { W(A) }\nprogram c2 { R(A) }\n",
        )
        .unwrap();
        let text = program_to_text(&p);
        assert_eq!(parse_program(&text).unwrap(), p);
        assert!(text.contains("program c1 { }"));
    }

    /// The snapshot tier persists programs as `program_to_text` output and
    /// topologies as `Topology::spec` strings. Both round-trips must stay
    /// lossless — including fingerprints, which is what snapshot load uses
    /// to verify a re-seeded entry — or saved snapshots stop warming
    /// restarted daemons.
    #[test]
    fn text_roundtrip_is_a_stable_snapshot_contract() {
        use crate::{CanonicalHash, Topology};

        let p = parse_program(
            "cells sender relay receiver\n\
             message UP: sender -> receiver\n\
             message DOWN: receiver -> sender\n\
             program sender { W(UP)*3 R(DOWN) }\n\
             program relay { }\n\
             program receiver { R(UP) R(UP) R(UP) W(DOWN) }\n",
        )
        .unwrap();
        let reparsed = parse_program(&program_to_text(&p)).unwrap();
        assert_eq!(reparsed, p);
        assert_eq!(
            reparsed.content_hash(),
            p.content_hash(),
            "text round-trip must preserve the content fingerprint"
        );

        for topology in [Topology::ring(4), Topology::mesh(3, 5), Topology::ring(3)] {
            let respec = Topology::from_spec(&topology.spec()).unwrap();
            assert_eq!(respec, topology);
            assert_eq!(respec.content_hash(), topology.content_hash());
        }
    }
}
