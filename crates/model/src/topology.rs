//! Interconnection topologies.
//!
//! The paper's examples use 1-dimensional arrays, but its results "apply to
//! arrays of higher dimensionalities and other distributed computing systems
//! using any interconnection topology" (Section 2.1). This module provides
//! linear arrays, rings, 2-D meshes, 2-D tori and arbitrary graphs.
//!
//! Adjacency lists and the interval list are precomputed at construction,
//! so the hot routing/analysis paths ([`Topology::neighbors`],
//! [`Topology::intervals`]) are allocation-free slice reads.

use std::collections::VecDeque;

use crate::{CellId, Interval, ModelError};

#[derive(Clone, PartialEq, Eq, Debug)]
enum Kind {
    Linear { n: usize },
    Ring { n: usize },
    Mesh2D { rows: usize, cols: usize },
    Torus { rows: usize, cols: usize },
    Graph { n: usize },
}

/// The largest cell count [`Topology::from_spec`] accepts. Wire-facing
/// only: the programmatic constructors are not limited.
pub const MAX_SPEC_CELLS: usize = 1 << 20;

/// An interconnection topology: which cells are adjacent (share an interval).
///
/// # Examples
///
/// ```
/// use systolic_model::{CellId, Topology};
/// let t = Topology::linear(4);
/// assert_eq!(t.num_cells(), 4);
/// assert!(t.is_adjacent(CellId::new(1), CellId::new(2)));
/// assert!(!t.is_adjacent(CellId::new(0), CellId::new(2)));
/// assert_eq!(t.intervals().len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    kind: Kind,
    /// Sorted neighbour list per cell, fixed at construction.
    adjacency: Vec<Vec<CellId>>,
    /// All intervals, sorted, fixed at construction.
    intervals: Vec<Interval>,
}

impl Topology {
    /// A 1-dimensional array of `n` cells: cell `i` is adjacent to `i±1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn linear(n: usize) -> Self {
        assert!(n > 0, "an array needs at least one cell");
        let adjacency = (0..n)
            .map(|i| {
                let mut list = Vec::with_capacity(2);
                if i > 0 {
                    list.push(CellId::new((i - 1) as u32));
                }
                if i + 1 < n {
                    list.push(CellId::new((i + 1) as u32));
                }
                list
            })
            .collect();
        Self::with_adjacency(Kind::Linear { n }, adjacency)
    }

    /// A ring of `n` cells: like linear, plus cell `n-1` adjacent to cell 0.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (smaller rings degenerate).
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least three cells");
        let adjacency = (0..n)
            .map(|i| {
                let mut list = vec![
                    CellId::new(((i + n - 1) % n) as u32),
                    CellId::new(((i + 1) % n) as u32),
                ];
                list.sort_unstable();
                list
            })
            .collect();
        Self::with_adjacency(Kind::Ring { n }, adjacency)
    }

    /// A `rows × cols` 2-D mesh; cell `(r, c)` has id `r * cols + c`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn mesh(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        let adjacency = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                let mut list = Vec::with_capacity(4);
                if r > 0 {
                    list.push(CellId::new(((r - 1) * cols + c) as u32));
                }
                if c > 0 {
                    list.push(CellId::new((r * cols + c - 1) as u32));
                }
                if c + 1 < cols {
                    list.push(CellId::new((r * cols + c + 1) as u32));
                }
                if r + 1 < rows {
                    list.push(CellId::new(((r + 1) * cols + c) as u32));
                }
                list
            })
            .collect();
        Self::with_adjacency(Kind::Mesh2D { rows, cols }, adjacency)
    }

    /// A `rows × cols` 2-D torus: a mesh whose rows and columns wrap
    /// around, so every cell has the same degree. Cell `(r, c)` has id
    /// `r * cols + c`, exactly as for [`Topology::mesh`].
    ///
    /// Degenerate dimensions are handled structurally: a dimension of size
    /// 1 contributes no links, and a dimension of size 2 contributes one
    /// (the wrap link coincides with the direct link and is merged).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "torus dimensions must be positive");
        let adjacency = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                let mut list = Vec::with_capacity(4);
                if rows > 1 {
                    list.push(CellId::new((((r + rows - 1) % rows) * cols + c) as u32));
                    list.push(CellId::new((((r + 1) % rows) * cols + c) as u32));
                }
                if cols > 1 {
                    list.push(CellId::new((r * cols + (c + cols - 1) % cols) as u32));
                    list.push(CellId::new((r * cols + (c + 1) % cols) as u32));
                }
                list.sort_unstable();
                list.dedup();
                list
            })
            .collect();
        Self::with_adjacency(Kind::Torus { rows, cols }, adjacency)
    }

    /// An arbitrary undirected graph over `n` cells.
    ///
    /// Duplicate edges are merged; adjacency lists are kept sorted so routing
    /// is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CellOutOfRange`] if an edge endpoint is `>= n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn graph(
        n: usize,
        edges: impl IntoIterator<Item = (CellId, CellId)>,
    ) -> Result<Self, ModelError> {
        assert!(n > 0, "an array needs at least one cell");
        let mut adjacency = vec![Vec::new(); n];
        for (a, b) in edges {
            for cell in [a, b] {
                if cell.index() >= n {
                    return Err(ModelError::CellOutOfRange { cell, num_cells: n });
                }
            }
            // Interval::new panics on self-loops, which is the right
            // behaviour: a cell is not adjacent to itself.
            let iv = Interval::new(a, b);
            if !adjacency[iv.lo().index()].contains(&iv.hi()) {
                adjacency[iv.lo().index()].push(iv.hi());
                adjacency[iv.hi().index()].push(iv.lo());
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Ok(Self::with_adjacency(Kind::Graph { n }, adjacency))
    }

    fn with_adjacency(kind: Kind, adjacency: Vec<Vec<CellId>>) -> Self {
        let mut intervals = Vec::new();
        for (i, list) in adjacency.iter().enumerate() {
            let a = CellId::new(i as u32);
            for &b in list {
                if a < b {
                    intervals.push(Interval::new(a, b));
                }
            }
        }
        intervals.sort_unstable();
        Topology {
            kind,
            adjacency,
            intervals,
        }
    }

    /// Parses a compact topology specification string, the inverse of
    /// [`Topology::spec`]. Used by the `systolicd` JSONL front end so a
    /// request can name its topology in one field.
    ///
    /// Formats: `linear:N`, `ring:N`, `mesh:RxC`, `torus:RxC`, and
    /// `graph:N:a-b,c-d,...` (the edge list may be empty: `graph:N:`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SpecParse`] for malformed specs, naming the
    /// offending token and its byte offset within the spec, and
    /// [`ModelError::CellOutOfRange`] for graph edges out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use systolic_model::{ModelError, Topology};
    ///
    /// # fn main() -> Result<(), systolic_model::ModelError> {
    /// let t = Topology::from_spec("mesh:2x3")?;
    /// assert_eq!(t.num_cells(), 6);
    /// assert_eq!(Topology::from_spec(&t.spec())?, t);
    ///
    /// // Errors pinpoint the offending token:
    /// let err = Topology::from_spec("mesh:2xq").unwrap_err();
    /// assert!(matches!(
    ///     err,
    ///     ModelError::SpecParse { ref token, offset: 7, .. } if token == "q"
    /// ));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_spec(spec: &str) -> Result<Self, ModelError> {
        // Every token handed to `bad` is a subslice of `spec`, so pointer
        // arithmetic recovers its byte offset without threading indices
        // through the parse.
        let bad = |token: &str, message: String| ModelError::SpecParse {
            token: token.to_owned(),
            offset: (token.as_ptr() as usize).saturating_sub(spec.as_ptr() as usize),
            message,
        };
        let parse_count = |s: &str, what: &str| -> Result<usize, ModelError> {
            let n: usize = s.parse().map_err(|_| bad(s, format!("invalid {what}")))?;
            if n == 0 {
                return Err(bad(s, format!("{what} must be positive")));
            }
            // Specs arrive over the wire from untrusted clients, and the
            // constructors allocate O(cells) adjacency eagerly — bound the
            // size here so a single request line cannot abort the process.
            if n > MAX_SPEC_CELLS {
                return Err(bad(
                    s,
                    format!("{what} {n} exceeds the spec limit of {MAX_SPEC_CELLS} cells"),
                ));
            }
            Ok(n)
        };
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| bad(spec, "topology spec has no `:`".into()))?;
        match kind {
            "linear" => Ok(Topology::linear(parse_count(rest, "cell count")?)),
            "ring" => {
                let n = parse_count(rest, "cell count")?;
                if n < 3 {
                    return Err(bad(rest, "a ring needs at least three cells".into()));
                }
                Ok(Topology::ring(n))
            }
            "mesh" | "torus" => {
                let (r, c) = rest
                    .split_once('x')
                    .ok_or_else(|| bad(rest, format!("{kind} spec is not RxC")))?;
                let rows = parse_count(r, "row count")?;
                let cols = parse_count(c, "column count")?;
                match rows.checked_mul(cols) {
                    Some(n) if n <= MAX_SPEC_CELLS => Ok(if kind == "mesh" {
                        Topology::mesh(rows, cols)
                    } else {
                        Topology::torus(rows, cols)
                    }),
                    _ => Err(bad(
                        rest,
                        format!(
                            "{kind} {rows}x{cols} exceeds the spec limit of {MAX_SPEC_CELLS} cells"
                        ),
                    )),
                }
            }
            "graph" => {
                let (n, edges) = rest
                    .split_once(':')
                    .ok_or_else(|| bad(rest, "graph spec is not N:edges".into()))?;
                let n = parse_count(n, "cell count")?;
                let mut parsed = Vec::new();
                for edge in edges.split(',').filter(|e| !e.is_empty()) {
                    let (a, b) = edge
                        .split_once('-')
                        .ok_or_else(|| bad(edge, "graph edge is not a-b".into()))?;
                    let a: u32 = a
                        .parse()
                        .map_err(|_| bad(a, "invalid cell in graph edge".into()))?;
                    let b: u32 = b
                        .parse()
                        .map_err(|_| bad(b, "invalid cell in graph edge".into()))?;
                    if a == b {
                        return Err(bad(edge, "graph edge is a self-loop".into()));
                    }
                    parsed.push((CellId::new(a), CellId::new(b)));
                }
                Topology::graph(n, parsed)
            }
            other => Err(bad(other, "unknown topology kind".into())),
        }
    }

    /// Serializes this topology as a spec string accepted by
    /// [`Topology::from_spec`], so `Topology::from_spec(&t.spec())? == t`.
    #[must_use]
    pub fn spec(&self) -> String {
        match &self.kind {
            Kind::Linear { n } => format!("linear:{n}"),
            Kind::Ring { n } => format!("ring:{n}"),
            Kind::Mesh2D { rows, cols } => format!("mesh:{rows}x{cols}"),
            Kind::Torus { rows, cols } => format!("torus:{rows}x{cols}"),
            Kind::Graph { n } => {
                let edges: Vec<String> = self
                    .intervals
                    .iter()
                    .map(|iv| format!("{}-{}", iv.lo().index(), iv.hi().index()))
                    .collect();
                format!("graph:{n}:{}", edges.join(","))
            }
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        match &self.kind {
            Kind::Linear { n } | Kind::Ring { n } | Kind::Graph { n } => *n,
            Kind::Mesh2D { rows, cols } | Kind::Torus { rows, cols } => rows * cols,
        }
    }

    /// For meshes and tori, the `(row, col)` of a cell; `None` for other
    /// topologies.
    #[must_use]
    pub fn mesh_coords(&self, cell: CellId) -> Option<(usize, usize)> {
        match &self.kind {
            Kind::Mesh2D { cols, .. } | Kind::Torus { cols, .. } => {
                Some((cell.index() / cols, cell.index() % cols))
            }
            _ => None,
        }
    }

    /// `true` if the two cells share an interval.
    #[must_use]
    pub fn is_adjacent(&self, a: CellId, b: CellId) -> bool {
        if a == b {
            return false;
        }
        match &self.kind {
            Kind::Linear { n } => {
                a.index() < *n && b.index() < *n && a.index().abs_diff(b.index()) == 1
            }
            Kind::Ring { n } => {
                let (i, j) = (a.index(), b.index());
                i < *n && j < *n && (i.abs_diff(j) == 1 || i.abs_diff(j) == *n - 1)
            }
            Kind::Mesh2D { rows, cols } => {
                let n = rows * cols;
                if a.index() >= n || b.index() >= n {
                    return false;
                }
                let (ra, ca) = (a.index() / cols, a.index() % cols);
                let (rb, cb) = (b.index() / cols, b.index() % cols);
                ra.abs_diff(rb) + ca.abs_diff(cb) == 1
            }
            // Wraparound plus degenerate-dimension merging make a closed
            // form fiddly; the precomputed (sorted) adjacency is exact.
            Kind::Torus { .. } | Kind::Graph { .. } => self
                .adjacency
                .get(a.index())
                .is_some_and(|list| list.binary_search(&b).is_ok()),
        }
    }

    /// The sorted neighbours of `cell`, precomputed at construction.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn neighbors(&self, cell: CellId) -> &[CellId] {
        &self.adjacency[cell.index()]
    }

    /// All intervals (adjacent-cell links), sorted, precomputed at
    /// construction.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The cell path of the minimum-length route from `from` to `to`,
    /// including both endpoints.
    ///
    /// Routing is deterministic:
    /// * **linear** — the unique path;
    /// * **ring** — the shorter way round; ties broken in the direction of
    ///   increasing cell index;
    /// * **mesh** — XY (column-first, then row) dimension-ordered routing,
    ///   the standard deadlock-conscious choice for meshes;
    /// * **torus** — XY dimension-ordered routing where each dimension
    ///   goes the shorter way around its ring; ties broken in the
    ///   direction of increasing index (as for rings);
    /// * **graph** — breadth-first shortest path with lowest-id tie-breaks.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellOutOfRange`] if an endpoint does not exist;
    /// * [`ModelError::NoRoute`] if the graph is disconnected between the
    ///   endpoints (or `from == to`).
    pub fn route_cells(&self, from: CellId, to: CellId) -> Result<Vec<CellId>, ModelError> {
        let n = self.num_cells();
        for cell in [from, to] {
            if cell.index() >= n {
                return Err(ModelError::CellOutOfRange { cell, num_cells: n });
            }
        }
        if from == to {
            return Err(ModelError::NoRoute { from, to });
        }
        match &self.kind {
            Kind::Linear { .. } => {
                let (i, j) = (from.index(), to.index());
                let path: Vec<CellId> = if i < j {
                    (i..=j).map(|k| CellId::new(k as u32)).collect()
                } else {
                    (j..=i).rev().map(|k| CellId::new(k as u32)).collect()
                };
                Ok(path)
            }
            Kind::Ring { n } => {
                let (i, j) = (from.index(), to.index());
                let fwd = (j + n - i) % n; // hops going in +1 direction
                let bwd = n - fwd;
                let step_fwd = fwd <= bwd; // tie => increasing direction
                let hops = if step_fwd { fwd } else { bwd };
                let mut path = Vec::with_capacity(hops + 1);
                let mut cur = i;
                path.push(CellId::new(cur as u32));
                for _ in 0..hops {
                    cur = if step_fwd {
                        (cur + 1) % n
                    } else {
                        (cur + n - 1) % n
                    };
                    path.push(CellId::new(cur as u32));
                }
                Ok(path)
            }
            Kind::Mesh2D { cols, .. } => {
                let (mut r, mut c) = (from.index() / cols, from.index() % cols);
                let (tr, tc) = (to.index() / cols, to.index() % cols);
                let mut path = vec![from];
                while c != tc {
                    c = if c < tc { c + 1 } else { c - 1 };
                    path.push(CellId::new((r * cols + c) as u32));
                }
                while r != tr {
                    r = if r < tr { r + 1 } else { r - 1 };
                    path.push(CellId::new((r * cols + c) as u32));
                }
                Ok(path)
            }
            Kind::Torus { rows, cols } => {
                // XY order like the mesh; each dimension is a ring, routed
                // the shorter way around (tie => increasing index).
                let ring_steps = |cur: usize, target: usize, n: usize| {
                    let fwd = (target + n - cur) % n;
                    let bwd = n - fwd;
                    if fwd <= bwd {
                        (fwd, true)
                    } else {
                        (bwd, false)
                    }
                };
                let (mut r, mut c) = (from.index() / cols, from.index() % cols);
                let (tr, tc) = (to.index() / cols, to.index() % cols);
                let mut path = vec![from];
                if c != tc {
                    let (hops, fwd) = ring_steps(c, tc, *cols);
                    for _ in 0..hops {
                        c = if fwd {
                            (c + 1) % cols
                        } else {
                            (c + cols - 1) % cols
                        };
                        path.push(CellId::new((r * cols + c) as u32));
                    }
                }
                if r != tr {
                    let (hops, fwd) = ring_steps(r, tr, *rows);
                    for _ in 0..hops {
                        r = if fwd {
                            (r + 1) % rows
                        } else {
                            (r + rows - 1) % rows
                        };
                        path.push(CellId::new((r * cols + c) as u32));
                    }
                }
                Ok(path)
            }
            Kind::Graph { .. } => {
                // BFS with lowest-id tie-break (adjacency lists are sorted).
                let adjacency = &self.adjacency;
                let mut prev: Vec<Option<CellId>> = vec![None; n];
                let mut seen = vec![false; n];
                let mut queue = VecDeque::new();
                seen[from.index()] = true;
                queue.push_back(from);
                while let Some(cur) = queue.pop_front() {
                    if cur == to {
                        break;
                    }
                    for &next in &adjacency[cur.index()] {
                        if !seen[next.index()] {
                            seen[next.index()] = true;
                            prev[next.index()] = Some(cur);
                            queue.push_back(next);
                        }
                    }
                }
                if !seen[to.index()] {
                    return Err(ModelError::NoRoute { from, to });
                }
                let mut path = vec![to];
                let mut cur = to;
                while let Some(p) = prev[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                Ok(path)
            }
        }
    }

    /// `true` when [`Topology::route_cells`] performs a graph search (BFS)
    /// rather than closed-form routing — the signal that precomputing a
    /// route closure (`systolic_core::CompiledTopology`) actually saves
    /// work. Linear, ring, mesh and torus routing is arithmetic; only
    /// arbitrary graphs search.
    #[must_use]
    pub fn uses_search_routing(&self) -> bool {
        matches!(self.kind, Kind::Graph { .. })
    }

    /// The minimum-length routes from `from` to every cell: entry `i` is
    /// the cell path to cell `i` (including both endpoints), or `None` for
    /// `from` itself and for unreachable cells.
    ///
    /// The paths are exactly what per-pair [`Topology::route_cells`] calls
    /// would return (same deterministic tie-breaks), but for graph
    /// topologies all `n` destinations share one breadth-first search, so
    /// a full route closure costs `n` traversals instead of `n²`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CellOutOfRange`] if `from` does not exist.
    pub fn routes_from(&self, from: CellId) -> Result<Vec<Option<Vec<CellId>>>, ModelError> {
        let n = self.num_cells();
        if from.index() >= n {
            return Err(ModelError::CellOutOfRange {
                cell: from,
                num_cells: n,
            });
        }
        if let Kind::Graph { .. } = &self.kind {
            // One full BFS; discovery order (and therefore every prev
            // pointer) is identical to the early-stopping BFS in
            // `route_cells`, so reconstructed paths match it exactly.
            let adjacency = &self.adjacency;
            let mut prev: Vec<Option<CellId>> = vec![None; n];
            let mut seen = vec![false; n];
            let mut queue = VecDeque::new();
            seen[from.index()] = true;
            queue.push_back(from);
            while let Some(cur) = queue.pop_front() {
                for &next in &adjacency[cur.index()] {
                    if !seen[next.index()] {
                        seen[next.index()] = true;
                        prev[next.index()] = Some(cur);
                        queue.push_back(next);
                    }
                }
            }
            return Ok((0..n)
                .map(|i| {
                    let to = CellId::new(i as u32);
                    if to == from || !seen[i] {
                        return None;
                    }
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = prev[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    Some(path)
                })
                .collect());
        }
        // Closed-form kinds: every pair is routable, and per-pair routing
        // is already O(path length).
        Ok((0..n)
            .map(|i| {
                let to = CellId::new(i as u32);
                if to == from {
                    None
                } else {
                    self.route_cells(from, to).ok()
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn linear_adjacency_and_intervals() {
        let t = Topology::linear(4);
        assert!(t.is_adjacent(c(0), c(1)));
        assert!(!t.is_adjacent(c(0), c(0)));
        assert!(!t.is_adjacent(c(0), c(3)));
        assert_eq!(t.intervals().len(), 3);
        assert_eq!(t.neighbors(c(1)), vec![c(0), c(2)]);
        assert_eq!(t.neighbors(c(0)), vec![c(1)]);
    }

    #[test]
    fn precomputed_adjacency_matches_is_adjacent() {
        let topologies = vec![
            Topology::linear(5),
            Topology::ring(6),
            Topology::mesh(3, 4),
            Topology::torus(3, 4),
            Topology::torus(2, 3),
            Topology::torus(1, 4),
            Topology::graph(5, [(c(0), c(2)), (c(2), c(4)), (c(1), c(3))]).unwrap(),
        ];
        for t in topologies {
            for i in 0..t.num_cells() as u32 {
                for j in 0..t.num_cells() as u32 {
                    assert_eq!(
                        t.neighbors(c(i)).contains(&c(j)),
                        t.is_adjacent(c(i), c(j)),
                        "adjacency mismatch at ({i}, {j}) in {}",
                        t.spec(),
                    );
                }
                let mut sorted = t.neighbors(c(i)).to_vec();
                sorted.sort_unstable();
                assert_eq!(sorted, t.neighbors(c(i)), "unsorted neighbours of c{i}");
            }
        }
    }

    #[test]
    fn linear_routes_both_directions() {
        let t = Topology::linear(4);
        assert_eq!(
            t.route_cells(c(0), c(3)).unwrap(),
            vec![c(0), c(1), c(2), c(3)]
        );
        assert_eq!(t.route_cells(c(3), c(1)).unwrap(), vec![c(3), c(2), c(1)]);
    }

    #[test]
    fn ring_takes_shorter_way() {
        let t = Topology::ring(5);
        assert!(t.is_adjacent(c(0), c(4)));
        assert_eq!(t.route_cells(c(0), c(4)).unwrap(), vec![c(0), c(4)]);
        assert_eq!(t.route_cells(c(0), c(2)).unwrap(), vec![c(0), c(1), c(2)]);
        // Tie on a 4-ring: 0 -> 2 can go either way; must pick +1 direction.
        let t4 = Topology::ring(4);
        assert_eq!(t4.route_cells(c(0), c(2)).unwrap(), vec![c(0), c(1), c(2)]);
    }

    #[test]
    fn mesh_xy_routing() {
        let t = Topology::mesh(3, 3);
        // (0,0)=0 to (2,2)=8: X first (columns), then Y (rows).
        assert_eq!(
            t.route_cells(c(0), c(8)).unwrap(),
            vec![c(0), c(1), c(2), c(5), c(8)]
        );
        assert_eq!(t.mesh_coords(c(5)), Some((1, 2)));
        assert!(t.is_adjacent(c(4), c(1)));
        assert!(!t.is_adjacent(c(2), c(3))); // row wrap is not adjacency
        assert_eq!(t.intervals().len(), 12);
    }

    #[test]
    fn graph_bfs_shortest_with_tiebreak() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths 0->3; lowest-id goes via 1.
        let t =
            Topology::graph(4, [(c(0), c(1)), (c(0), c(2)), (c(1), c(3)), (c(2), c(3))]).unwrap();
        assert_eq!(t.route_cells(c(0), c(3)).unwrap(), vec![c(0), c(1), c(3)]);
    }

    #[test]
    fn graph_disconnected_errors() {
        let t = Topology::graph(4, [(c(0), c(1)), (c(2), c(3))]).unwrap();
        let err = t.route_cells(c(0), c(3)).unwrap_err();
        assert!(matches!(err, ModelError::NoRoute { .. }));
    }

    #[test]
    fn graph_rejects_bad_edges() {
        let err = Topology::graph(2, [(c(0), c(5))]).unwrap_err();
        assert!(matches!(err, ModelError::CellOutOfRange { .. }));
    }

    #[test]
    fn graph_merges_duplicate_edges() {
        let t = Topology::graph(2, [(c(0), c(1)), (c(1), c(0)), (c(0), c(1))]).unwrap();
        assert_eq!(t.intervals().len(), 1);
    }

    #[test]
    fn route_rejects_bad_endpoints() {
        let t = Topology::linear(3);
        assert!(matches!(
            t.route_cells(c(0), c(9)),
            Err(ModelError::CellOutOfRange { .. })
        ));
        assert!(matches!(
            t.route_cells(c(1), c(1)),
            Err(ModelError::NoRoute { .. })
        ));
    }

    #[test]
    fn single_cell_linear_is_legal_topology() {
        let t = Topology::linear(1);
        assert_eq!(t.num_cells(), 1);
        assert!(t.intervals().is_empty());
    }

    #[test]
    fn spec_roundtrips_every_kind() {
        let topologies = vec![
            Topology::linear(1),
            Topology::linear(7),
            Topology::ring(5),
            Topology::mesh(2, 3),
            Topology::torus(3, 4),
            Topology::torus(1, 5),
            Topology::torus(2, 2),
            Topology::graph(4, [(c(0), c(1)), (c(1), c(3))]).unwrap(),
            Topology::graph(3, []).unwrap(),
        ];
        for t in topologies {
            let spec = t.spec();
            let back = Topology::from_spec(&spec).unwrap();
            assert_eq!(back, t, "spec `{spec}` did not round-trip");
        }
    }

    #[test]
    fn from_spec_parses_all_forms() {
        assert_eq!(
            Topology::from_spec("linear:4").unwrap(),
            Topology::linear(4)
        );
        assert_eq!(Topology::from_spec("ring:5").unwrap(), Topology::ring(5));
        assert_eq!(
            Topology::from_spec("mesh:2x3").unwrap(),
            Topology::mesh(2, 3)
        );
        assert_eq!(
            Topology::from_spec("torus:3x4").unwrap(),
            Topology::torus(3, 4)
        );
        assert_eq!(
            Topology::from_spec("graph:3:0-1,1-2").unwrap(),
            Topology::graph(3, [(c(0), c(1)), (c(1), c(2))]).unwrap()
        );
        assert_eq!(
            Topology::from_spec("graph:2:").unwrap(),
            Topology::graph(2, []).unwrap()
        );
    }

    #[test]
    fn from_spec_rejects_malformed_input() {
        for spec in [
            "",
            "linear",
            "linear:",
            "linear:0",
            "linear:x",
            "ring:2",
            "mesh:3",
            "mesh:0x2",
            "mesh:2x",
            "torus:4",
            "torus:0x3",
            "torus:3xz",
            "hypercube:4",
            "graph:3",
            "graph:3:0_1",
            "graph:3:0-0",
        ] {
            assert!(
                matches!(Topology::from_spec(spec), Err(ModelError::SpecParse { .. })),
                "spec `{spec}` should fail to parse"
            );
        }
        assert!(matches!(
            Topology::from_spec("graph:2:0-5"),
            Err(ModelError::CellOutOfRange { .. })
        ));
    }

    /// One assertion per malformed-spec class: the error must name the
    /// offending token verbatim and its byte offset within the spec.
    #[test]
    fn from_spec_errors_name_token_and_offset() {
        let classes: &[(&str, &str, usize)] = &[
            // (spec, offending token, byte offset)
            ("linear", "linear", 0),         // missing `:` — whole spec
            ("hypercube:4", "hypercube", 0), // unknown kind
            ("linear:x", "x", 7),            // non-numeric count
            ("linear:", "", 7),              // empty count
            ("linear:0", "0", 7),            // zero count
            ("ring:2", "2", 5),              // degenerate ring
            ("mesh:3", "3", 5),              // missing `x`
            ("mesh:2xq", "q", 7),            // bad column count
            ("mesh:0x2", "0", 5),            // zero row count
            ("torus:4", "4", 6),             // torus without `x`
            ("torus:2xq", "q", 8),           // bad torus column count
            ("torus:0x2", "0", 6),           // zero torus row count
            ("torus:2x0", "0", 8),           // zero torus column count
            ("graph:3", "3", 6),             // missing edge list
            ("graph:3:0_1", "0_1", 8),       // edge without `-`
            ("graph:3:0-1,2-z", "z", 14),    // bad edge endpoint
            ("graph:3:0-0", "0-0", 8),       // self-loop edge
            ("mesh:100000x100000", "100000x100000", 5), // over the cell bound
            ("torus:100000x100000", "100000x100000", 6), // over the cell bound
        ];
        for &(spec, token, offset) in classes {
            match Topology::from_spec(spec) {
                Err(ModelError::SpecParse {
                    token: t,
                    offset: o,
                    ..
                }) => {
                    assert_eq!(t, token, "wrong token for `{spec}`");
                    assert_eq!(o, offset, "wrong offset for `{spec}`");
                }
                other => panic!("spec `{spec}` should be a SpecParse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn from_spec_bounds_cell_counts() {
        // Untrusted wire input must not trigger huge eager allocations.
        for spec in [
            "linear:18446744073709551615",
            &format!("linear:{}", MAX_SPEC_CELLS + 1),
            &format!("ring:{}", MAX_SPEC_CELLS + 1),
            "mesh:100000x100000",
            "mesh:4294967296x4294967296", // rows*cols overflows on 64-bit too
            &format!("graph:{}:", MAX_SPEC_CELLS + 1),
        ] {
            assert!(
                matches!(Topology::from_spec(spec), Err(ModelError::SpecParse { .. })),
                "spec `{spec}` should be rejected"
            );
        }
        assert!(Topology::from_spec(&format!("linear:{MAX_SPEC_CELLS}")).is_ok());
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let t = Topology::torus(3, 4);
        // Row wrap: (0,0) adjacent to (2,0); column wrap: (0,0) to (0,3).
        assert!(t.is_adjacent(c(0), c(8)));
        assert!(t.is_adjacent(c(0), c(3)));
        assert!(!t.is_adjacent(c(0), c(5)), "no diagonal adjacency");
        // Every cell of a >=3x>=3-free torus with rows=3, cols=4 has degree 4.
        for i in 0..t.num_cells() as u32 {
            assert_eq!(t.neighbors(c(i)).len(), 4, "cell {i} degree");
        }
        assert_eq!(t.intervals().len(), 2 * t.num_cells(), "4n/2 links");
        assert_eq!(t.mesh_coords(c(7)), Some((1, 3)));
        assert!(!t.uses_search_routing());
    }

    #[test]
    fn torus_degenerate_dimensions_merge_wrap_links() {
        // Size-2 dimension: wrap link == direct link, merged once.
        let t = Topology::torus(2, 2);
        assert_eq!(t.neighbors(c(0)), vec![c(1), c(2)]);
        assert_eq!(t.intervals().len(), 4);
        // Size-1 dimension: behaves as a ring in the other dimension.
        let line = Topology::torus(1, 4);
        assert_eq!(line.neighbors(c(0)), vec![c(1), c(3)]);
        assert!(line.is_adjacent(c(0), c(3)), "column wrap survives");
    }

    #[test]
    fn torus_routes_shorter_way_dimension_ordered() {
        let t = Topology::torus(4, 5);
        // (0,0) -> (0,3): backwards around the column ring (2 hops via the
        // wrap) beats forwards (3 hops).
        assert_eq!(t.route_cells(c(0), c(3)).unwrap(), vec![c(0), c(4), c(3)]);
        // (0,0) -> (3,1): X first (one hop to column 1), then the row ring
        // backwards via the wrap (one hop 0 -> 3).
        assert_eq!(t.route_cells(c(0), c(16)).unwrap(), vec![c(0), c(1), c(16)]);
        // Tie on the 4-row ring: 2 hops either way; must go increasing.
        assert_eq!(t.route_cells(c(0), c(10)).unwrap(), vec![c(0), c(5), c(10)]);
        // Every route's hops are adjacency-valid.
        for i in 0..t.num_cells() as u32 {
            for j in 0..t.num_cells() as u32 {
                if i == j {
                    continue;
                }
                let path = t.route_cells(c(i), c(j)).unwrap();
                for w in path.windows(2) {
                    assert!(t.is_adjacent(w[0], w[1]), "{i}->{j} path invalid at {w:?}");
                }
            }
        }
    }

    #[test]
    fn torus_and_mesh_are_distinct_topologies() {
        let torus = Topology::torus(3, 3);
        let mesh = Topology::mesh(3, 3);
        assert_ne!(torus, mesh);
        assert_ne!(torus.spec(), mesh.spec());
        // Mesh corner has degree 2, torus corner degree 4.
        assert_eq!(mesh.neighbors(c(0)).len(), 2);
        assert_eq!(torus.neighbors(c(0)).len(), 4);
    }

    #[test]
    fn routes_from_matches_route_cells_everywhere() {
        let topologies = vec![
            Topology::linear(6),
            Topology::ring(7),
            Topology::mesh(3, 4),
            Topology::torus(4, 5),
            Topology::torus(2, 4),
            Topology::graph(
                6,
                [
                    (c(0), c(1)),
                    (c(1), c(2)),
                    (c(2), c(3)),
                    (c(0), c(4)),
                    (c(4), c(3)),
                ],
            )
            .unwrap(),
            Topology::graph(5, [(c(0), c(1)), (c(2), c(3))]).unwrap(), // disconnected
        ];
        for t in topologies {
            for i in 0..t.num_cells() as u32 {
                let closure = t.routes_from(c(i)).unwrap();
                assert_eq!(closure.len(), t.num_cells());
                for j in 0..t.num_cells() as u32 {
                    let direct = t.route_cells(c(i), c(j)).ok();
                    assert_eq!(
                        closure[j as usize],
                        direct,
                        "closure/route mismatch {i}->{j} in {}",
                        t.spec()
                    );
                }
            }
        }
        assert!(matches!(
            Topology::linear(2).routes_from(c(9)),
            Err(ModelError::CellOutOfRange { .. })
        ));
        assert!(Topology::graph(4, [(c(0), c(1))])
            .unwrap()
            .uses_search_routing());
        assert!(!Topology::mesh(2, 2).uses_search_routing());
    }
}
