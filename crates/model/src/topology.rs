//! Interconnection topologies.
//!
//! The paper's examples use 1-dimensional arrays, but its results "apply to
//! arrays of higher dimensionalities and other distributed computing systems
//! using any interconnection topology" (Section 2.1). This module provides
//! linear arrays, rings, 2-D meshes and arbitrary graphs.

use std::collections::VecDeque;

use crate::{CellId, Interval, ModelError};

#[derive(Clone, PartialEq, Eq, Debug)]
enum Kind {
    Linear { n: usize },
    Ring { n: usize },
    Mesh2D { rows: usize, cols: usize },
    Graph { n: usize, adjacency: Vec<Vec<CellId>> },
}

/// An interconnection topology: which cells are adjacent (share an interval).
///
/// # Examples
///
/// ```
/// use systolic_model::{CellId, Topology};
/// let t = Topology::linear(4);
/// assert_eq!(t.num_cells(), 4);
/// assert!(t.is_adjacent(CellId::new(1), CellId::new(2)));
/// assert!(!t.is_adjacent(CellId::new(0), CellId::new(2)));
/// assert_eq!(t.intervals().len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    kind: Kind,
}

impl Topology {
    /// A 1-dimensional array of `n` cells: cell `i` is adjacent to `i±1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn linear(n: usize) -> Self {
        assert!(n > 0, "an array needs at least one cell");
        Topology { kind: Kind::Linear { n } }
    }

    /// A ring of `n` cells: like linear, plus cell `n-1` adjacent to cell 0.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (smaller rings degenerate).
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least three cells");
        Topology { kind: Kind::Ring { n } }
    }

    /// A `rows × cols` 2-D mesh; cell `(r, c)` has id `r * cols + c`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn mesh(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        Topology { kind: Kind::Mesh2D { rows, cols } }
    }

    /// An arbitrary undirected graph over `n` cells.
    ///
    /// Duplicate edges are merged; adjacency lists are kept sorted so routing
    /// is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CellOutOfRange`] if an edge endpoint is `>= n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn graph(
        n: usize,
        edges: impl IntoIterator<Item = (CellId, CellId)>,
    ) -> Result<Self, ModelError> {
        assert!(n > 0, "an array needs at least one cell");
        let mut adjacency = vec![Vec::new(); n];
        for (a, b) in edges {
            for cell in [a, b] {
                if cell.index() >= n {
                    return Err(ModelError::CellOutOfRange { cell, num_cells: n });
                }
            }
            // Interval::new panics on self-loops, which is the right
            // behaviour: a cell is not adjacent to itself.
            let iv = Interval::new(a, b);
            if !adjacency[iv.lo().index()].contains(&iv.hi()) {
                adjacency[iv.lo().index()].push(iv.hi());
                adjacency[iv.hi().index()].push(iv.lo());
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Ok(Topology { kind: Kind::Graph { n, adjacency } })
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        match &self.kind {
            Kind::Linear { n } | Kind::Ring { n } | Kind::Graph { n, .. } => *n,
            Kind::Mesh2D { rows, cols } => rows * cols,
        }
    }

    /// For meshes, the `(row, col)` of a cell; `None` for other topologies.
    #[must_use]
    pub fn mesh_coords(&self, cell: CellId) -> Option<(usize, usize)> {
        match &self.kind {
            Kind::Mesh2D { cols, .. } => Some((cell.index() / cols, cell.index() % cols)),
            _ => None,
        }
    }

    /// `true` if the two cells share an interval.
    #[must_use]
    pub fn is_adjacent(&self, a: CellId, b: CellId) -> bool {
        if a == b {
            return false;
        }
        match &self.kind {
            Kind::Linear { n } => {
                a.index() < *n && b.index() < *n && a.index().abs_diff(b.index()) == 1
            }
            Kind::Ring { n } => {
                let (i, j) = (a.index(), b.index());
                i < *n && j < *n && (i.abs_diff(j) == 1 || i.abs_diff(j) == *n - 1)
            }
            Kind::Mesh2D { rows, cols } => {
                let n = rows * cols;
                if a.index() >= n || b.index() >= n {
                    return false;
                }
                let (ra, ca) = (a.index() / cols, a.index() % cols);
                let (rb, cb) = (b.index() / cols, b.index() % cols);
                ra.abs_diff(rb) + ca.abs_diff(cb) == 1
            }
            Kind::Graph { adjacency, .. } => adjacency
                .get(a.index())
                .is_some_and(|list| list.contains(&b)),
        }
    }

    /// The sorted neighbours of `cell`.
    #[must_use]
    pub fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        match &self.kind {
            Kind::Graph { adjacency, .. } => {
                adjacency.get(cell.index()).cloned().unwrap_or_default()
            }
            _ => {
                let mut out: Vec<CellId> = (0..self.num_cells() as u32)
                    .map(CellId::new)
                    .filter(|&other| self.is_adjacent(cell, other))
                    .collect();
                out.sort_unstable();
                out
            }
        }
    }

    /// All intervals (adjacent-cell links), sorted.
    #[must_use]
    pub fn intervals(&self) -> Vec<Interval> {
        let mut out = Vec::new();
        for i in 0..self.num_cells() as u32 {
            let a = CellId::new(i);
            for b in self.neighbors(a) {
                if a < b {
                    out.push(Interval::new(a, b));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The cell path of the minimum-length route from `from` to `to`,
    /// including both endpoints.
    ///
    /// Routing is deterministic:
    /// * **linear** — the unique path;
    /// * **ring** — the shorter way round; ties broken in the direction of
    ///   increasing cell index;
    /// * **mesh** — XY (column-first, then row) dimension-ordered routing,
    ///   the standard deadlock-conscious choice for meshes;
    /// * **graph** — breadth-first shortest path with lowest-id tie-breaks.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellOutOfRange`] if an endpoint does not exist;
    /// * [`ModelError::NoRoute`] if the graph is disconnected between the
    ///   endpoints (or `from == to`).
    pub fn route_cells(&self, from: CellId, to: CellId) -> Result<Vec<CellId>, ModelError> {
        let n = self.num_cells();
        for cell in [from, to] {
            if cell.index() >= n {
                return Err(ModelError::CellOutOfRange { cell, num_cells: n });
            }
        }
        if from == to {
            return Err(ModelError::NoRoute { from, to });
        }
        match &self.kind {
            Kind::Linear { .. } => {
                let (i, j) = (from.index(), to.index());
                let path: Vec<CellId> = if i < j {
                    (i..=j).map(|k| CellId::new(k as u32)).collect()
                } else {
                    (j..=i).rev().map(|k| CellId::new(k as u32)).collect()
                };
                Ok(path)
            }
            Kind::Ring { n } => {
                let (i, j) = (from.index(), to.index());
                let fwd = (j + n - i) % n; // hops going in +1 direction
                let bwd = n - fwd;
                let step_fwd = fwd <= bwd; // tie => increasing direction
                let hops = if step_fwd { fwd } else { bwd };
                let mut path = Vec::with_capacity(hops + 1);
                let mut cur = i;
                path.push(CellId::new(cur as u32));
                for _ in 0..hops {
                    cur = if step_fwd { (cur + 1) % n } else { (cur + n - 1) % n };
                    path.push(CellId::new(cur as u32));
                }
                Ok(path)
            }
            Kind::Mesh2D { cols, .. } => {
                let (mut r, mut c) = (from.index() / cols, from.index() % cols);
                let (tr, tc) = (to.index() / cols, to.index() % cols);
                let mut path = vec![from];
                while c != tc {
                    c = if c < tc { c + 1 } else { c - 1 };
                    path.push(CellId::new((r * cols + c) as u32));
                }
                while r != tr {
                    r = if r < tr { r + 1 } else { r - 1 };
                    path.push(CellId::new((r * cols + c) as u32));
                }
                Ok(path)
            }
            Kind::Graph { adjacency, .. } => {
                // BFS with lowest-id tie-break (adjacency lists are sorted).
                let mut prev: Vec<Option<CellId>> = vec![None; n];
                let mut seen = vec![false; n];
                let mut queue = VecDeque::new();
                seen[from.index()] = true;
                queue.push_back(from);
                while let Some(cur) = queue.pop_front() {
                    if cur == to {
                        break;
                    }
                    for &next in &adjacency[cur.index()] {
                        if !seen[next.index()] {
                            seen[next.index()] = true;
                            prev[next.index()] = Some(cur);
                            queue.push_back(next);
                        }
                    }
                }
                if !seen[to.index()] {
                    return Err(ModelError::NoRoute { from, to });
                }
                let mut path = vec![to];
                let mut cur = to;
                while let Some(p) = prev[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                Ok(path)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn linear_adjacency_and_intervals() {
        let t = Topology::linear(4);
        assert!(t.is_adjacent(c(0), c(1)));
        assert!(!t.is_adjacent(c(0), c(0)));
        assert!(!t.is_adjacent(c(0), c(3)));
        assert_eq!(t.intervals().len(), 3);
        assert_eq!(t.neighbors(c(1)), vec![c(0), c(2)]);
        assert_eq!(t.neighbors(c(0)), vec![c(1)]);
    }

    #[test]
    fn linear_routes_both_directions() {
        let t = Topology::linear(4);
        assert_eq!(t.route_cells(c(0), c(3)).unwrap(), vec![c(0), c(1), c(2), c(3)]);
        assert_eq!(t.route_cells(c(3), c(1)).unwrap(), vec![c(3), c(2), c(1)]);
    }

    #[test]
    fn ring_takes_shorter_way() {
        let t = Topology::ring(5);
        assert!(t.is_adjacent(c(0), c(4)));
        assert_eq!(t.route_cells(c(0), c(4)).unwrap(), vec![c(0), c(4)]);
        assert_eq!(t.route_cells(c(0), c(2)).unwrap(), vec![c(0), c(1), c(2)]);
        // Tie on a 4-ring: 0 -> 2 can go either way; must pick +1 direction.
        let t4 = Topology::ring(4);
        assert_eq!(t4.route_cells(c(0), c(2)).unwrap(), vec![c(0), c(1), c(2)]);
    }

    #[test]
    fn mesh_xy_routing() {
        let t = Topology::mesh(3, 3);
        // (0,0)=0 to (2,2)=8: X first (columns), then Y (rows).
        assert_eq!(
            t.route_cells(c(0), c(8)).unwrap(),
            vec![c(0), c(1), c(2), c(5), c(8)]
        );
        assert_eq!(t.mesh_coords(c(5)), Some((1, 2)));
        assert!(t.is_adjacent(c(4), c(1)));
        assert!(!t.is_adjacent(c(2), c(3))); // row wrap is not adjacency
        assert_eq!(t.intervals().len(), 12);
    }

    #[test]
    fn graph_bfs_shortest_with_tiebreak() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths 0->3; lowest-id goes via 1.
        let t = Topology::graph(4, [(c(0), c(1)), (c(0), c(2)), (c(1), c(3)), (c(2), c(3))])
            .unwrap();
        assert_eq!(t.route_cells(c(0), c(3)).unwrap(), vec![c(0), c(1), c(3)]);
    }

    #[test]
    fn graph_disconnected_errors() {
        let t = Topology::graph(4, [(c(0), c(1)), (c(2), c(3))]).unwrap();
        let err = t.route_cells(c(0), c(3)).unwrap_err();
        assert!(matches!(err, ModelError::NoRoute { .. }));
    }

    #[test]
    fn graph_rejects_bad_edges() {
        let err = Topology::graph(2, [(c(0), c(5))]).unwrap_err();
        assert!(matches!(err, ModelError::CellOutOfRange { .. }));
    }

    #[test]
    fn graph_merges_duplicate_edges() {
        let t = Topology::graph(2, [(c(0), c(1)), (c(1), c(0)), (c(0), c(1))]).unwrap();
        assert_eq!(t.intervals().len(), 1);
    }

    #[test]
    fn route_rejects_bad_endpoints() {
        let t = Topology::linear(3);
        assert!(matches!(
            t.route_cells(c(0), c(9)),
            Err(ModelError::CellOutOfRange { .. })
        ));
        assert!(matches!(t.route_cells(c(1), c(1)), Err(ModelError::NoRoute { .. })));
    }

    #[test]
    fn single_cell_linear_is_legal_topology() {
        let t = Topology::linear(1);
        assert_eq!(t.num_cells(), 1);
        assert!(t.intervals().is_empty());
    }
}
