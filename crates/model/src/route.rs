//! Message routes: the sequence of intervals a message crosses
//! (paper, Section 2.3).
//!
//! "A message is said to *cross* the interval between two adjacent cells if
//! it will be assigned to queues between the two cells during program
//! execution. Suppose that a minimum-length route is always taken. Then for a
//! 1-dimensional array, intervals that a message will cross are completely
//! determined by its sender and receiver. However, for a 2-dimensional array,
//! intervals that a message crosses will also depend on the routing scheme."

use core::fmt;

use crate::{CellId, Hop, Interval, MessageId, ModelError, Program, Topology};

/// The route of one message: the cell path from sender to receiver.
///
/// A route has at least two cells (sender ≠ receiver) and therefore at least
/// one [`Hop`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    cells: Vec<CellId>,
}

impl Route {
    /// Wraps a cell path as a route.
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two cells or repeats a cell
    /// consecutively.
    #[must_use]
    pub fn new(cells: Vec<CellId>) -> Self {
        assert!(
            cells.len() >= 2,
            "a route needs at least sender and receiver"
        );
        assert!(
            cells.windows(2).all(|w| w[0] != w[1]),
            "a route must not repeat a cell consecutively"
        );
        Route { cells }
    }

    /// The full cell path, including sender and receiver.
    #[must_use]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// The sending cell.
    #[must_use]
    pub fn sender(&self) -> CellId {
        self.cells[0]
    }

    /// The receiving cell.
    #[must_use]
    pub fn receiver(&self) -> CellId {
        *self.cells.last().expect("routes are nonempty")
    }

    /// Number of hops (= number of intervals crossed).
    #[must_use]
    pub fn num_hops(&self) -> usize {
        self.cells.len() - 1
    }

    /// The directed hops, in order from sender to receiver.
    pub fn hops(&self) -> impl Iterator<Item = Hop> + '_ {
        self.cells.windows(2).map(|w| Hop::new(w[0], w[1]))
    }

    /// The undirected intervals crossed, in order.
    pub fn intervals(&self) -> impl Iterator<Item = Interval> + '_ {
        self.hops().map(Hop::interval)
    }

    /// The hop crossing `interval`, if this route crosses it.
    #[must_use]
    pub fn hop_over(&self, interval: Interval) -> Option<Hop> {
        self.hops().find(|h| h.interval() == interval)
    }

    /// Position of `interval` along the route (0 = first hop), if crossed.
    #[must_use]
    pub fn hop_index(&self, interval: Interval) -> Option<usize> {
        self.hops().position(|h| h.interval() == interval)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.cells {
            if !first {
                f.write_str(" -> ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// The routes of every message of a program over a topology.
///
/// # Examples
///
/// ```
/// use systolic_model::{MessageRoutes, ProgramBuilder, Topology};
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let mut b = ProgramBuilder::new(4);
/// let a = b.message("A", 0, 3)?;
/// b.write(0, "A")?.read(3, "A")?;
/// let program = b.build()?;
/// let routes = MessageRoutes::compute(&program, &Topology::linear(4))?;
/// assert_eq!(routes.route(a).num_hops(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageRoutes {
    routes: Vec<Route>,
}

impl MessageRoutes {
    /// Routes every declared message of `program` over `topology` using the
    /// topology's deterministic minimum-length routing.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellCountMismatch`] if the program and topology
    ///   disagree on the number of cells;
    /// * any routing error from [`Topology::route_cells`].
    pub fn compute(program: &Program, topology: &Topology) -> Result<Self, ModelError> {
        if program.num_cells() != topology.num_cells() {
            return Err(ModelError::CellCountMismatch {
                program: program.num_cells(),
                topology: topology.num_cells(),
            });
        }
        let mut routes = Vec::with_capacity(program.num_messages());
        for decl in program.messages() {
            let path = topology.route_cells(decl.sender(), decl.receiver())?;
            routes.push(Route::new(path));
        }
        Ok(MessageRoutes { routes })
    }

    /// Assembles message routes directly, one [`Route`] per declared
    /// message in declaration order. Used by precompiled topologies
    /// (`systolic_core::CompiledTopology`), which serve paths from a route
    /// closure instead of re-routing per program.
    #[must_use]
    pub fn from_routes(routes: Vec<Route>) -> Self {
        MessageRoutes { routes }
    }

    /// The route of message `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn route(&self, id: MessageId) -> &Route {
        &self.routes[id.index()]
    }

    /// Iterates over `(message, route)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageId, &Route)> + '_ {
        self.routes
            .iter()
            .enumerate()
            .map(|(i, r)| (MessageId::new(i as u32), r))
    }

    /// Number of routed messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if the program declared no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// All messages whose route crosses `interval`, with their hop direction.
    #[must_use]
    pub fn crossing(&self, interval: Interval) -> Vec<(MessageId, Hop)> {
        self.iter()
            .filter_map(|(id, r)| r.hop_over(interval).map(|h| (id, h)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn route_hops_and_intervals() {
        let r = Route::new(vec![c(1), c(2), c(3)]);
        assert_eq!(r.sender(), c(1));
        assert_eq!(r.receiver(), c(3));
        assert_eq!(r.num_hops(), 2);
        let hops: Vec<Hop> = r.hops().collect();
        assert_eq!(hops, vec![Hop::new(c(1), c(2)), Hop::new(c(2), c(3))]);
        assert_eq!(r.hop_index(Interval::new(c(2), c(3))), Some(1));
        assert_eq!(r.hop_over(Interval::new(c(0), c(1))), None);
        assert_eq!(r.to_string(), "c1 -> c2 -> c3");
    }

    #[test]
    #[should_panic(expected = "at least sender and receiver")]
    fn route_rejects_single_cell() {
        let _ = Route::new(vec![c(0)]);
    }

    #[test]
    fn routes_fig3_style_assignment() {
        // Fig. 3: message A from c0 to c3 crosses all three intervals.
        let mut b = ProgramBuilder::new(4);
        b.message("A", 0, 3).unwrap();
        b.message("D", 2, 1).unwrap();
        b.write(0, "A").unwrap().read(3, "A").unwrap();
        b.write(2, "D").unwrap().read(1, "D").unwrap();
        let p = b.build().unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(4)).unwrap();

        let a = p.message_id("A").unwrap();
        let d = p.message_id("D").unwrap();
        assert_eq!(routes.route(a).num_hops(), 3);
        assert_eq!(routes.route(d).cells(), &[c(2), c(1)]);

        let mid = Interval::new(c(1), c(2));
        let crossing = routes.crossing(mid);
        assert_eq!(crossing.len(), 2);
        // A goes c1->c2, D goes c2->c1: same interval, opposite directions.
        let dir_a = crossing.iter().find(|(m, _)| *m == a).unwrap().1;
        let dir_d = crossing.iter().find(|(m, _)| *m == d).unwrap().1;
        assert_eq!(dir_a, Hop::new(c(1), c(2)));
        assert_eq!(dir_d, Hop::new(c(2), c(1)));
    }

    #[test]
    fn cell_count_mismatch_detected() {
        let mut b = ProgramBuilder::new(2);
        b.message("A", 0, 1).unwrap();
        b.write(0, "A").unwrap().read(1, "A").unwrap();
        let p = b.build().unwrap();
        let err = MessageRoutes::compute(&p, &Topology::linear(3)).unwrap_err();
        assert!(matches!(err, ModelError::CellCountMismatch { .. }));
    }

    #[test]
    fn empty_message_set_is_fine() {
        let p = ProgramBuilder::new(2).build().unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(2)).unwrap();
        assert!(routes.is_empty());
        assert_eq!(routes.len(), 0);
    }
}
