//! Programs: one op list per cell plus the message declaration table
//! (paper, Section 2.2).

use core::fmt;

use crate::{CellId, MessageDecl, MessageId, ModelError, Op, OpKind};

/// The statement sequence of a single cell, restricted to `R`/`W` operations.
///
/// "From now on only statements involving write and read operations will be
/// present in a program" (paper, Section 2.2).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CellProgram {
    ops: Vec<Op>,
}

impl CellProgram {
    /// Creates a cell program from a list of operations.
    #[must_use]
    pub fn new(ops: Vec<Op>) -> Self {
        CellProgram { ops }
    }

    /// The operations, in program order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the cell program has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation at position `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Op> {
        self.ops.get(index).copied()
    }

    /// Iterates over the operations in program order.
    pub fn iter(&self) -> impl Iterator<Item = Op> + '_ {
        self.ops.iter().copied()
    }
}

impl FromIterator<Op> for CellProgram {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        CellProgram {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for CellProgram {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

/// A complete array program: message declarations plus one
/// [`CellProgram`] per cell.
///
/// A `Program` is validated at construction (see [`Program::new`]); once
/// built it is immutable, so every invariant below can be relied upon by the
/// analysis and runtime crates:
///
/// * every `W(X)` appears only in X's declared sender;
/// * every `R(X)` appears only in X's declared receiver;
/// * X is written exactly as many times as it is read (its *word count*).
///
/// # Examples
///
/// ```
/// use systolic_model::ProgramBuilder;
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let mut b = ProgramBuilder::new(2);
/// b.message("A", 0, 1)?;
/// b.write(0, "A")?.read(1, "A")?;
/// let program = b.build()?;
/// assert_eq!(program.num_cells(), 2);
/// assert_eq!(program.total_ops(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    cell_names: Vec<String>,
    messages: Vec<MessageDecl>,
    cells: Vec<CellProgram>,
    /// Cached per-message word counts (number of `W` = number of `R`).
    word_counts: Vec<usize>,
}

impl Program {
    /// Builds and validates a program.
    ///
    /// `cell_names` and `cells` must have equal length; entry `i` of each
    /// describes cell `i`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::DuplicateCell`] / [`ModelError::DuplicateMessage`] for
    ///   name collisions;
    /// * [`ModelError::CellOutOfRange`] if a declaration references a cell
    ///   index `>= cells.len()`;
    /// * [`ModelError::SelfMessage`] if a message's sender equals its
    ///   receiver;
    /// * [`ModelError::UnknownMessage`] if an op references an undeclared
    ///   message;
    /// * [`ModelError::WriteOutsideSender`] / [`ModelError::ReadOutsideReceiver`]
    ///   if an op appears in the wrong cell;
    /// * [`ModelError::WordCountMismatch`] if writes ≠ reads for a message.
    pub fn new(
        cell_names: Vec<String>,
        messages: Vec<MessageDecl>,
        cells: Vec<CellProgram>,
    ) -> Result<Self, ModelError> {
        assert_eq!(
            cell_names.len(),
            cells.len(),
            "cell_names and cells must describe the same number of cells"
        );
        let num_cells = cells.len();

        for (i, name) in cell_names.iter().enumerate() {
            if cell_names[..i].iter().any(|n| n == name) {
                return Err(ModelError::DuplicateCell { name: name.clone() });
            }
        }
        for (i, decl) in messages.iter().enumerate() {
            if messages[..i].iter().any(|d| d.name() == decl.name()) {
                return Err(ModelError::DuplicateMessage {
                    name: decl.name().to_owned(),
                });
            }
            for cell in [decl.sender(), decl.receiver()] {
                if cell.index() >= num_cells {
                    return Err(ModelError::CellOutOfRange { cell, num_cells });
                }
            }
            if decl.sender() == decl.receiver() {
                return Err(ModelError::SelfMessage {
                    message: MessageId::new(i as u32),
                    cell: decl.sender(),
                });
            }
        }

        let mut writes = vec![0usize; messages.len()];
        let mut reads = vec![0usize; messages.len()];
        for (ci, cp) in cells.iter().enumerate() {
            let cell = CellId::new(ci as u32);
            for op in cp.iter() {
                let m = op.message();
                let Some(decl) = messages.get(m.index()) else {
                    return Err(ModelError::UnknownMessage {
                        name: m.to_string(),
                    });
                };
                match op.kind() {
                    OpKind::Write => {
                        if decl.sender() != cell {
                            return Err(ModelError::WriteOutsideSender {
                                message: m,
                                cell,
                                sender: decl.sender(),
                            });
                        }
                        writes[m.index()] += 1;
                    }
                    OpKind::Read => {
                        if decl.receiver() != cell {
                            return Err(ModelError::ReadOutsideReceiver {
                                message: m,
                                cell,
                                receiver: decl.receiver(),
                            });
                        }
                        reads[m.index()] += 1;
                    }
                }
            }
        }
        for (i, (&w, &r)) in writes.iter().zip(reads.iter()).enumerate() {
            if w != r {
                return Err(ModelError::WordCountMismatch {
                    message: MessageId::new(i as u32),
                    writes: w,
                    reads: r,
                });
            }
        }

        Ok(Program {
            cell_names,
            messages,
            cells,
            word_counts: writes,
        })
    }

    /// Number of cells in the array (the host counts as a cell).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of declared messages.
    #[must_use]
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// All message ids, in declaration order.
    pub fn message_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        (0..self.messages.len()).map(|i| MessageId::new(i as u32))
    }

    /// All cell ids, in array order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(|i| CellId::new(i as u32))
    }

    /// The declaration of message `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn message(&self, id: MessageId) -> &MessageDecl {
        &self.messages[id.index()]
    }

    /// All message declarations, in declaration order.
    #[must_use]
    pub fn messages(&self) -> &[MessageDecl] {
        &self.messages
    }

    /// The op list of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &CellProgram {
        &self.cells[id.index()]
    }

    /// All cell programs, in array order.
    #[must_use]
    pub fn cells(&self) -> &[CellProgram] {
        &self.cells
    }

    /// The display name of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn cell_name(&self, id: CellId) -> &str {
        &self.cell_names[id.index()]
    }

    /// Looks up a cell by name.
    #[must_use]
    pub fn cell_id(&self, name: &str) -> Option<CellId> {
        self.cell_names
            .iter()
            .position(|n| n == name)
            .map(|i| CellId::new(i as u32))
    }

    /// Looks up a message by name.
    #[must_use]
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.messages
            .iter()
            .position(|d| d.name() == name)
            .map(|i| MessageId::new(i as u32))
    }

    /// The number of words in message `id` (writes = reads, validated).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn word_count(&self, id: MessageId) -> usize {
        self.word_counts[id.index()]
    }

    /// Total number of operations across all cells.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.cells.iter().map(CellProgram::len).sum()
    }

    /// Total number of words transferred by a complete run
    /// (half of [`Program::total_ops`]).
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.word_counts.iter().sum()
    }
}

impl fmt::Display for Program {
    /// Renders the program in the paper's figure style: message declarations
    /// followed by each cell's op list.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.messages.iter().enumerate() {
            let id = MessageId::new(i as u32);
            writeln!(
                f,
                "message {}: {} -> {}  ({} words)",
                m.name(),
                self.cell_name(m.sender()),
                self.cell_name(m.receiver()),
                self.word_count(id),
            )?;
        }
        for (i, cp) in self.cells.iter().enumerate() {
            let id = CellId::new(i as u32);
            write!(f, "{}:", self.cell_name(id))?;
            for op in cp.iter() {
                write!(f, " {}({})", op.kind(), self.message(op.message()).name())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(name: &str, s: u32, r: u32) -> MessageDecl {
        MessageDecl::new(name, CellId::new(s), CellId::new(r)).unwrap()
    }

    fn two_cell_names() -> Vec<String> {
        vec!["c0".into(), "c1".into()]
    }

    #[test]
    fn accepts_minimal_valid_program() {
        let m = MessageId::new(0);
        let p = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![
                CellProgram::new(vec![Op::write(m)]),
                CellProgram::new(vec![Op::read(m)]),
            ],
        )
        .unwrap();
        assert_eq!(p.word_count(m), 1);
        assert_eq!(p.total_ops(), 2);
        assert_eq!(p.total_words(), 1);
        assert_eq!(p.message_id("A"), Some(m));
        assert_eq!(p.cell_id("c1"), Some(CellId::new(1)));
        assert_eq!(p.cell_id("nope"), None);
    }

    #[test]
    fn rejects_write_outside_sender() {
        let m = MessageId::new(0);
        let err = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![
                CellProgram::new(vec![]),
                CellProgram::new(vec![Op::write(m), Op::read(m)]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::WriteOutsideSender { .. }));
    }

    #[test]
    fn rejects_read_outside_receiver() {
        let m = MessageId::new(0);
        let err = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![
                CellProgram::new(vec![Op::write(m), Op::read(m)]),
                CellProgram::new(vec![]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::ReadOutsideReceiver { .. }));
    }

    #[test]
    fn rejects_word_count_mismatch() {
        let m = MessageId::new(0);
        let err = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![
                CellProgram::new(vec![Op::write(m), Op::write(m)]),
                CellProgram::new(vec![Op::read(m)]),
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ModelError::WordCountMismatch {
                writes: 2,
                reads: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknown_message_in_ops() {
        let ghost = MessageId::new(7);
        let err = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![
                CellProgram::new(vec![Op::write(ghost)]),
                CellProgram::new(vec![]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::UnknownMessage { .. }));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1), decl("A", 1, 0)],
            vec![CellProgram::default(), CellProgram::default()],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateMessage { .. }));

        let err = Program::new(
            vec!["x".into(), "x".into()],
            vec![],
            vec![CellProgram::default(), CellProgram::default()],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateCell { .. }));
    }

    #[test]
    fn rejects_out_of_range_declaration() {
        let err = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 5)],
            vec![CellProgram::default(), CellProgram::default()],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::CellOutOfRange { .. }));
    }

    #[test]
    fn zero_word_messages_are_allowed() {
        let p = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![CellProgram::default(), CellProgram::default()],
        )
        .unwrap();
        assert_eq!(p.word_count(MessageId::new(0)), 0);
    }

    #[test]
    fn display_lists_messages_and_cells() {
        let m = MessageId::new(0);
        let p = Program::new(
            two_cell_names(),
            vec![decl("A", 0, 1)],
            vec![
                CellProgram::new(vec![Op::write(m)]),
                CellProgram::new(vec![Op::read(m)]),
            ],
        )
        .unwrap();
        let s = p.to_string();
        assert!(s.contains("message A: c0 -> c1  (1 words)"));
        assert!(s.contains("c0: W(A)"));
        assert!(s.contains("c1: R(A)"));
    }

    #[test]
    fn cell_program_collection_traits() {
        let m = MessageId::new(0);
        let mut cp: CellProgram = [Op::write(m)].into_iter().collect();
        cp.extend([Op::write(m)]);
        assert_eq!(cp.len(), 2);
        assert_eq!(cp.get(1), Some(Op::write(m)));
        assert_eq!(cp.get(2), None);
        assert!(!cp.is_empty());
    }
}
