//! Error types for model construction, validation, parsing and routing.

use core::fmt;

use crate::{CellId, MessageId};

/// Errors produced while constructing or validating a
/// [`Program`](crate::Program) or while routing messages over a
/// [`Topology`](crate::Topology).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// A cell name or id was referenced that does not exist.
    UnknownCell {
        /// The offending name (or rendered id).
        name: String,
    },
    /// A message name or id was referenced that does not exist.
    UnknownMessage {
        /// The offending name (or rendered id).
        name: String,
    },
    /// Two message declarations share the same name.
    DuplicateMessage {
        /// The duplicated name.
        name: String,
    },
    /// Two cells were given the same name.
    DuplicateCell {
        /// The duplicated name.
        name: String,
    },
    /// A message was declared with identical sender and receiver.
    SelfMessage {
        /// The message in question.
        message: MessageId,
        /// The cell that is both sender and receiver.
        cell: CellId,
    },
    /// A `W(X)` appears in a cell other than X's declared sender.
    WriteOutsideSender {
        /// The message being written.
        message: MessageId,
        /// The cell containing the stray write.
        cell: CellId,
        /// The declared sender.
        sender: CellId,
    },
    /// An `R(X)` appears in a cell other than X's declared receiver.
    ReadOutsideReceiver {
        /// The message being read.
        message: MessageId,
        /// The cell containing the stray read.
        cell: CellId,
        /// The declared receiver.
        receiver: CellId,
    },
    /// The number of writes to a message differs from the number of reads.
    WordCountMismatch {
        /// The message in question.
        message: MessageId,
        /// Total `W(X)` operations in the sender's program.
        writes: usize,
        /// Total `R(X)` operations in the receiver's program.
        reads: usize,
    },
    /// A cell id is out of range for the program or topology.
    CellOutOfRange {
        /// The offending cell.
        cell: CellId,
        /// Number of cells available.
        num_cells: usize,
    },
    /// The program's cell count differs from the topology's.
    CellCountMismatch {
        /// Cells in the program.
        program: usize,
        /// Cells in the topology.
        topology: usize,
    },
    /// No route exists between two cells in the topology.
    NoRoute {
        /// Route origin.
        from: CellId,
        /// Route destination.
        to: CellId,
    },
    /// Text parsing failed.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A compact topology spec string
    /// ([`Topology::from_spec`](crate::Topology::from_spec)) failed to
    /// parse. Unlike [`ModelError::Parse`], which is line-oriented, this
    /// names the offending token and its byte offset within the (single
    /// line) spec string.
    SpecParse {
        /// The offending token, verbatim.
        token: String,
        /// Byte offset of the token within the spec string.
        offset: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownCell { name } => write!(f, "unknown cell `{name}`"),
            ModelError::UnknownMessage { name } => write!(f, "unknown message `{name}`"),
            ModelError::DuplicateMessage { name } => {
                write!(f, "message `{name}` declared more than once")
            }
            ModelError::DuplicateCell { name } => {
                write!(f, "cell `{name}` named more than once")
            }
            ModelError::SelfMessage { message, cell } => {
                write!(
                    f,
                    "message {message} has cell {cell} as both sender and receiver"
                )
            }
            ModelError::WriteOutsideSender {
                message,
                cell,
                sender,
            } => write!(
                f,
                "W({message}) appears in {cell} but the declared sender is {sender}"
            ),
            ModelError::ReadOutsideReceiver {
                message,
                cell,
                receiver,
            } => write!(
                f,
                "R({message}) appears in {cell} but the declared receiver is {receiver}"
            ),
            ModelError::WordCountMismatch {
                message,
                writes,
                reads,
            } => write!(
                f,
                "message {message} is written {writes} times but read {reads} times"
            ),
            ModelError::CellOutOfRange { cell, num_cells } => {
                write!(f, "cell {cell} out of range (array has {num_cells} cells)")
            }
            ModelError::CellCountMismatch { program, topology } => write!(
                f,
                "program has {program} cells but the topology has {topology}"
            ),
            ModelError::NoRoute { from, to } => {
                write!(f, "no route from {from} to {to} in the topology")
            }
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ModelError::SpecParse {
                token,
                offset,
                message,
            } => {
                write!(
                    f,
                    "topology spec error at byte {offset} (`{token}`): {message}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = ModelError::UnknownCell {
            name: "hostt".into(),
        };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn display_variants_render() {
        let samples: Vec<ModelError> = vec![
            ModelError::UnknownMessage { name: "A".into() },
            ModelError::DuplicateMessage { name: "A".into() },
            ModelError::DuplicateCell { name: "c1".into() },
            ModelError::SelfMessage {
                message: MessageId::new(0),
                cell: CellId::new(1),
            },
            ModelError::WriteOutsideSender {
                message: MessageId::new(0),
                cell: CellId::new(1),
                sender: CellId::new(2),
            },
            ModelError::ReadOutsideReceiver {
                message: MessageId::new(0),
                cell: CellId::new(1),
                receiver: CellId::new(2),
            },
            ModelError::WordCountMismatch {
                message: MessageId::new(0),
                writes: 3,
                reads: 2,
            },
            ModelError::CellOutOfRange {
                cell: CellId::new(9),
                num_cells: 4,
            },
            ModelError::CellCountMismatch {
                program: 3,
                topology: 4,
            },
            ModelError::NoRoute {
                from: CellId::new(0),
                to: CellId::new(3),
            },
            ModelError::Parse {
                line: 7,
                message: "bad token".into(),
            },
            ModelError::SpecParse {
                token: "torus".into(),
                offset: 0,
                message: "unknown topology kind".into(),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
