//! Canonical content hashing for cache keys.
//!
//! The serving layer (`systolic-service`) caches analysis results keyed by
//! the *content* of a request — program, topology and analysis
//! configuration — so identical requests from different clients share one
//! cached plan. This module provides the hashing substrate:
//!
//! * [`ContentHasher`] — a deterministic 128-bit FNV-1a style hasher whose
//!   output is stable across processes and runs (unlike
//!   [`std::hash::Hasher`] with `RandomState`, which is seeded per
//!   process);
//! * [`CanonicalHash`] — implemented by model types that can feed a
//!   canonical byte encoding of themselves into the hasher.
//!
//! The encoding is injective over the constructor arguments of each type
//! (every field is written length- or tag-prefixed), so two values collide
//! only if the 128-bit hash itself collides. The hash is *structural*: a
//! [`Topology::graph`](crate::Topology::graph) that happens to describe a
//! linear array hashes differently from [`Topology::linear`]
//! (crate::Topology::linear), mirroring `PartialEq` on `Topology`.

use crate::{CellProgram, OpKind, Program, Topology};

const OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325;
// A second, independent FNV stream seeded differently so the combined
// output is 128 bits wide — collision-safe for cache keys at any realistic
// request volume.
const OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// A deterministic, process-independent 128-bit content hasher.
///
/// # Examples
///
/// ```
/// use systolic_model::ContentHasher;
///
/// let mut a = ContentHasher::new();
/// a.write_str("hello");
/// let mut b = ContentHasher::new();
/// b.write_str("hello");
/// assert_eq!(a.finish(), b.finish());
///
/// let mut c = ContentHasher::new();
/// c.write_str("world");
/// assert_ne!(a.finish(), c.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ContentHasher {
    lo: u64,
    hi: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// A fresh hasher in its initial state.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher {
            lo: OFFSET_LO,
            hi: OFFSET_HI,
        }
    }

    /// Feeds raw bytes. Prefer the typed writers, which add framing.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(PRIME);
            self.hi = (self.hi ^ u64::from(b)).wrapping_mul(PRIME.wrapping_add(2));
        }
    }

    /// Feeds one byte (used for enum/variant tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` (widened to `u64` so the encoding is
    /// platform-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// Types with a canonical, process-independent content encoding.
///
/// # Examples
///
/// ```
/// use systolic_model::{parse_program, CanonicalHash, ContentHasher};
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let text = "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n";
/// let p = parse_program(text)?;
/// let q = parse_program(text)?;
/// assert_eq!(p.content_hash(), q.content_hash());
/// # Ok(())
/// # }
/// ```
pub trait CanonicalHash {
    /// Feeds this value's canonical encoding into `hasher`.
    fn canonical_hash(&self, hasher: &mut ContentHasher);

    /// Convenience: the standalone 128-bit digest of this value.
    #[must_use]
    fn content_hash(&self) -> u128 {
        let mut h = ContentHasher::new();
        self.canonical_hash(&mut h);
        h.finish()
    }
}

impl CanonicalHash for Program {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'P');
        hasher.write_usize(self.num_cells());
        for cell in self.cell_ids() {
            hasher.write_str(self.cell_name(cell));
        }
        hasher.write_usize(self.num_messages());
        for decl in self.messages() {
            hasher.write_str(decl.name());
            hasher.write_usize(decl.sender().index());
            hasher.write_usize(decl.receiver().index());
        }
        for cp in self.cells() {
            cp.canonical_hash(hasher);
        }
    }
}

impl CanonicalHash for CellProgram {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_usize(self.len());
        for op in self.iter() {
            hasher.write_u8(match op.kind() {
                OpKind::Write => b'W',
                OpKind::Read => b'R',
            });
            hasher.write_usize(op.message().index());
        }
    }
}

impl CanonicalHash for Topology {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'T');
        // The spec string is injective over the topology's construction
        // (kind + dimensions + edge list), so hashing it is canonical.
        hasher.write_str(&self.spec());
    }
}

impl CanonicalHash for crate::Route {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'r');
        hasher.write_usize(self.cells().len());
        for cell in self.cells() {
            hasher.write_usize(cell.index());
        }
    }
}

impl CanonicalHash for crate::MessageRoutes {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'R');
        hasher.write_usize(self.len());
        for (_, route) in self.iter() {
            route.canonical_hash(hasher);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, CellId};

    #[test]
    fn hasher_is_deterministic_and_order_sensitive() {
        let mut a = ContentHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = ContentHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = ContentHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn string_framing_prevents_concatenation_collisions() {
        let mut a = ContentHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = ContentHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn equal_programs_hash_equal() {
        let text = "cells 3\n\
                    message A: c0 -> c1\n\
                    message B: c1 -> c2\n\
                    program c0 { W(A)*2 }\n\
                    program c1 { R(A)*2 W(B) }\n\
                    program c2 { R(B) }\n";
        let p = parse_program(text).unwrap();
        let q = parse_program(text).unwrap();
        assert_eq!(p.content_hash(), q.content_hash());
    }

    #[test]
    fn op_order_changes_the_hash() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c0 -> c1\n\
             program c0 { W(A) W(B) }\nprogram c1 { R(A) R(B) }\n",
        )
        .unwrap();
        let q = parse_program(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c0 -> c1\n\
             program c0 { W(B) W(A) }\nprogram c1 { R(A) R(B) }\n",
        )
        .unwrap();
        assert_ne!(p.content_hash(), q.content_hash());
    }

    #[test]
    fn message_names_change_the_hash() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let q = parse_program(
            "cells 2\nmessage X: c0 -> c1\nprogram c0 { W(X) }\nprogram c1 { R(X) }\n",
        )
        .unwrap();
        assert_ne!(p.content_hash(), q.content_hash());
    }

    #[test]
    fn topology_kinds_hash_distinctly() {
        let hashes = [
            Topology::linear(4).content_hash(),
            Topology::ring(4).content_hash(),
            Topology::mesh(2, 2).content_hash(),
            Topology::graph(4, [(CellId::new(0), CellId::new(1))])
                .unwrap()
                .content_hash(),
            Topology::linear(5).content_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(
            Topology::mesh(2, 3).content_hash(),
            Topology::mesh(2, 3).content_hash()
        );
    }
}
