//! Newtyped identifiers for cells, messages, queues and intervals.
//!
//! Following C-NEWTYPE, each entity in the model gets its own id type so the
//! compiler keeps cell indices, message indices and queue indices from being
//! confused with one another.

use core::fmt;

/// Identifier of a cell (processing element) in the array.
///
/// The paper treats the host as "just another cell"; by convention the host,
/// when present, is cell `0`, but nothing in the library special-cases it.
///
/// # Examples
///
/// ```
/// use systolic_model::CellId;
/// let c = CellId::new(2);
/// assert_eq!(c.index(), 2);
/// assert_eq!(c.to_string(), "c2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CellId(u32);

impl CellId {
    /// Creates a cell id from an array index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        CellId(index)
    }

    /// Returns the underlying array index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for CellId {
    fn from(v: u32) -> Self {
        CellId(v)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a declared message.
///
/// Messages are declared prior to program execution (paper, Section 2.1);
/// a `MessageId` indexes the declaration table of a
/// [`Program`](crate::Program).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MessageId(u32);

impl MessageId {
    /// Creates a message id from a declaration-table index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        MessageId(index)
    }

    /// Returns the underlying declaration-table index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for MessageId {
    fn from(v: u32) -> Self {
        MessageId(v)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An *interval*: the link between two adjacent cells (paper, Section 2.3).
///
/// Intervals are undirected; the pair is stored normalized with the smaller
/// cell id first so that `Interval::new(a, b) == Interval::new(b, a)`.
///
/// # Examples
///
/// ```
/// use systolic_model::{CellId, Interval};
/// let i = Interval::new(CellId::new(3), CellId::new(2));
/// assert_eq!(i.lo(), CellId::new(2));
/// assert_eq!(i.hi(), CellId::new(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Interval {
    lo: CellId,
    hi: CellId,
}

impl Interval {
    /// Creates the interval between two cells, normalizing the order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`: a cell has no interval with itself.
    #[must_use]
    pub fn new(a: CellId, b: CellId) -> Self {
        assert!(a != b, "an interval requires two distinct cells");
        if a < b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// The endpoint with the smaller cell id.
    #[must_use]
    pub const fn lo(self) -> CellId {
        self.lo
    }

    /// The endpoint with the larger cell id.
    #[must_use]
    pub const fn hi(self) -> CellId {
        self.hi
    }

    /// Returns `true` if `cell` is one of the interval's endpoints.
    #[must_use]
    pub fn touches(self, cell: CellId) -> bool {
        self.lo == cell || self.hi == cell
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not an endpoint of this interval.
    #[must_use]
    pub fn other(self, cell: CellId) -> CellId {
        if cell == self.lo {
            self.hi
        } else if cell == self.hi {
            self.lo
        } else {
            panic!("{cell} is not an endpoint of {self}")
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.lo, self.hi)
    }
}

/// A directed crossing of an interval: one hop of a message's route.
///
/// Two messages *compete* when they cross the same interval in the same
/// direction (paper, Section 2.3), so the direction matters and is kept
/// distinct from the undirected [`Interval`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Hop {
    from: CellId,
    to: CellId,
}

impl Hop {
    /// Creates a directed hop between two (adjacent) cells.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    #[must_use]
    pub fn new(from: CellId, to: CellId) -> Self {
        assert!(from != to, "a hop requires two distinct cells");
        Hop { from, to }
    }

    /// Source cell of the hop.
    #[must_use]
    pub const fn from(self) -> CellId {
        self.from
    }

    /// Destination cell of the hop.
    #[must_use]
    pub const fn to(self) -> CellId {
        self.to
    }

    /// The undirected interval this hop crosses.
    #[must_use]
    pub fn interval(self) -> Interval {
        Interval::new(self.from, self.to)
    }

    /// The same interval crossed in the opposite direction.
    #[must_use]
    pub fn reversed(self) -> Hop {
        Hop {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Identifier of one physical queue within an interval's pool.
///
/// The hardware provides a fixed number of queues per interval (paper,
/// Section 2.3); `index` selects one of them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueueId {
    interval: Interval,
    index: u32,
}

impl QueueId {
    /// Creates a queue id for queue number `index` of `interval`.
    #[must_use]
    pub const fn new(interval: Interval, index: u32) -> Self {
        QueueId { interval, index }
    }

    /// The interval this queue belongs to.
    #[must_use]
    pub const fn interval(self) -> Interval {
        self.interval
    }

    /// The queue's index within its interval's pool.
    #[must_use]
    pub const fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.interval, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_id_roundtrip() {
        let c = CellId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.as_u32(), 7);
        assert_eq!(CellId::from(7), c);
        assert_eq!(c.to_string(), "c7");
    }

    #[test]
    fn message_id_roundtrip() {
        let m = MessageId::new(3);
        assert_eq!(m.index(), 3);
        assert_eq!(MessageId::from(3), m);
        assert_eq!(m.to_string(), "m3");
    }

    #[test]
    fn interval_normalizes_order() {
        let a = CellId::new(1);
        let b = CellId::new(2);
        assert_eq!(Interval::new(a, b), Interval::new(b, a));
        assert_eq!(Interval::new(b, a).lo(), a);
        assert_eq!(Interval::new(b, a).hi(), b);
    }

    #[test]
    #[should_panic(expected = "two distinct cells")]
    fn interval_rejects_self_loop() {
        let _ = Interval::new(CellId::new(1), CellId::new(1));
    }

    #[test]
    fn interval_other_endpoint() {
        let i = Interval::new(CellId::new(0), CellId::new(1));
        assert_eq!(i.other(CellId::new(0)), CellId::new(1));
        assert_eq!(i.other(CellId::new(1)), CellId::new(0));
        assert!(i.touches(CellId::new(0)));
        assert!(!i.touches(CellId::new(2)));
    }

    #[test]
    fn hop_interval_and_reverse() {
        let h = Hop::new(CellId::new(3), CellId::new(2));
        assert_eq!(h.interval(), Interval::new(CellId::new(2), CellId::new(3)));
        assert_eq!(h.reversed().from(), CellId::new(2));
        assert_eq!(h.to_string(), "c3->c2");
    }

    #[test]
    fn queue_id_display() {
        let q = QueueId::new(Interval::new(CellId::new(0), CellId::new(1)), 2);
        assert_eq!(q.to_string(), "c0-c1#2");
        assert_eq!(q.index(), 2);
    }
}
