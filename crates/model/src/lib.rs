//! Program, message, topology and routing model for systolic communication.
//!
//! This crate is the shared substrate of the reproduction of H.T. Kung,
//! *Deadlock Avoidance for Systolic Communication* (1988). It provides the
//! paper's Section 2 abstractions:
//!
//! * **cells** ([`CellId`]) — processing elements of an array of any
//!   dimensionality; the host is treated as a cell;
//! * **messages** ([`MessageDecl`]) — word sequences with a declared sender
//!   and receiver, declared prior to execution;
//! * **programs** ([`Program`]) — one op list per cell, restricted to the
//!   `R(X)`/`W(X)` operations ([`Op`]) the deadlock-avoidance machinery
//!   inspects;
//! * **topologies** ([`Topology`]) — linear arrays, rings, 2-D meshes and
//!   arbitrary graphs, with deterministic minimum-length routing;
//! * **routes** ([`Route`], [`MessageRoutes`]) — the interval crossings of
//!   each message, which determine competition for queues.
//!
//! Programs can be built fluently ([`ProgramBuilder`]) or parsed from a small
//! text format ([`parse_program`]) that mirrors the paper's figures.
//!
//! # Examples
//!
//! Fig. 6 of the paper — messages forming a cycle, program still fine:
//!
//! ```
//! use systolic_model::{parse_program, MessageRoutes, Topology};
//!
//! # fn main() -> Result<(), systolic_model::ModelError> {
//! let program = parse_program(
//!     "cells 4\n\
//!      message A: c0 -> c1\n\
//!      message B: c1 -> c2\n\
//!      message C: c2 -> c3\n\
//!      message D: c3 -> c0\n\
//!      program c0 { W(A) R(D) }\n\
//!      program c1 { R(A) W(B) }\n\
//!      program c2 { R(B) W(C) }\n\
//!      program c3 { R(C) W(D) }\n",
//! )?;
//! let routes = MessageRoutes::compute(&program, &Topology::linear(4))?;
//! // D must travel back across every interval of the linear array.
//! let d = program.message_id("D").unwrap();
//! assert_eq!(routes.route(d).num_hops(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod builder;
mod display;
mod error;
mod hash;
mod ids;
mod message;
mod op;
mod parse;
mod program;
mod route;
mod topology;

pub use builder::{CellRef, ProgramBuilder};
pub use display::{program_to_text, side_by_side};
pub use error::ModelError;
pub use hash::{CanonicalHash, ContentHasher};
pub use ids::{CellId, Hop, Interval, MessageId, QueueId};
pub use message::MessageDecl;
pub use op::{Op, OpKind};
pub use parse::parse_program;
pub use program::{CellProgram, Program};
pub use route::{MessageRoutes, Route};
pub use topology::{Topology, MAX_SPEC_CELLS};
