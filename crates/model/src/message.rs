//! Message declarations (paper, Section 2.1).
//!
//! A message is a sequence of words sent from one cell (the *sender*) to
//! another (the *receiver*). All messages are declared prior to program
//! execution; the declaration identifies the sender and receiver of every
//! message the program will ever use.

use core::fmt;

use crate::{CellId, MessageId, ModelError};

/// Declaration of one message: its name, sender and receiver.
///
/// The message's *length* (number of words) is not part of the declaration;
/// it is implied by the number of `W` operations in the sender's program and
/// validated against the number of `R` operations in the receiver's.
///
/// # Examples
///
/// ```
/// use systolic_model::{CellId, MessageDecl};
/// let decl = MessageDecl::new("XA", CellId::new(0), CellId::new(1)).unwrap();
/// assert_eq!(decl.name(), "XA");
/// assert_eq!(decl.sender(), CellId::new(0));
/// assert_eq!(decl.receiver(), CellId::new(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MessageDecl {
    name: String,
    sender: CellId,
    receiver: CellId,
}

impl MessageDecl {
    /// Declares a message `name` from `sender` to `receiver`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SelfMessage`] if `sender == receiver`; a cell
    /// does not send messages to itself under the systolic model.
    pub fn new(
        name: impl Into<String>,
        sender: CellId,
        receiver: CellId,
    ) -> Result<Self, ModelError> {
        if sender == receiver {
            return Err(ModelError::SelfMessage {
                message: MessageId::new(0),
                cell: sender,
            });
        }
        Ok(MessageDecl {
            name: name.into(),
            sender,
            receiver,
        })
    }

    /// The message's declared name (e.g. `"XA"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell at which the message originates.
    #[must_use]
    pub const fn sender(&self) -> CellId {
        self.sender
    }

    /// The cell at which the message terminates.
    #[must_use]
    pub const fn receiver(&self) -> CellId {
        self.receiver
    }
}

impl fmt::Display for MessageDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.name, self.sender, self.receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_and_displays() {
        let d = MessageDecl::new("YB", CellId::new(2), CellId::new(1)).unwrap();
        assert_eq!(d.to_string(), "YB: c2 -> c1");
    }

    #[test]
    fn rejects_self_message() {
        let err = MessageDecl::new("A", CellId::new(1), CellId::new(1)).unwrap_err();
        assert!(matches!(err, ModelError::SelfMessage { .. }));
    }
}
