//! Text format for programs, mirroring the paper's figures.
//!
//! The grammar (one directive per line, `#` starts a comment):
//!
//! ```text
//! cells host c1 c2 c3          # names, or `cells 4` for c0..c3
//! message XA: host -> c1
//! message YA: c1 -> host
//! program host { W(XA)*3 R(YA) W(XA) R(YA) }
//! program c1 {
//!     R(XA) W(XA)              # blocks may span lines
//! }
//! ```
//!
//! `OP(MSG)*N` repeats an operation `N` times — the paper's `W(X)…`
//! sequence notation from Fig. 7.

use crate::{ModelError, Program, ProgramBuilder};

/// Parses a program from the text format above.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] (with a 1-based line number) for syntax
/// errors, and any [`Program`] validation error for semantic ones.
///
/// # Examples
///
/// ```
/// use systolic_model::parse_program;
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let p = parse_program(
///     "cells 2\n\
///      message A: c0 -> c1\n\
///      program c0 { W(A)*2 }\n\
///      program c1 { R(A) R(A) }\n",
/// )?;
/// assert_eq!(p.total_words(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_program(text: &str) -> Result<Program, ModelError> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, raw)| {
                let stripped = raw.split('#').next().unwrap_or("").trim();
                (i + 1, stripped)
            })
            .filter(|(_, s)| !s.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err(line: usize, message: impl Into<String>) -> ModelError {
        ModelError::Parse {
            line,
            message: message.into(),
        }
    }

    fn parse(mut self) -> Result<Program, ModelError> {
        let builder = self.parse_cells()?;
        let mut builder = builder;
        while self.pos < self.lines.len() {
            let (line, text) = self.lines[self.pos];
            if let Some(rest) = text.strip_prefix("message ") {
                Self::parse_message(&mut builder, line, rest)?;
                self.pos += 1;
            } else if let Some(rest) = text.strip_prefix("program ") {
                self.parse_program_block(&mut builder, line, rest)?;
            } else {
                return Err(Self::err(
                    line,
                    format!("expected `message` or `program`, found `{text}`"),
                ));
            }
        }
        builder.build()
    }

    fn parse_cells(&mut self) -> Result<ProgramBuilder, ModelError> {
        let Some(&(line, text)) = self.lines.first() else {
            return Err(Self::err(1, "empty program text"));
        };
        let Some(rest) = text.strip_prefix("cells ") else {
            return Err(Self::err(line, "first directive must be `cells`"));
        };
        self.pos = 1;
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        if tokens.is_empty() {
            return Err(Self::err(line, "`cells` needs a count or a name list"));
        }
        if tokens.len() == 1 {
            if let Ok(n) = tokens[0].parse::<usize>() {
                if n == 0 {
                    return Err(Self::err(line, "an array needs at least one cell"));
                }
                return Ok(ProgramBuilder::new(n));
            }
        }
        let mut b = ProgramBuilder::new(tokens.len());
        b.name_cells(tokens);
        Ok(b)
    }

    fn parse_message(
        builder: &mut ProgramBuilder,
        line: usize,
        rest: &str,
    ) -> Result<(), ModelError> {
        // Syntax: NAME: SENDER -> RECEIVER
        let (name, route) = rest
            .split_once(':')
            .ok_or_else(|| Self::err(line, "expected `message NAME: SENDER -> RECEIVER`"))?;
        let (sender, receiver) = route
            .split_once("->")
            .ok_or_else(|| Self::err(line, "expected `SENDER -> RECEIVER`"))?;
        let (name, sender, receiver) = (name.trim(), sender.trim(), receiver.trim());
        if name.is_empty() || sender.is_empty() || receiver.is_empty() {
            return Err(Self::err(
                line,
                "message name, sender and receiver must be nonempty",
            ));
        }
        builder.message(name, sender, receiver)?;
        Ok(())
    }

    /// Parses `program NAME { ops… }`, where the block may span lines.
    fn parse_program_block(
        &mut self,
        builder: &mut ProgramBuilder,
        first_line: usize,
        rest: &str,
    ) -> Result<(), ModelError> {
        let (cell_name, after_brace) = rest
            .split_once('{')
            .ok_or_else(|| Self::err(first_line, "expected `program NAME { ... }`"))?;
        let cell_name = cell_name.trim().to_owned();
        if cell_name.is_empty() {
            return Err(Self::err(first_line, "program block needs a cell name"));
        }

        let mut body = String::new();
        let mut closed = false;
        if let Some(before_close) = after_brace.split_once('}') {
            body.push_str(before_close.0);
            if !before_close.1.trim().is_empty() {
                return Err(Self::err(first_line, "unexpected text after `}`"));
            }
            closed = true;
        } else {
            body.push_str(after_brace);
        }
        self.pos += 1;
        while !closed {
            let Some(&(line, text)) = self.lines.get(self.pos) else {
                return Err(Self::err(first_line, "unterminated program block"));
            };
            self.pos += 1;
            if let Some(before_close) = text.split_once('}') {
                body.push(' ');
                body.push_str(before_close.0);
                if !before_close.1.trim().is_empty() {
                    return Err(Self::err(line, "unexpected text after `}`"));
                }
                closed = true;
            } else {
                body.push(' ');
                body.push_str(text);
            }
        }

        for token in body.split_whitespace() {
            Self::parse_op_token(builder, &cell_name, first_line, token)?;
        }
        Ok(())
    }

    /// Parses a single `W(MSG)`, `R(MSG)` or `OP(MSG)*N` token.
    fn parse_op_token(
        builder: &mut ProgramBuilder,
        cell: &str,
        line: usize,
        token: &str,
    ) -> Result<(), ModelError> {
        let (op_part, count) = match token.split_once('*') {
            Some((op, n)) => {
                let n: usize = n
                    .parse()
                    .map_err(|_| Self::err(line, format!("bad repeat count in `{token}`")))?;
                (op, n)
            }
            None => (token, 1),
        };
        let (kind, msg) = op_part
            .strip_suffix(')')
            .and_then(|s| s.split_once('('))
            .ok_or_else(|| Self::err(line, format!("bad op token `{token}`")))?;
        let msg = msg.trim();
        match kind.trim() {
            "W" => builder.write_n(cell, msg, count)?,
            "R" => builder.read_n(cell, msg, count)?,
            other => {
                return Err(Self::err(
                    line,
                    format!("unknown op `{other}` in `{token}`"),
                ));
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellId, MessageId};

    #[test]
    fn parses_named_cells_and_messages() {
        let p = parse_program(
            "cells host c1\n\
             message A: host -> c1\n\
             program host { W(A) }\n\
             program c1 { R(A) }\n",
        )
        .unwrap();
        assert_eq!(p.cell_name(CellId::new(0)), "host");
        assert_eq!(p.word_count(MessageId::new(0)), 1);
    }

    #[test]
    fn parses_count_form_and_repeats() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             program c0 { W(A)*5 }\n\
             program c1 { R(A)*5 }\n",
        )
        .unwrap();
        assert_eq!(p.word_count(MessageId::new(0)), 5);
    }

    #[test]
    fn parses_multiline_blocks_and_comments() {
        let p = parse_program(
            "# Fig. 6 of the paper\n\
             cells 4\n\
             message A: c0 -> c1\n\
             message B: c1 -> c2\n\
             message C: c2 -> c3\n\
             message D: c3 -> c0\n\
             program c0 {\n\
                 W(A)   # write first\n\
                 R(D)\n\
             }\n\
             program c1 { R(A) W(B) }\n\
             program c2 { R(B) W(C) }\n\
             program c3 { R(C) W(D) }\n",
        )
        .unwrap();
        assert_eq!(p.total_words(), 4);
        assert_eq!(p.cell(CellId::new(0)).len(), 2);
    }

    #[test]
    fn error_carries_line_numbers() {
        let err = parse_program("cells 2\nbogus directive\n").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_cells_directive() {
        let err = parse_program("message A: c0 -> c1\n").unwrap_err();
        assert!(matches!(err, ModelError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_op_tokens() {
        for bad in ["X(A)", "W[A]", "W(A)*x", "W(A", "W"] {
            let text = format!(
                "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ {bad} }}\nprogram c1 {{ R(A) }}\n"
            );
            let err = parse_program(&text).unwrap_err();
            assert!(
                matches!(err, ModelError::Parse { .. }),
                "`{bad}` should be a parse error, got {err:?}"
            );
        }
    }

    #[test]
    fn rejects_unterminated_block() {
        let err = parse_program("cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)\n").unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }

    #[test]
    fn rejects_trailing_garbage_after_close() {
        let err =
            parse_program("cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) } extra\n").unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }

    #[test]
    fn semantic_errors_surface_from_build() {
        let err = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::WordCountMismatch { .. }));
    }

    #[test]
    fn zero_cells_rejected() {
        let err = parse_program("cells 0\n").unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }
}
