//! Fluent construction of [`Program`]s (C-BUILDER).

use crate::{CellId, CellProgram, MessageDecl, MessageId, ModelError, Op, Program};

/// A value that can name a cell while building: a [`CellId`], a raw index,
/// or a cell name string.
pub trait CellRef {
    /// Resolves to a concrete [`CellId`] against the builder's cell table.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownCell`] or [`ModelError::CellOutOfRange`]
    /// if the reference does not resolve.
    fn resolve(&self, builder: &ProgramBuilder) -> Result<CellId, ModelError>;
}

impl CellRef for CellId {
    fn resolve(&self, builder: &ProgramBuilder) -> Result<CellId, ModelError> {
        if self.index() < builder.cells.len() {
            Ok(*self)
        } else {
            Err(ModelError::CellOutOfRange {
                cell: *self,
                num_cells: builder.cells.len(),
            })
        }
    }
}

impl CellRef for u32 {
    fn resolve(&self, builder: &ProgramBuilder) -> Result<CellId, ModelError> {
        CellId::new(*self).resolve(builder)
    }
}

impl CellRef for &str {
    fn resolve(&self, builder: &ProgramBuilder) -> Result<CellId, ModelError> {
        builder
            .cells
            .iter()
            .position(|(n, _)| n == self)
            .map(|i| CellId::new(i as u32))
            .ok_or_else(|| ModelError::UnknownCell {
                name: (*self).to_owned(),
            })
    }
}

/// Incrementally builds a validated [`Program`].
///
/// Cells are created up front (with default names `c0`, `c1`, …, optionally
/// renamed); messages are declared with [`ProgramBuilder::message`]; ops are
/// appended with [`ProgramBuilder::write`] / [`ProgramBuilder::read`] (or
/// their `*_n` repetition variants, handy for the paper's `W(X)…` sequences).
/// [`ProgramBuilder::build`] runs full [`Program`] validation.
///
/// # Examples
///
/// Fig. 6 of the paper — messages form a cycle yet the program is fine:
///
/// ```
/// use systolic_model::ProgramBuilder;
///
/// # fn main() -> Result<(), systolic_model::ModelError> {
/// let mut b = ProgramBuilder::new(4);
/// b.message("A", 0, 1)?;
/// b.message("B", 1, 2)?;
/// b.message("C", 2, 3)?;
/// b.message("D", 3, 0)?;
/// b.write(0, "A")?.read(0, "D")?;
/// b.read(1, "A")?.write(1, "B")?;
/// b.read(2, "B")?.write(2, "C")?;
/// b.read(3, "C")?.write(3, "D")?;
/// let program = b.build()?;
/// assert_eq!(program.total_words(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    cells: Vec<(String, Vec<Op>)>,
    messages: Vec<MessageDecl>,
}

impl ProgramBuilder {
    /// Creates a builder for an array of `num_cells` cells named
    /// `c0`…`c{n-1}`.
    #[must_use]
    pub fn new(num_cells: usize) -> Self {
        ProgramBuilder {
            cells: (0..num_cells)
                .map(|i| (format!("c{i}"), Vec::new()))
                .collect(),
            messages: Vec::new(),
        }
    }

    /// Renames all cells at once (e.g. `["host", "c1", "c2", "c3"]`).
    ///
    /// # Panics
    ///
    /// Panics if the number of names differs from the number of cells.
    pub fn name_cells<S: Into<String>>(&mut self, names: impl IntoIterator<Item = S>) -> &mut Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(
            names.len(),
            self.cells.len(),
            "must provide exactly one name per cell"
        );
        for (slot, name) in self.cells.iter_mut().zip(names) {
            slot.0 = name;
        }
        self
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Declares a message and returns its id.
    ///
    /// # Errors
    ///
    /// Fails if `sender`/`receiver` do not resolve, if they are equal, or if
    /// `name` is already declared.
    pub fn message(
        &mut self,
        name: impl Into<String>,
        sender: impl CellRef,
        receiver: impl CellRef,
    ) -> Result<MessageId, ModelError> {
        let name = name.into();
        if self.messages.iter().any(|m| m.name() == name) {
            return Err(ModelError::DuplicateMessage { name });
        }
        let s = sender.resolve(self)?;
        let r = receiver.resolve(self)?;
        let decl = MessageDecl::new(name, s, r)?;
        self.messages.push(decl);
        Ok(MessageId::new((self.messages.len() - 1) as u32))
    }

    /// Looks up a previously declared message by name.
    #[must_use]
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.messages
            .iter()
            .position(|m| m.name() == name)
            .map(|i| MessageId::new(i as u32))
    }

    fn resolve_message(&self, name: &str) -> Result<MessageId, ModelError> {
        self.message_id(name)
            .ok_or_else(|| ModelError::UnknownMessage {
                name: name.to_owned(),
            })
    }

    /// Appends one `W(message)` to `cell`'s program.
    ///
    /// # Errors
    ///
    /// Fails if the cell or message does not resolve.
    pub fn write(&mut self, cell: impl CellRef, message: &str) -> Result<&mut Self, ModelError> {
        self.write_n(cell, message, 1)
    }

    /// Appends one `R(message)` to `cell`'s program.
    ///
    /// # Errors
    ///
    /// Fails if the cell or message does not resolve.
    pub fn read(&mut self, cell: impl CellRef, message: &str) -> Result<&mut Self, ModelError> {
        self.read_n(cell, message, 1)
    }

    /// Appends `n` consecutive `W(message)` ops — the paper's `W(X)…`
    /// sequence notation (Fig. 7).
    ///
    /// # Errors
    ///
    /// Fails if the cell or message does not resolve.
    pub fn write_n(
        &mut self,
        cell: impl CellRef,
        message: &str,
        n: usize,
    ) -> Result<&mut Self, ModelError> {
        let c = cell.resolve(self)?;
        let m = self.resolve_message(message)?;
        self.cells[c.index()]
            .1
            .extend(std::iter::repeat_n(Op::write(m), n));
        Ok(self)
    }

    /// Appends `n` consecutive `R(message)` ops.
    ///
    /// # Errors
    ///
    /// Fails if the cell or message does not resolve.
    pub fn read_n(
        &mut self,
        cell: impl CellRef,
        message: &str,
        n: usize,
    ) -> Result<&mut Self, ModelError> {
        let c = cell.resolve(self)?;
        let m = self.resolve_message(message)?;
        self.cells[c.index()]
            .1
            .extend(std::iter::repeat_n(Op::read(m), n));
        Ok(self)
    }

    /// Appends an already-constructed op to `cell`'s program.
    ///
    /// # Errors
    ///
    /// Fails if the cell does not resolve. (The op's message is validated at
    /// [`ProgramBuilder::build`] time.)
    pub fn push_op(&mut self, cell: impl CellRef, op: Op) -> Result<&mut Self, ModelError> {
        let c = cell.resolve(self)?;
        self.cells[c.index()].1.push(op);
        Ok(self)
    }

    /// Finishes construction, running full [`Program`] validation.
    ///
    /// # Errors
    ///
    /// Propagates every [`Program::new`] validation error.
    pub fn build(&self) -> Result<Program, ModelError> {
        let (names, ops): (Vec<String>, Vec<Vec<Op>>) = self.cells.iter().cloned().unzip();
        Program::new(
            names,
            self.messages.clone(),
            ops.into_iter().map(CellProgram::new).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_by_index_and_name() {
        let mut b = ProgramBuilder::new(3);
        b.name_cells(["host", "c1", "c2"]);
        b.message("XA", "host", "c1").unwrap();
        b.message("XB", 1u32, 2u32).unwrap();
        b.write_n("host", "XA", 2).unwrap();
        b.read("c1", "XA").unwrap().read(1u32, "XA").unwrap();
        b.write("c1", "XB").unwrap().write("c1", "XB").unwrap();
        b.read_n("c2", "XB", 2).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.cell_name(CellId::new(0)), "host");
        assert_eq!(p.word_count(MessageId::new(0)), 2);
        assert_eq!(p.word_count(MessageId::new(1)), 2);
    }

    #[test]
    fn unknown_cell_name_fails() {
        let mut b = ProgramBuilder::new(2);
        let err = b.message("A", "nope", "c1").unwrap_err();
        assert!(matches!(err, ModelError::UnknownCell { .. }));
    }

    #[test]
    fn out_of_range_index_fails() {
        let mut b = ProgramBuilder::new(2);
        let err = b.message("A", 5u32, 1u32).unwrap_err();
        assert!(matches!(err, ModelError::CellOutOfRange { .. }));
    }

    #[test]
    fn duplicate_message_fails_eagerly() {
        let mut b = ProgramBuilder::new(2);
        b.message("A", 0u32, 1u32).unwrap();
        let err = b.message("A", 1u32, 0u32).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateMessage { .. }));
    }

    #[test]
    fn unknown_message_in_op_fails() {
        let mut b = ProgramBuilder::new(2);
        let err = b.write(0u32, "ghost").unwrap_err();
        assert!(matches!(err, ModelError::UnknownMessage { .. }));
    }

    #[test]
    fn build_runs_full_validation() {
        let mut b = ProgramBuilder::new(2);
        b.message("A", 0u32, 1u32).unwrap();
        b.write(0u32, "A").unwrap();
        // missing the matching read
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::WordCountMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "one name per cell")]
    fn name_cells_wrong_arity_panics() {
        let mut b = ProgramBuilder::new(2);
        b.name_cells(["only-one"]);
    }
}
