//! Read and write operations — the only statements the deadlock-avoidance
//! machinery needs to see (paper, Section 2.2).

use core::fmt;

use crate::MessageId;

/// The kind of an operation: read or write.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// `R(X)`: read one word from the front of message X's queue.
    Read,
    /// `W(X)`: write one word to the back of message X's queue.
    Write,
}

impl OpKind {
    /// The complementary kind (`Read` ↔ `Write`).
    #[must_use]
    pub const fn opposite(self) -> OpKind {
        match self {
            OpKind::Read => OpKind::Write,
            OpKind::Write => OpKind::Read,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("R"),
            OpKind::Write => f.write_str("W"),
        }
    }
}

/// One statement of a cell program: `R(X)` or `W(X)` on a declared message.
///
/// Per the paper's abstraction, computation statements are dropped — the
/// deadlock-avoidance strategy "uses only syntactic information in a program
/// given by the write and read operations to messages" (Section 2.2), and all
/// operations are assumed known at compile time (data-independent control).
///
/// # Examples
///
/// ```
/// use systolic_model::{MessageId, Op, OpKind};
/// let op = Op::write(MessageId::new(0));
/// assert_eq!(op.kind(), OpKind::Write);
/// assert_eq!(op.message(), MessageId::new(0));
/// assert!(op.is_write());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Op {
    kind: OpKind,
    message: MessageId,
}

impl Op {
    /// Creates an operation of the given kind on `message`.
    #[must_use]
    pub const fn new(kind: OpKind, message: MessageId) -> Self {
        Op { kind, message }
    }

    /// Creates `R(message)`.
    #[must_use]
    pub const fn read(message: MessageId) -> Self {
        Op::new(OpKind::Read, message)
    }

    /// Creates `W(message)`.
    #[must_use]
    pub const fn write(message: MessageId) -> Self {
        Op::new(OpKind::Write, message)
    }

    /// The operation's kind.
    #[must_use]
    pub const fn kind(self) -> OpKind {
        self.kind
    }

    /// The message operated on.
    #[must_use]
    pub const fn message(self) -> MessageId {
        self.message
    }

    /// `true` for `R(X)`.
    #[must_use]
    pub const fn is_read(self) -> bool {
        matches!(self.kind, OpKind::Read)
    }

    /// `true` for `W(X)`.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self.kind, OpKind::Write)
    }

    /// Returns `true` if `self` and `other` form a candidate executable pair:
    /// a write and a read on the *same* message (paper, Section 3.1).
    ///
    /// Whether the pair is actually executable also depends on both
    /// operations being at the front of their cell programs; that positional
    /// check lives in the analysis crate.
    #[must_use]
    pub fn pairs_with(self, other: Op) -> bool {
        self.message == other.message && self.kind == other.kind.opposite()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = MessageId::new(5);
        let r = Op::read(m);
        let w = Op::write(m);
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
        assert_eq!(r.message(), m);
        assert_eq!(w.kind(), OpKind::Write);
    }

    #[test]
    fn opposite_kind() {
        assert_eq!(OpKind::Read.opposite(), OpKind::Write);
        assert_eq!(OpKind::Write.opposite(), OpKind::Read);
    }

    #[test]
    fn pairing_requires_same_message_opposite_kind() {
        let a = MessageId::new(0);
        let b = MessageId::new(1);
        assert!(Op::read(a).pairs_with(Op::write(a)));
        assert!(Op::write(a).pairs_with(Op::read(a)));
        assert!(!Op::read(a).pairs_with(Op::read(a)));
        assert!(!Op::write(a).pairs_with(Op::write(a)));
        assert!(!Op::read(a).pairs_with(Op::write(b)));
    }

    #[test]
    fn display_matches_paper_notation() {
        let m = MessageId::new(2);
        assert_eq!(Op::read(m).to_string(), "R(m2)");
        assert_eq!(Op::write(m).to_string(), "W(m2)");
    }
}
