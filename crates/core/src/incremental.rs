//! Incremental reanalysis: dirty-tracked analyzer sessions.
//!
//! The staged [`Analyzer`] memoizes within one session, and the serving
//! layer's plan cache hits on byte-identical requests — but an interactive
//! client iterating on *one* program still pays full pipeline cost per
//! keystroke. This module makes that cost proportional to the edit:
//!
//! * [`EditOp`] — the edit vocabulary: append/remove ops at cell-program
//!   tails, add/remove links on searchable (graph) topologies;
//! * [`SessionDelta`] — applies a batch of edits to a base program,
//!   producing the edited [`Program`]/[`Topology`] plus a [`DirtySet`]
//!   recording exactly which cells, messages and structures changed;
//! * [`IncrementalSession`] — a warm analyzer session: each
//!   [`IncrementalSession::apply`] reuses every stage artifact the dirty
//!   set provably leaves valid (routes, competing sets, a resumed or
//!   wholesale-reused crossing-off classification, an early-stopping
//!   labeling driver) and recomputes the rest, falling back to
//!   from-scratch analysis when the dirty frontier exceeds
//!   [`IncrementalConfig::fallback_ratio`].
//!
//! **Correctness bar:** the incremental path produces byte-identical
//! [`CommPlan`](crate::CommPlan) fingerprints and [`Diagnostics`] to a
//! from-scratch [`Analyzer::diagnose`] of the edited program — held by
//! construction (reused stages are injected into the *same* stage
//! closures, so diagnostics are emitted uniformly) and enforced by the
//! `incremental_parity` property tests. Which stages may be reused when:
//!
//! | stage          | reusable when                                        |
//! |----------------|------------------------------------------------------|
//! | routes         | topology unchanged (edits never touch message decls) |
//! | competing      | topology unchanged (function of routes only)         |
//! | classification | program unchanged (topology-only edit, non-capacity  |
//! |                | lookahead), or *resumed* from the previous run's     |
//! |                | machine snapshot (append-only edit, no lookahead —   |
//! |                | sound by confluence of the crossing-off procedure)   |
//! | labeling       | never wholesale; the assignments-only driver stops   |
//! |                | once every message is labeled (sound after a         |
//! |                | deadlock-free classification)                        |
//!
//! # Examples
//!
//! ```
//! use systolic_core::{
//!     AnalysisConfig, Analyzer, EditOp, IncrementalConfig, IncrementalSession,
//! };
//! use systolic_model::{parse_program, Op, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "cells 4\nmessage A: c0 -> c1\nprogram c0 { W(A)*2 }\nprogram c1 { R(A)*2 }\n",
//! )?;
//! let analyzer = Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default());
//! let mut session =
//!     IncrementalSession::seed(analyzer, program.clone(), IncrementalConfig::default());
//! assert!(session.outcome().is_certified());
//!
//! // Append one more word of A: only the tail of each cell is re-crossed.
//! let a = program.message_id("A").unwrap();
//! let (c0, c1) = (program.cell_id("c0").unwrap(), program.cell_id("c1").unwrap());
//! let report = session.apply(&[
//!     EditOp::AppendOp { cell: c0, op: Op::write(a) },
//!     EditOp::AppendOp { cell: c1, op: Op::read(a) },
//! ])?;
//! assert!(report.resumed_classification);
//! assert!(session.outcome().is_certified());
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use systolic_model::{CellId, CellProgram, MessageId, ModelError, Op, Program, Topology};
use systolic_obs::{names, SpanCtx};

use crate::analyzer::{AnalysisOutcome, SessionSeeds, WarmArtifacts};
use crate::crossing_off::classify_resume;
use crate::{Analyzer, Classification, CompiledTopology, Diagnostics, Lookahead, LookaheadLimits};

/// One edit against an analyzed program or its topology.
///
/// Program edits are restricted to cell-program *tails* — the shape under
/// which the crossing-off machine's end state stays resumable (op
/// positions of the surviving prefix never move). Topology edits apply
/// only to searchable ([`Topology::graph`]) topologies, whose edge set is
/// free-form; the closed-form families (linear/ring/mesh/torus) derive
/// their links from their dimensions and reject link edits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EditOp {
    /// Append `op` at the end of `cell`'s program.
    AppendOp {
        /// The cell whose program grows.
        cell: CellId,
        /// The appended operation.
        op: Op,
    },
    /// Remove the last operation of `cell`'s program.
    RemoveTailOp {
        /// The cell whose program shrinks.
        cell: CellId,
    },
    /// Add an undirected link between `a` and `b` (graph topologies only;
    /// adding an existing link is a no-op, matching
    /// [`Topology::graph`]'s duplicate-edge merging).
    AddLink {
        /// One endpoint.
        a: CellId,
        /// The other endpoint.
        b: CellId,
    },
    /// Remove the undirected link between `a` and `b` (graph topologies
    /// only).
    RemoveLink {
        /// One endpoint.
        a: CellId,
        /// The other endpoint.
        b: CellId,
    },
}

/// Why an edit batch was rejected. Rejected batches leave the session
/// (and its base program/topology) unchanged.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum EditError {
    /// The edited program failed [`Program::new`] validation (e.g. a
    /// message's writes no longer equal its reads). Carries the exact
    /// error a from-scratch construction reports.
    InvalidProgram(ModelError),
    /// The edited edge set failed [`Topology::graph`] validation.
    InvalidTopology(ModelError),
    /// An edit referenced a cell outside the program.
    UnknownCell {
        /// The out-of-range cell.
        cell: CellId,
        /// The program's cell count.
        num_cells: usize,
    },
    /// [`EditOp::RemoveTailOp`] on a cell with no operations.
    EmptyCell {
        /// The empty cell.
        cell: CellId,
    },
    /// A link edit on a closed-form topology (linear/ring/mesh/torus),
    /// whose edge set is derived from its dimensions.
    TopologyNotEditable,
    /// [`EditOp::AddLink`] with both endpoints equal.
    SelfLink {
        /// The offending endpoint.
        cell: CellId,
    },
    /// [`EditOp::RemoveLink`] on a link that does not exist.
    NoSuchLink {
        /// One endpoint.
        a: CellId,
        /// The other endpoint.
        b: CellId,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::InvalidProgram(e) => write!(f, "edited program is invalid: {e}"),
            EditError::InvalidTopology(e) => write!(f, "edited topology is invalid: {e}"),
            EditError::UnknownCell { cell, num_cells } => {
                write!(
                    f,
                    "edit references {cell} but the program has {num_cells} cells"
                )
            }
            EditError::EmptyCell { cell } => {
                write!(
                    f,
                    "cannot remove an operation from {cell}: its program is empty"
                )
            }
            EditError::TopologyNotEditable => write!(
                f,
                "link edits require a graph topology; closed-form topologies derive \
                 their links from their dimensions"
            ),
            EditError::SelfLink { cell } => {
                write!(f, "cannot add a link from {cell} to itself")
            }
            EditError::NoSuchLink { a, b } => {
                write!(f, "no link between {a} and {b} to remove")
            }
        }
    }
}

impl std::error::Error for EditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EditError::InvalidProgram(e) | EditError::InvalidTopology(e) => Some(e),
            _ => None,
        }
    }
}

/// What an edit batch invalidated: the dirty cells/messages plus whether
/// the topology changed or any operation was removed — exactly the facts
/// the reuse rules described in the module docs consult.
#[derive(Clone, Debug)]
pub struct DirtySet {
    cells: Vec<bool>,
    count: usize,
    messages: Vec<MessageId>,
    topology: bool,
    removals: bool,
}

impl DirtySet {
    fn clean(num_cells: usize) -> Self {
        DirtySet {
            cells: vec![false; num_cells],
            count: 0,
            messages: Vec::new(),
            topology: false,
            removals: false,
        }
    }

    fn mark(&mut self, cell: CellId, message: MessageId) {
        if !self.cells[cell.index()] {
            self.cells[cell.index()] = true;
            self.count += 1;
        }
        if !self.messages.contains(&message) {
            self.messages.push(message);
        }
    }

    /// `true` if `cell`'s program was edited.
    #[must_use]
    pub fn is_dirty(&self, cell: CellId) -> bool {
        self.cells.get(cell.index()).copied().unwrap_or(false)
    }

    /// Number of cells whose programs were edited.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Dirty cells as a fraction of all cells — what
    /// [`IncrementalConfig::fallback_ratio`] is compared against.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.count as f64 / self.cells.len() as f64
        }
    }

    /// Messages touched by the edited operations, in first-touch order.
    #[must_use]
    pub fn messages(&self) -> &[MessageId] {
        &self.messages
    }

    /// `true` if any link was added or removed.
    #[must_use]
    pub fn topology_dirty(&self) -> bool {
        self.topology
    }

    /// `true` if any operation was removed (removals forfeit the
    /// snapshot-resume path: the crossing-off machine cannot un-cross).
    #[must_use]
    pub fn has_removals(&self) -> bool {
        self.removals
    }
}

/// A validated edit batch: the edited program (and topology, for link
/// edits) plus the [`DirtySet`] it implies.
///
/// Construction applies *all* edits transactionally — any invalid edit
/// rejects the whole batch with an [`EditError`] and the base inputs are
/// untouched. Program-level invariants (balanced word counts, ops in
/// their declared cells) are re-checked by the same [`Program::new`]
/// validation a from-scratch build runs, so rejection outcomes are
/// byte-identical to rebuilding by hand.
#[derive(Clone, Debug)]
pub struct SessionDelta {
    program: Program,
    topology: Option<Topology>,
    dirty: DirtySet,
}

impl SessionDelta {
    /// Applies `edits` (in order) to `base` over `topology`.
    ///
    /// # Errors
    ///
    /// Any [`EditError`]; the batch is all-or-nothing.
    pub fn compute(
        base: &Program,
        topology: &Topology,
        edits: &[EditOp],
    ) -> Result<SessionDelta, EditError> {
        let num_cells = base.num_cells();
        let mut cells: Vec<Vec<Op>> = base.cells().iter().map(|cp| cp.ops().to_vec()).collect();
        let mut dirty = DirtySet::clean(num_cells);
        // Lazily materialized undirected edge set, only for link edits.
        let mut edges: Option<BTreeSet<(usize, usize)>> = None;
        for &edit in edits {
            match edit {
                EditOp::AppendOp { cell, op } => {
                    let ops = cells
                        .get_mut(cell.index())
                        .ok_or(EditError::UnknownCell { cell, num_cells })?;
                    ops.push(op);
                    dirty.mark(cell, op.message());
                }
                EditOp::RemoveTailOp { cell } => {
                    let ops = cells
                        .get_mut(cell.index())
                        .ok_or(EditError::UnknownCell { cell, num_cells })?;
                    let op = ops.pop().ok_or(EditError::EmptyCell { cell })?;
                    dirty.removals = true;
                    dirty.mark(cell, op.message());
                }
                EditOp::AddLink { a, b } => {
                    let edges = Self::link_target(topology, &mut edges, a, b, num_cells)?;
                    if a == b {
                        return Err(EditError::SelfLink { cell: a });
                    }
                    edges.insert(Self::endpoints(a, b));
                    dirty.topology = true;
                }
                EditOp::RemoveLink { a, b } => {
                    let edges = Self::link_target(topology, &mut edges, a, b, num_cells)?;
                    if !edges.remove(&Self::endpoints(a, b)) {
                        return Err(EditError::NoSuchLink { a, b });
                    }
                    dirty.topology = true;
                }
            }
        }
        let cell_names = (0..num_cells)
            .map(|i| base.cell_name(CellId::new(i as u32)).to_owned())
            .collect();
        let cells = cells.into_iter().map(CellProgram::new).collect();
        let program = Program::new(cell_names, base.messages().to_vec(), cells)
            .map_err(EditError::InvalidProgram)?;
        let topology = match edges {
            Some(edges) => Some(
                Topology::graph(
                    num_cells,
                    edges
                        .into_iter()
                        .map(|(a, b)| (CellId::new(a as u32), CellId::new(b as u32))),
                )
                .map_err(EditError::InvalidTopology)?,
            ),
            None => None,
        };
        Ok(SessionDelta {
            program,
            topology,
            dirty,
        })
    }

    fn endpoints(a: CellId, b: CellId) -> (usize, usize) {
        if a.index() <= b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        }
    }

    /// Validates a link edit's endpoints and returns the working edge
    /// set, materializing it from `topology` on first use.
    fn link_target<'e>(
        topology: &Topology,
        edges: &'e mut Option<BTreeSet<(usize, usize)>>,
        a: CellId,
        b: CellId,
        num_cells: usize,
    ) -> Result<&'e mut BTreeSet<(usize, usize)>, EditError> {
        for cell in [a, b] {
            if cell.index() >= num_cells {
                return Err(EditError::UnknownCell { cell, num_cells });
            }
        }
        if !topology.uses_search_routing() {
            return Err(EditError::TopologyNotEditable);
        }
        Ok(edges.get_or_insert_with(|| {
            let mut set = BTreeSet::new();
            for i in 0..topology.num_cells() {
                let from = CellId::new(i as u32);
                for &to in topology.neighbors(from) {
                    if from.index() < to.index() {
                        set.insert((from.index(), to.index()));
                    }
                }
            }
            set
        }))
    }

    /// The edited program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The edited topology, when the batch contained link edits.
    #[must_use]
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// What the batch invalidated.
    #[must_use]
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }
}

/// Tuning knobs for [`IncrementalSession`].
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// When an edit batch dirties more than this fraction of cells, the
    /// session skips artifact reuse and reanalyzes from scratch — at a
    /// wide dirty frontier the bookkeeping buys nothing. `0.0` forces
    /// every edit down the fallback path (useful for differential
    /// testing); `1.0` never falls back.
    pub fallback_ratio: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            fallback_ratio: 0.5,
        }
    }
}

/// Why an edit took the from-scratch path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FallbackReason {
    /// The dirty frontier exceeded [`IncrementalConfig::fallback_ratio`].
    DirtyRatio,
}

impl FallbackReason {
    /// Stable label value for metrics and summaries.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::DirtyRatio => "dirty-ratio",
        }
    }
}

/// What one [`IncrementalSession::apply`] reused, for observability and
/// tests.
#[derive(Clone, Copy, Debug)]
#[must_use]
pub struct ReuseReport {
    /// Cells dirtied by the batch.
    pub dirty_cells: usize,
    /// Total cells in the program.
    pub total_cells: usize,
    /// Messages touched by the batch.
    pub dirty_messages: usize,
    /// The route table was reused unchanged.
    pub reused_routes: bool,
    /// The competing sets were reused unchanged.
    pub reused_competing: bool,
    /// Classification was *resumed* from the previous machine snapshot
    /// (implies [`ReuseReport::seeded_classification`]).
    pub resumed_classification: bool,
    /// Classification was injected instead of recomputed from scratch.
    pub seeded_classification: bool,
    /// The early-stopping labeling driver was used.
    pub fast_labeling: bool,
    /// Set when the edit was analyzed from scratch.
    pub fallback: Option<FallbackReason>,
}

impl ReuseReport {
    /// Dirty cells as a fraction of all cells.
    #[must_use]
    pub fn dirty_ratio(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.dirty_cells as f64 / self.total_cells as f64
        }
    }

    /// `true` if any stage artifact was reused.
    #[must_use]
    pub fn reused_any(&self) -> bool {
        self.reused_routes || self.reused_competing || self.seeded_classification
    }
}

/// A warm, editable analyzer session: the current program, its full
/// [`AnalysisOutcome`], and the per-stage artifacts the next edit can
/// reuse.
///
/// Seed once with [`IncrementalSession::seed`], then [`apply`] edit
/// batches; each apply commits the edited program as the new base (even
/// when the edited program fails analysis — the outcome records the
/// failure exactly as [`Analyzer::diagnose`] would) and returns a
/// [`ReuseReport`]. Invalid batches ([`EditError`]) leave the session
/// untouched.
///
/// [`apply`]: IncrementalSession::apply
#[derive(Debug)]
pub struct IncrementalSession {
    analyzer: Analyzer,
    program: Arc<Program>,
    config: IncrementalConfig,
    outcome: AnalysisOutcome,
    warm: WarmArtifacts,
}

impl IncrementalSession {
    /// Analyzes `program` from scratch and opens a warm session over it.
    pub fn seed(
        analyzer: Analyzer,
        program: impl Into<Arc<Program>>,
        config: IncrementalConfig,
    ) -> IncrementalSession {
        Self::seed_in(analyzer, program, config, None)
    }

    /// [`IncrementalSession::seed`] with a tracing context for the
    /// initial analysis' stage spans.
    pub fn seed_in(
        analyzer: Analyzer,
        program: impl Into<Arc<Program>>,
        config: IncrementalConfig,
        ctx: Option<SpanCtx>,
    ) -> IncrementalSession {
        let program = program.into();
        let seeds = SessionSeeds {
            capture_snapshot: matches!(analyzer.config().lookahead, Lookahead::Disabled),
            ..SessionSeeds::default()
        };
        let (outcome, warm) = analyzer
            .seeded_session(&program, ctx, seeds)
            .finish_incremental();
        IncrementalSession {
            analyzer,
            program,
            config,
            outcome,
            warm,
        }
    }

    /// The current base program (the last committed edit).
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The analyzer the session runs against (its compilation follows
    /// topology edits).
    #[must_use]
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The current analysis outcome (result + diagnostics).
    #[must_use]
    pub fn outcome(&self) -> &AnalysisOutcome {
        &self.outcome
    }

    /// The accumulated diagnostics of the current outcome.
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        self.outcome.diagnostics()
    }

    /// The request fingerprint of the current `(program, topology,
    /// config)` — the key under which serving layers address this
    /// session.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        crate::request_fingerprint(
            &self.program,
            self.analyzer.compiled().topology(),
            self.analyzer.config(),
        )
    }

    /// Applies an edit batch: computes the [`SessionDelta`], reuses every
    /// surviving stage artifact, reanalyzes, and commits the edited
    /// program as the new base.
    ///
    /// # Errors
    ///
    /// [`EditError`] when the batch is invalid; the session is unchanged.
    pub fn apply(&mut self, edits: &[EditOp]) -> Result<ReuseReport, EditError> {
        self.apply_in(edits, None)
    }

    /// [`IncrementalSession::apply`] with a tracing context: reused
    /// stages appear as `reuse:*` spans next to the recomputed stages'
    /// spans.
    ///
    /// # Errors
    ///
    /// As [`IncrementalSession::apply`].
    pub fn apply_in(
        &mut self,
        edits: &[EditOp],
        ctx: Option<SpanCtx>,
    ) -> Result<ReuseReport, EditError> {
        let start = Instant::now();
        let delta =
            SessionDelta::compute(&self.program, self.analyzer.compiled().topology(), edits)?;
        let SessionDelta {
            program,
            topology,
            dirty,
        } = delta;

        let fallback = if dirty.ratio() > self.config.fallback_ratio {
            Some(FallbackReason::DirtyRatio)
        } else {
            None
        };
        let analyzer = match &topology {
            Some(topology) => {
                let config = self.analyzer.config().clone();
                self.analyzer.with_compiled_swapped(
                    CompiledTopology::compile(topology, &config).into_shared(),
                )
            }
            None => self.analyzer.clone(),
        };
        let lookahead = &analyzer.config().lookahead;
        let lookahead_disabled = matches!(lookahead, Lookahead::Disabled);
        let capacity_lookahead = matches!(lookahead, Lookahead::PerQueueCapacity(_));

        let mut seeds = SessionSeeds {
            fast_labeling: true,
            ..SessionSeeds::default()
        };
        let mut report = ReuseReport {
            dirty_cells: dirty.count(),
            total_cells: self.program.num_cells(),
            dirty_messages: dirty.messages().len(),
            reused_routes: false,
            reused_competing: false,
            resumed_classification: false,
            seeded_classification: false,
            fast_labeling: true,
            fallback,
        };
        // A snapshot to carry into the new warm state when the session
        // itself captures none (both classification-reuse paths).
        let mut carried_snapshot = None;

        if fallback.is_none() {
            if !dirty.topology_dirty() {
                // Edits never touch message declarations, so with the
                // topology unchanged the route table — and the competing
                // sets derived from it — are reused byte-for-byte.
                if let Some(routes) = self.warm.routes.clone() {
                    seeds.routes = Some(routes);
                    report.reused_routes = true;
                }
                if let Some(competing) = self.warm.competing.clone() {
                    seeds.competing = Some(competing);
                    report.reused_competing = true;
                }
            }
            if dirty.count() == 0 {
                // Topology-only (or empty) batch: the program is
                // unchanged, and classification reads the topology only
                // through capacity-derived lookahead budgets.
                if !capacity_lookahead {
                    if let Some(classification) = self.warm.classification.clone() {
                        seeds.classification = Some(classification);
                        report.seeded_classification = true;
                        carried_snapshot = self.warm.snapshot.take();
                    }
                }
            } else if !dirty.has_removals() && lookahead_disabled {
                // Append-only program edit without lookahead: resume the
                // crossing-off machine from the previous end state
                // (see `classify_resume` for the confluence argument).
                if self.warm.snapshot.is_some() && self.warm.classification.is_some() {
                    let snapshot = self.warm.snapshot.take().expect("checked above");
                    let base_trace = match self.warm.classification.take().expect("checked above") {
                        Classification::DeadlockFree(trace) => trace,
                        Classification::Deadlocked { trace, .. } => trace,
                    };
                    let limits = LookaheadLimits::disabled(&program);
                    let (resumed, snapshot) =
                        classify_resume(&program, &limits, snapshot, base_trace);
                    seeds.classification = Some(resumed);
                    report.resumed_classification = true;
                    report.seeded_classification = true;
                    carried_snapshot = Some(snapshot);
                }
            }
        }
        if seeds.classification.is_none() && lookahead_disabled {
            // Whatever path recomputes classification also captures a
            // fresh snapshot so the *next* append can resume.
            seeds.capture_snapshot = true;
        }

        if let (Some(obs), Some(ctx)) = (analyzer.obs(), ctx) {
            for (reused, name) in [
                (report.reused_routes, "reuse:routes"),
                (report.seeded_classification, "reuse:classification"),
                (report.reused_competing, "reuse:competing"),
            ] {
                if reused {
                    let span = obs.tracer().start(ctx.trace, Some(ctx.parent), name);
                    obs.tracer().finish(span);
                }
            }
        }

        let program = Arc::new(program);
        let (outcome, mut warm) = analyzer
            .seeded_session(&program, ctx, seeds)
            .finish_incremental();
        if warm.snapshot.is_none() {
            warm.snapshot = carried_snapshot;
        }

        if let Some(obs) = analyzer.obs() {
            let registry = obs.registry();
            registry.counter(names::INCREMENTAL_EDITS).inc();
            registry
                .counter(names::INCREMENTAL_DIRTY_CELLS)
                .add(dirty.count() as u64);
            if let Some(reason) = fallback {
                registry
                    .counter_with(names::INCREMENTAL_FALLBACKS, &[("reason", reason.as_str())])
                    .inc();
            }
            for (reused, stage) in [
                (report.reused_routes, "routes"),
                (report.seeded_classification, "classification"),
                (report.reused_competing, "competing"),
            ] {
                if reused {
                    registry
                        .counter_with(names::INCREMENTAL_STAGE_REUSED, &[("stage", stage)])
                        .inc();
                }
            }
            if report.reused_any() {
                registry.counter(names::INCREMENTAL_HITS).inc();
            }
            registry
                .histogram(names::INCREMENTAL_EDIT_DURATION)
                .record(start.elapsed().as_micros() as u64);
        }

        self.analyzer = analyzer;
        self.program = program;
        self.outcome = outcome;
        self.warm = warm;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisConfig, CoreError};
    use systolic_model::parse_program;

    fn line_session(text: &str, n: usize) -> IncrementalSession {
        let program = parse_program(text).unwrap();
        let analyzer = Analyzer::for_topology(&Topology::linear(n), &AnalysisConfig::default());
        IncrementalSession::seed(analyzer, program, IncrementalConfig::default())
    }

    /// The incremental outcome must equal a from-scratch diagnose of the
    /// session's current program — fingerprints, errors and diagnostics.
    fn assert_parity(session: &IncrementalSession) {
        let fresh = session.analyzer().diagnose(session.program());
        match (session.outcome().result(), fresh.result()) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.plan().fingerprint(), b.plan().fingerprint());
                assert_eq!(a.labeling_method(), b.labeling_method());
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("outcome mismatch: incremental={a:?} fresh={b:?}"),
        }
        assert_eq!(session.outcome().diagnostics(), fresh.diagnostics());
    }

    #[test]
    fn append_resumes_classification_with_identical_outcome() {
        // 4 cells so the two dirty cells stay at ratio 0.5 (no fallback).
        let mut session = line_session(
            "cells 4\nmessage A: c0 -> c1\nprogram c0 { W(A)*3 }\nprogram c1 { R(A)*3 }\n",
            4,
        );
        assert!(session.outcome().is_certified());
        let a = session.program().message_id("A").unwrap();
        let edits = [
            EditOp::AppendOp {
                cell: CellId::new(0),
                op: Op::write(a),
            },
            EditOp::AppendOp {
                cell: CellId::new(1),
                op: Op::read(a),
            },
        ];
        let report = session.apply(&edits).unwrap();
        assert!(report.resumed_classification);
        assert!(report.reused_routes);
        assert!(report.reused_competing);
        assert!(report.fallback.is_none());
        assert_eq!(report.dirty_cells, 2);
        assert_eq!(session.program().total_words(), 4);
        assert_parity(&session);
    }

    #[test]
    fn append_can_fix_a_deadlocked_base() {
        let mut session = line_session(
            "cells 4\nmessage A: c0 -> c1\nmessage B: c1 -> c0\n\
             program c0 { R(B) W(A) }\nprogram c1 { R(A) W(B) }\n",
            4,
        );
        assert!(matches!(
            session.outcome().result(),
            Err(CoreError::ProgramDeadlocked { .. })
        ));
        // Appending cannot fix a deadlock (the stuck fronts stay stuck),
        // but the resumed run must still agree with from-scratch.
        let a = session.program().message_id("A").unwrap();
        let report = session
            .apply(&[
                EditOp::AppendOp {
                    cell: CellId::new(0),
                    op: Op::write(a),
                },
                EditOp::AppendOp {
                    cell: CellId::new(1),
                    op: Op::read(a),
                },
            ])
            .unwrap();
        assert!(report.resumed_classification);
        assert_parity(&session);
    }

    #[test]
    fn removal_skips_resume_but_stays_correct() {
        let mut session = line_session(
            "cells 4\nmessage A: c0 -> c1\nprogram c0 { W(A)*3 }\nprogram c1 { R(A)*3 }\n",
            4,
        );
        let report = session
            .apply(&[
                EditOp::RemoveTailOp {
                    cell: CellId::new(0),
                },
                EditOp::RemoveTailOp {
                    cell: CellId::new(1),
                },
            ])
            .unwrap();
        assert!(!report.resumed_classification);
        assert!(!report.seeded_classification);
        assert!(report.reused_routes);
        assert_eq!(session.program().total_words(), 2);
        assert_parity(&session);
        // The fresh snapshot captured during the removal re-enables
        // resume for the following append.
        let a = session.program().message_id("A").unwrap();
        let report = session
            .apply(&[
                EditOp::AppendOp {
                    cell: CellId::new(0),
                    op: Op::write(a),
                },
                EditOp::AppendOp {
                    cell: CellId::new(1),
                    op: Op::read(a),
                },
            ])
            .unwrap();
        assert!(report.resumed_classification);
        assert_parity(&session);
    }

    #[test]
    fn invalid_batch_is_rejected_and_session_unchanged() {
        let mut session = line_session(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
            2,
        );
        let before = session.fingerprint();
        let a = session.program().message_id("A").unwrap();
        // Unbalanced: one extra write, no matching read.
        let err = session
            .apply(&[EditOp::AppendOp {
                cell: CellId::new(0),
                op: Op::write(a),
            }])
            .unwrap_err();
        assert!(matches!(
            err,
            EditError::InvalidProgram(ModelError::WordCountMismatch { .. })
        ));
        assert_eq!(session.fingerprint(), before);
        // And the exact error matches what Program::new reports.
        let fresh = Program::new(
            vec!["c0".into(), "c1".into()],
            session.program().messages().to_vec(),
            vec![
                CellProgram::new(vec![Op::write(a), Op::write(a)]),
                CellProgram::new(vec![Op::read(a)]),
            ],
        )
        .unwrap_err();
        assert_eq!(err, EditError::InvalidProgram(fresh));
    }

    #[test]
    fn structural_edit_errors() {
        let mut session = line_session(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
            2,
        );
        let a = session.program().message_id("A").unwrap();
        assert!(matches!(
            session.apply(&[EditOp::AppendOp {
                cell: CellId::new(9),
                op: Op::write(a),
            }]),
            Err(EditError::UnknownCell { .. })
        ));
        assert!(matches!(
            session.apply(&[
                EditOp::RemoveTailOp {
                    cell: CellId::new(0)
                },
                EditOp::RemoveTailOp {
                    cell: CellId::new(0)
                },
            ]),
            Err(EditError::EmptyCell { .. })
        ));
        // Link edits on a closed-form topology are refused.
        assert!(matches!(
            session.apply(&[EditOp::AddLink {
                a: CellId::new(0),
                b: CellId::new(1),
            }]),
            Err(EditError::TopologyNotEditable)
        ));
    }

    #[test]
    fn link_edits_reroute_on_graph_topologies() {
        let program = parse_program(
            "cells 3\nmessage A: c0 -> c2\nprogram c0 { W(A)*2 }\nprogram c2 { R(A)*2 }\n",
        )
        .unwrap();
        // c0–c1–c2 chain expressed as a graph, so links are editable.
        let chain = Topology::graph(
            3,
            [
                (CellId::new(0), CellId::new(1)),
                (CellId::new(1), CellId::new(2)),
            ],
        )
        .unwrap();
        let analyzer = Analyzer::for_topology(&chain, &AnalysisConfig::default());
        let mut session = IncrementalSession::seed(analyzer, program, IncrementalConfig::default());
        assert!(session.outcome().is_certified());

        // A direct c0–c2 link shortens A's route: routes/competing must
        // recompute, classification is reused wholesale.
        let report = session
            .apply(&[EditOp::AddLink {
                a: CellId::new(0),
                b: CellId::new(2),
            }])
            .unwrap();
        assert!(!report.reused_routes);
        assert!(report.seeded_classification);
        assert!(!report.resumed_classification);
        assert_parity(&session);
        let direct = session
            .outcome()
            .result()
            .unwrap()
            .plan()
            .routes()
            .route(MessageId::new(0));
        assert_eq!(direct.num_hops(), 1);

        // Removing a link the only route depends on makes A unroutable.
        let report = session
            .apply(&[
                EditOp::RemoveLink {
                    a: CellId::new(0),
                    b: CellId::new(2),
                },
                EditOp::RemoveLink {
                    a: CellId::new(0),
                    b: CellId::new(1),
                },
            ])
            .unwrap();
        assert!(report.fallback.is_none());
        assert!(session.outcome().result().is_err());
        assert_parity(&session);

        // Removing a link that is not there is a structured error.
        assert!(matches!(
            session.apply(&[EditOp::RemoveLink {
                a: CellId::new(0),
                b: CellId::new(2),
            }]),
            Err(EditError::NoSuchLink { .. })
        ));
        assert!(matches!(
            session.apply(&[EditOp::AddLink {
                a: CellId::new(1),
                b: CellId::new(1),
            }]),
            Err(EditError::SelfLink { .. })
        ));
    }

    #[test]
    fn wide_edits_fall_back_and_stay_correct() {
        let mut session = line_session(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*2 }\nprogram c1 { R(A)*2 }\n",
            2,
        );
        // Both cells dirty = ratio 1.0 > 0.5 → fallback.
        let a = session.program().message_id("A").unwrap();
        let report = session
            .apply(&[
                EditOp::AppendOp {
                    cell: CellId::new(0),
                    op: Op::write(a),
                },
                EditOp::AppendOp {
                    cell: CellId::new(1),
                    op: Op::read(a),
                },
            ])
            .unwrap();
        assert_eq!(report.fallback, Some(FallbackReason::DirtyRatio));
        assert!(!report.reused_any());
        assert!((report.dirty_ratio() - 1.0).abs() < f64::EPSILON);
        assert_parity(&session);
        // Fallback still captured a snapshot, so the session stays warm
        // for later narrow edits (cannot exist on a 2-cell array — but
        // the snapshot presence is observable via another fallback).
        let report = session
            .apply(&[
                EditOp::AppendOp {
                    cell: CellId::new(0),
                    op: Op::write(a),
                },
                EditOp::AppendOp {
                    cell: CellId::new(1),
                    op: Op::read(a),
                },
            ])
            .unwrap();
        assert_eq!(report.fallback, Some(FallbackReason::DirtyRatio));
        assert_parity(&session);
    }

    #[test]
    fn zero_ratio_forces_fallback() {
        let program = parse_program(
            "cells 3\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let analyzer = Analyzer::for_topology(&Topology::linear(3), &AnalysisConfig::default());
        let mut session = IncrementalSession::seed(
            analyzer,
            program,
            IncrementalConfig {
                fallback_ratio: 0.0,
            },
        );
        let a = session.program().message_id("A").unwrap();
        let report = session
            .apply(&[
                EditOp::AppendOp {
                    cell: CellId::new(0),
                    op: Op::write(a),
                },
                EditOp::AppendOp {
                    cell: CellId::new(1),
                    op: Op::read(a),
                },
            ])
            .unwrap();
        assert_eq!(report.fallback, Some(FallbackReason::DirtyRatio));
        assert_parity(&session);
    }

    #[test]
    fn incremental_metrics_are_recorded() {
        let obs = Arc::new(systolic_obs::Obs::new());
        let program = parse_program(
            "cells 4\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let analyzer = Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default())
            .with_obs(Arc::clone(&obs));
        let mut session = IncrementalSession::seed(analyzer, program, IncrementalConfig::default());
        let a = session.program().message_id("A").unwrap();
        let _ = session
            .apply(&[
                EditOp::AppendOp {
                    cell: CellId::new(0),
                    op: Op::write(a),
                },
                EditOp::AppendOp {
                    cell: CellId::new(1),
                    op: Op::read(a),
                },
            ])
            .unwrap();
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter_value(names::INCREMENTAL_EDITS, &[]), 1);
        assert_eq!(snap.counter_value(names::INCREMENTAL_HITS, &[]), 1);
        assert_eq!(snap.counter_value(names::INCREMENTAL_DIRTY_CELLS, &[]), 2);
        assert_eq!(
            snap.counter_value(names::INCREMENTAL_STAGE_REUSED, &[("stage", "routes")]),
            1
        );
        assert_eq!(
            snap.counter_value(
                names::INCREMENTAL_STAGE_REUSED,
                &[("stage", "classification")]
            ),
            1
        );
    }
}
