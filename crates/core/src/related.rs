//! The *related messages* relation (paper, Section 6).
//!
//! "Two messages A and B are said to be related, if in some cell program,
//! R(A) or W(A) appears between R(B) and R(B) (i.e., after the first R(B)
//! and before the second R(B)), or between W(B) and W(B). The relation is
//! defined to be symmetric and transitive."
//!
//! Interleaved access is exactly the situation of Figs. 8 and 9: the cell
//! alternates between messages, so both must hold queues at once, so the
//! labeling scheme gives the whole equivalence class one label and the
//! simultaneous-assignment rule hands each class member its own queue.

use systolic_model::{MessageId, Program};

/// Union–find over message ids.
#[derive(Clone, Debug)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            core::cmp::Ordering::Less => self.parent[ra] = rb,
            core::cmp::Ordering::Greater => self.parent[rb] = ra,
            core::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// The symmetric–transitive closure of the related-messages relation,
/// partitioning a program's messages into equivalence classes.
///
/// # Examples
///
/// Fig. 9 of the paper: cell `c0` writes A and B interleaved, so A ~ B.
///
/// ```
/// use systolic_core::RelatedMessages;
/// use systolic_model::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "cells 3\n\
///      message A: c0 -> c1\n\
///      message B: c0 -> c2\n\
///      program c0 { W(A) W(B) W(A) }\n\
///      program c1 { R(A) R(A) }\n\
///      program c2 { R(B) }\n",
/// )?;
/// let related = RelatedMessages::of(&p);
/// let a = p.message_id("A").unwrap();
/// let b = p.message_id("B").unwrap();
/// assert!(related.are_related(a, b));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RelatedMessages {
    /// Canonical representative per message.
    class_of: Vec<usize>,
    num_messages: usize,
}

impl RelatedMessages {
    /// Computes the relation for `program`.
    ///
    /// For every cell and every message `B`, any message accessed strictly
    /// between two *consecutive* same-kind accesses of `B` is related to
    /// `B`. (Consecutive pairs suffice: an access between the first and
    /// third `R(B)` necessarily sits between some consecutive pair.)
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let n = program.num_messages();
        let mut uf = UnionFind::new(n);
        for cell in program.cell_ids() {
            let ops = program.cell(cell);
            // prev[kind][message] = position of the previous access of that
            // kind, if any.
            let mut prev_read = vec![None; n];
            let mut prev_write = vec![None; n];
            for (pos, op) in ops.iter().enumerate() {
                let m = op.message().index();
                let prev = if op.is_read() {
                    &mut prev_read
                } else {
                    &mut prev_write
                };
                if let Some(start) = prev[m] {
                    // Everything strictly between `start` and `pos` relates
                    // to `m`.
                    for mid in (start + 1)..pos {
                        let between = ops.get(mid).expect("in range").message().index();
                        if between != m {
                            uf.union(m, between);
                        }
                    }
                }
                prev[m] = Some(pos);
            }
        }
        let class_of = (0..n).map(|i| uf.find(i)).collect();
        Self {
            class_of,
            num_messages: n,
        }
    }

    /// `true` if `a` and `b` are in the same equivalence class.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn are_related(&self, a: MessageId, b: MessageId) -> bool {
        self.class_of[a.index()] == self.class_of[b.index()]
    }

    /// All messages in `m`'s equivalence class, including `m` itself.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn class(&self, m: MessageId) -> Vec<MessageId> {
        let root = self.class_of[m.index()];
        (0..self.num_messages)
            .filter(|&i| self.class_of[i] == root)
            .map(|i| MessageId::new(i as u32))
            .collect()
    }

    /// The equivalence classes, each sorted, ordered by smallest member.
    #[must_use]
    pub fn classes(&self) -> Vec<Vec<MessageId>> {
        let mut seen = vec![false; self.num_messages];
        let mut out = Vec::new();
        for i in 0..self.num_messages {
            if !seen[i] {
                let class = self.class(MessageId::new(i as u32));
                for m in &class {
                    seen[m.index()] = true;
                }
                out.push(class);
            }
        }
        out
    }

    /// Number of messages covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.num_messages
    }

    /// `true` if the program declared no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_messages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    #[test]
    fn fig8_interleaved_reads_relate() {
        // C2 reads A and B interleaved (paper, Fig. 8).
        let p = parse_program(
            "cells 3\n\
             message B: c0 -> c2\n\
             message A: c1 -> c2\n\
             program c0 { W(B)*3 }\n\
             program c1 { W(A)*4 }\n\
             program c2 { R(A) R(B) R(A) R(A) R(B) R(B) R(A) }\n",
        )
        .unwrap();
        let rel = RelatedMessages::of(&p);
        let a = p.message_id("A").unwrap();
        let b = p.message_id("B").unwrap();
        assert!(rel.are_related(a, b));
        assert_eq!(rel.classes().len(), 1);
    }

    #[test]
    fn fig9_interleaved_writes_relate() {
        let p = parse_program(
            "cells 3\n\
             message A: c0 -> c1\n\
             message B: c0 -> c2\n\
             program c0 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
             program c1 { R(A)*4 }\n\
             program c2 { R(B)*3 }\n",
        )
        .unwrap();
        let rel = RelatedMessages::of(&p);
        assert!(rel.are_related(p.message_id("A").unwrap(), p.message_id("B").unwrap()));
    }

    #[test]
    fn sequential_access_does_not_relate() {
        // Fig. 7 shape: C3 reads all of A, then writes all of B.
        let p = parse_program(
            "cells 3\n\
             message A: c0 -> c1\n\
             message B: c1 -> c2\n\
             program c0 { W(A)*4 }\n\
             program c1 { R(A)*4 W(B)*3 }\n\
             program c2 { R(B)*3 }\n",
        )
        .unwrap();
        let rel = RelatedMessages::of(&p);
        let a = p.message_id("A").unwrap();
        let b = p.message_id("B").unwrap();
        assert!(!rel.are_related(a, b));
        assert!(
            rel.are_related(a, a),
            "relation is reflexive by class membership"
        );
        assert_eq!(rel.classes().len(), 2);
    }

    #[test]
    fn read_write_interleaving_of_different_kinds_does_not_relate() {
        // A's reads alternate with B's writes, but B is accessed only once
        // between *consecutive same-kind* accesses... here B IS between two
        // R(A)s, so they relate. The non-relating case needs single accesses.
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { W(A) R(B) }\n\
             program c1 { R(A) W(B) }\n",
        )
        .unwrap();
        let rel = RelatedMessages::of(&p);
        // Only one access of each message per cell: nothing is "between".
        assert!(!rel.are_related(p.message_id("A").unwrap(), p.message_id("B").unwrap()));
    }

    #[test]
    fn transitivity_chains_classes() {
        // c0 interleaves A with B, and B with C => A ~ C by transitivity.
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             message C: c0 -> c1\n\
             program c0 { W(A) W(B) W(A) W(B) W(C) W(B) }\n\
             program c1 { R(A) R(A) R(B) R(B) R(B) R(C) }\n",
        )
        .unwrap();
        let rel = RelatedMessages::of(&p);
        let a = p.message_id("A").unwrap();
        let c = p.message_id("C").unwrap();
        assert!(rel.are_related(a, c));
        assert_eq!(rel.class(a).len(), 3);
    }

    #[test]
    fn fir_program_is_one_class() {
        // In the Fig. 2 FIR program every message interleaves with every
        // other through C1/C2, collapsing all six into one class.
        let p = systolic_workloads::fig2_fir();
        let rel = RelatedMessages::of(&p);
        assert_eq!(rel.classes().len(), 1);
        assert_eq!(rel.class(MessageId::new(0)).len(), 6);
    }

    #[test]
    fn empty_program_has_no_classes() {
        let p = systolic_model::ProgramBuilder::new(1).build().unwrap();
        let rel = RelatedMessages::of(&p);
        assert!(rel.is_empty());
        assert_eq!(rel.len(), 0);
        assert!(rel.classes().is_empty());
    }
}
