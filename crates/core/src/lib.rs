//! Deadlock avoidance for systolic communication — the analysis side of
//! H.T. Kung's 1988 paper.
//!
//! Under the systolic model a cell program operates directly on its hardware
//! I/O queues. That is fast — no local-memory staging — but a program whose
//! reads and writes are mis-ordered, or whose messages compete badly for the
//! fixed number of queues between adjacent cells, deadlocks at run time.
//! This crate implements the paper's compile-time machinery:
//!
//! * [`classify`] / [`classify_with`] — the **crossing-off procedure**
//!   (Section 3) and its **lookahead** variant for buffered queues
//!   (Section 8.1, rules R1/R2 via [`LookaheadLimits`]), deciding whether a
//!   program is *deadlock-free*;
//! * [`RelatedMessages`] — the interleaved-access relation (Section 6);
//! * [`label_messages`] — the **consistent labeling** scheme (Sections 6 and
//!   8.2) over exact rational [`Label`]s;
//! * [`check_consistency`] — the independent consistency definition
//!   (Section 5, step 1);
//! * [`CompetingSets`] / [`QueueRequirements`] — competing messages
//!   (Section 2.3) and the queue counts the simultaneous-assignment rule
//!   demands (Section 7, Theorem 1 assumption (ii));
//! * [`CompiledTopology`] + [`Analyzer`] — the staged pipeline: compile a
//!   `(Topology, AnalysisConfig)` pair once (route closure, lookahead
//!   budgets, content fingerprint), then analyze many programs against it,
//!   inspecting each stage and collecting structured [`Diagnostic`]s;
//! * [`analyze`] — the legacy one-shot wrapper around the above, producing
//!   a [`CommPlan`] that a runtime (`systolic-sim`, `systolic-threaded`)
//!   enforces with compatible queue assignment, which by **Theorem 1**
//!   guarantees the run completes.
//!
//! # Examples
//!
//! ```
//! use systolic_core::{Analyzer, AnalysisConfig};
//! use systolic_model::{parse_program, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fig. 7 of the paper.
//! let program = parse_program(
//!     "cells 4\n\
//!      message A: c1 -> c2\n\
//!      message B: c2 -> c3\n\
//!      message C: c0 -> c3\n\
//!      program c0 { W(C)*3 }\n\
//!      program c1 { W(A)*4 }\n\
//!      program c2 { R(A)*4 W(B)*3 }\n\
//!      program c3 { R(C)*3 R(B)*3 }\n",
//! )?;
//! let analyzer = Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default());
//! let analysis = analyzer.analyze(&program)?;
//! // The paper's labels: A=1, B=3, C=2 — so one queue per interval suffices.
//! assert_eq!(analysis.plan().requirements().max_per_interval(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Migrating from `analyze`
//!
//! [`analyze`] still works and always will — it is now a thin wrapper — but
//! it recompiles the topology on every call and discards the structured
//! diagnostics. The staged API splits the call in two:
//!
//! ```text
//! //  before                                   after
//! analyze(&program, &topology, &config)   →   let compiled = CompiledTopology::compile(&topology, &config);
//!                                             let analyzer = Analyzer::new(compiled);
//!                                             analyzer.analyze(&program)
//! ```
//!
//! * **One program, one topology:** `Analyzer::for_topology(&topology,
//!   &config).analyze(&program)` is a drop-in replacement.
//! * **Many programs, one topology** (services, benchmarks, sweeps):
//!   compile once, share the `Arc<CompiledTopology>`
//!   ([`CompiledTopology::into_shared`]) and call
//!   [`Analyzer::analyze`] per program — routing comes from the
//!   precompiled route closure instead of a per-message search.
//! * **"Why was it rejected?":** use [`Analyzer::diagnose`] to get the
//!   [`Diagnostics`] (machine-readable codes, offending message/cell ids)
//!   alongside the result, or open an [`Analyzer::session`] and inspect
//!   stages ([`AnalyzerSession::classification`],
//!   [`AnalyzerSession::requirements`], …) individually.
//!
//! Outputs are guaranteed identical: the parity property tests assert that
//! [`Analyzer`] and [`analyze`] produce byte-identical
//! [`CommPlan::fingerprint`]s on random programs and topologies.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod codec;
mod competing;
mod compiled;
mod consistency;
mod constraint_labeling;
mod crossing_off;
mod diagnostics;
mod error;
mod fingerprint;
mod incremental;
mod label;
mod labeling;
mod limits;
mod pipeline;
mod plan;
mod related;
mod requirements;

pub(crate) use crossing_off::Machine;

pub use analyzer::{AnalysisOutcome, Analyzer, AnalyzerBuilder, AnalyzerSession, LabelingStrategy};
pub use codec::{CodecError, Decode, Encode, FieldReader, FieldWriter};
pub use competing::CompetingSets;
pub use compiled::{CompiledTopology, RouteCacheStats, MAX_CLOSURE_CELLS, ROUTE_CACHE_CAPACITY};
pub use consistency::{check_consistency, is_consistent, ConsistencyViolation};
pub use constraint_labeling::label_messages_robust;
pub use crossing_off::{classify, classify_with, Classification, Pair, Step, StuckReport, Trace};
pub use diagnostics::{Diagnostic, DiagnosticCode, Diagnostics, Severity};
pub use error::CoreError;
pub use fingerprint::request_fingerprint;
pub use incremental::{
    DirtySet, EditError, EditOp, FallbackReason, IncrementalConfig, IncrementalSession,
    ReuseReport, SessionDelta,
};
pub use label::Label;
pub use labeling::{label_messages, LabelRule, Labeling, LabelingReport};
pub use limits::LookaheadLimits;
pub use pipeline::{analyze, Analysis, AnalysisConfig, LabelingMethod, Lookahead};
pub use plan::CommPlan;
pub use related::RelatedMessages;
pub use requirements::QueueRequirements;
