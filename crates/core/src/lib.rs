//! Deadlock avoidance for systolic communication — the analysis side of
//! H.T. Kung's 1988 paper.
//!
//! Under the systolic model a cell program operates directly on its hardware
//! I/O queues. That is fast — no local-memory staging — but a program whose
//! reads and writes are mis-ordered, or whose messages compete badly for the
//! fixed number of queues between adjacent cells, deadlocks at run time.
//! This crate implements the paper's compile-time machinery:
//!
//! * [`classify`] / [`classify_with`] — the **crossing-off procedure**
//!   (Section 3) and its **lookahead** variant for buffered queues
//!   (Section 8.1, rules R1/R2 via [`LookaheadLimits`]), deciding whether a
//!   program is *deadlock-free*;
//! * [`RelatedMessages`] — the interleaved-access relation (Section 6);
//! * [`label_messages`] — the **consistent labeling** scheme (Sections 6 and
//!   8.2) over exact rational [`Label`]s;
//! * [`check_consistency`] — the independent consistency definition
//!   (Section 5, step 1);
//! * [`CompetingSets`] / [`QueueRequirements`] — competing messages
//!   (Section 2.3) and the queue counts the simultaneous-assignment rule
//!   demands (Section 7, Theorem 1 assumption (ii));
//! * [`analyze`] — the end-to-end pipeline producing a [`CommPlan`] that a
//!   runtime (`systolic-sim`, `systolic-threaded`) enforces with compatible
//!   queue assignment, which by **Theorem 1** guarantees the run completes.
//!
//! # Examples
//!
//! ```
//! use systolic_core::{analyze, AnalysisConfig};
//! use systolic_model::{parse_program, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fig. 7 of the paper.
//! let program = parse_program(
//!     "cells 4\n\
//!      message A: c1 -> c2\n\
//!      message B: c2 -> c3\n\
//!      message C: c0 -> c3\n\
//!      program c0 { W(C)*3 }\n\
//!      program c1 { W(A)*4 }\n\
//!      program c2 { R(A)*4 W(B)*3 }\n\
//!      program c3 { R(C)*3 R(B)*3 }\n",
//! )?;
//! let analysis = analyze(&program, &Topology::linear(4), &AnalysisConfig::default())?;
//! // The paper's labels: A=1, B=3, C=2 — so one queue per interval suffices.
//! assert_eq!(analysis.plan().requirements().max_per_interval(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod competing;
mod consistency;
mod constraint_labeling;
mod crossing_off;
mod error;
mod fingerprint;
mod label;
mod labeling;
mod limits;
mod pipeline;
mod plan;
mod related;
mod requirements;

pub(crate) use crossing_off::Machine;

pub use competing::CompetingSets;
pub use consistency::{check_consistency, is_consistent, ConsistencyViolation};
pub use constraint_labeling::label_messages_robust;
pub use crossing_off::{classify, classify_with, Classification, Pair, Step, StuckReport, Trace};
pub use error::CoreError;
pub use fingerprint::request_fingerprint;
pub use label::Label;
pub use labeling::{label_messages, LabelRule, Labeling, LabelingReport};
pub use limits::LookaheadLimits;
pub use pipeline::{analyze, Analysis, AnalysisConfig, LabelingMethod, Lookahead};
pub use plan::CommPlan;
pub use related::RelatedMessages;
pub use requirements::QueueRequirements;
