//! The crossing-off procedure (paper, Sections 3 and 8.1).
//!
//! A pair of operations `W(X)`, `R(X)` is *executable* when both can be
//! reached at (or, with lookahead, near) the front of their cell programs.
//! The procedure repeatedly crosses off executable pairs; a program is
//! **deadlock-free** iff the procedure consumes every operation.
//!
//! Two variants, unified here:
//!
//! * **basic** (Section 3): both operations must be *the first remaining
//!   statement* of their cell programs. Use [`LookaheadLimits::disabled`].
//! * **lookahead** (Section 8.1): an operation may be located by scanning
//!   past *write* operations only (rule **R1**), and for each message the
//!   number of writes skipped in one scan may not exceed its queue-capacity
//!   budget (rule **R2**), captured by [`LookaheadLimits`].
//!
//! Each *step* crosses off **all** currently-executable pairs at once, which
//! is exactly how Fig. 4 of the paper presents the trace (steps 3, 5 and 9
//! each cross off two pairs). The procedure is confluent — crossing a pair
//! never disables another executable pair — so this choice affects only the
//! trace layout, not the classification.

use std::collections::BTreeMap;

use systolic_model::{CellId, MessageId, Op, Program};

use crate::LookaheadLimits;

/// One crossed-off executable pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pair {
    /// The message the pair transfers a word of.
    pub message: MessageId,
    /// Zero-based index of the word within the message.
    pub word: usize,
    /// Position of the `W` operation in the sender's program.
    pub write_pos: usize,
    /// Position of the `R` operation in the receiver's program.
    pub read_pos: usize,
    /// Writes skipped (message → count) while locating the pair's
    /// operations, merged across the sender-side and receiver-side scans.
    /// Empty unless lookahead was used. Drives the Section 8.2 co-labeling
    /// rule and the queue-extension trigger.
    pub skipped: BTreeMap<MessageId, usize>,
}

/// One step of the procedure: every pair that was executable simultaneously.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Step {
    /// Pairs crossed off in this step, in ascending message-id order.
    pub pairs: Vec<Pair>,
}

/// The full record of a crossing-off run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    steps: Vec<Step>,
}

impl Trace {
    /// The steps, in execution order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Appends a step (used by the labeling scheme's pair-at-a-time driver).
    pub(crate) fn push_step(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Total number of pairs crossed off.
    #[must_use]
    pub fn total_pairs(&self) -> usize {
        self.steps.iter().map(|s| s.pairs.len()).sum()
    }

    /// All pairs flattened in execution order (step order, then message id).
    pub fn pairs(&self) -> impl Iterator<Item = &Pair> + '_ {
        self.steps.iter().flat_map(|s| s.pairs.iter())
    }

    /// The highest number of writes of `message` skipped in any single scan
    /// — the quantity rule R2 bounds, and the trigger for the iWarp
    /// queue-extension mechanism (paper, Section 8.1).
    #[must_use]
    pub fn max_skips(&self, message: MessageId) -> usize {
        self.pairs()
            .filter_map(|p| p.skipped.get(&message).copied())
            .max()
            .unwrap_or(0)
    }

    /// Renders the trace in the paper's Fig. 4 style: one line per step,
    /// listing the `W(X)/R(X)` pairs crossed off, using `program`'s message
    /// names.
    ///
    /// # Panics
    ///
    /// Panics if the trace references messages not declared in `program`.
    #[must_use]
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let pairs: Vec<String> = step
                .pairs
                .iter()
                .map(|p| {
                    let name = program.message(p.message).name();
                    if p.skipped.is_empty() {
                        format!("W({name})/R({name})")
                    } else {
                        let skips: usize = p.skipped.values().sum();
                        format!("W({name})/R({name}) [skipped {skips}]")
                    }
                })
                .collect();
            out.push_str(&format!("step {:>2}: {}\n", i + 1, pairs.join("  ")));
        }
        out
    }
}

/// Why the procedure stalled, for deadlocked programs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StuckReport {
    /// Per cell: the first remaining (un-crossed) operation and its
    /// position, or `None` if the cell's program completed.
    pub fronts: Vec<Option<(usize, Op)>>,
    /// Total operations left un-crossed.
    pub remaining_ops: usize,
    /// Words successfully transferred before the stall.
    pub crossed_words: usize,
}

/// The verdict of the crossing-off procedure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Classification {
    /// Every operation was crossed off; the program is deadlock-free.
    DeadlockFree(Trace),
    /// The procedure stalled; the program is deadlocked.
    Deadlocked {
        /// Whatever was crossed off before the stall.
        trace: Trace,
        /// The stall state.
        stuck: StuckReport,
    },
}

impl Classification {
    /// `true` if the program was classified deadlock-free.
    #[must_use]
    pub fn is_deadlock_free(&self) -> bool {
        matches!(self, Classification::DeadlockFree(_))
    }

    /// The trace, regardless of verdict.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        match self {
            Classification::DeadlockFree(t) => t,
            Classification::Deadlocked { trace, .. } => trace,
        }
    }
}

/// Runs the basic crossing-off procedure (paper, Section 3).
///
/// # Examples
///
/// A message cycle that is nonetheless deadlock-free (paper, Fig. 6):
///
/// ```
/// use systolic_core::classify;
/// use systolic_model::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "cells 4\n\
///      message A: c0 -> c1\n\
///      message B: c1 -> c2\n\
///      message C: c2 -> c3\n\
///      message D: c3 -> c0\n\
///      program c0 { W(A) R(D) }\n\
///      program c1 { R(A) W(B) }\n\
///      program c2 { R(B) W(C) }\n\
///      program c3 { R(C) W(D) }\n",
/// )?;
/// assert!(classify(&p).is_deadlock_free());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn classify(program: &Program) -> Classification {
    classify_with(program, &LookaheadLimits::disabled(program))
}

/// Runs the crossing-off procedure with lookahead (paper, Section 8.1).
///
/// With [`LookaheadLimits::disabled`] this is exactly [`classify`]; larger
/// budgets classify more programs as deadlock-free, reflecting queue
/// buffering capacity at run time.
#[must_use]
pub fn classify_with(program: &Program, limits: &LookaheadLimits) -> Classification {
    run_to_completion(Machine::new(program, limits), Trace::default()).0
}

/// [`classify_with`], additionally returning the machine's end state so a
/// later run can resume from it (incremental reanalysis).
pub(crate) fn classify_with_snapshot(
    program: &Program,
    limits: &LookaheadLimits,
) -> (Classification, MachineSnapshot) {
    run_to_completion(Machine::new(program, limits), Trace::default())
}

/// Resumes the crossing-off procedure from a previous run's end state.
///
/// `program` must extend the snapshot's program by **appending** operations
/// at cell-program tails only (positions of existing ops unchanged), and
/// `limits` must be skip-free ([`LookaheadLimits::disabled`]-shaped) for the
/// result to be parity-sound:
///
/// * The procedure is confluent — crossing a pair never disables another
///   executable pair — so the final crossed-off set, the verdict and the
///   stuck report are independent of the order pairs were crossed. The
///   base run's crossed sequence is a valid prefix of a maximal crossing
///   sequence of the extended program (every base pair is still executable
///   at the same positions, including when the base run stalled: the
///   stall state is exactly where the appended ops may unblock it).
/// * Without lookahead every pair carries empty skip maps, so resuming
///   cannot diverge in recorded skip counts; only the grouping of pairs
///   into steps can differ from a from-scratch run, and nothing downstream
///   consumes step layout.
pub(crate) fn classify_resume(
    program: &Program,
    limits: &LookaheadLimits,
    snapshot: MachineSnapshot,
    base_trace: Trace,
) -> (Classification, MachineSnapshot) {
    run_to_completion(
        Machine::from_snapshot(program, limits, snapshot),
        base_trace,
    )
}

/// Drives a machine until no pair is executable, then packages the verdict
/// and the end-state snapshot.
fn run_to_completion(
    mut machine: Machine<'_>,
    mut trace: Trace,
) -> (Classification, MachineSnapshot) {
    loop {
        let pairs = machine.executable_pairs();
        if pairs.is_empty() {
            break;
        }
        for p in &pairs {
            machine.cross(p);
        }
        trace.steps.push(Step { pairs });
    }
    let stuck = if machine.remaining_ops() == 0 {
        None
    } else {
        Some(machine.stuck_report(trace.total_pairs()))
    };
    let snapshot = machine.into_snapshot();
    let classification = match stuck {
        None => Classification::DeadlockFree(trace),
        Some(stuck) => Classification::Deadlocked { trace, stuck },
    };
    (classification, snapshot)
}

/// The portable end state of a crossing-off run: everything a [`Machine`]
/// tracks, detached from the program borrow, so an extended program can
/// resume where the base run finished instead of re-crossing every pair.
#[derive(Clone, Debug)]
pub(crate) struct MachineSnapshot {
    crossed: Vec<Vec<bool>>,
    front: Vec<usize>,
    words_done: Vec<usize>,
    uncrossed_per_cell: Vec<BTreeMap<MessageId, usize>>,
    remaining_ops: usize,
}

/// Working state of one crossing-off run.
///
/// Shared between [`classify_with`] (which crosses maximal pair sets per
/// step) and the labeling scheme (which crosses one pair at a time so labels
/// are assigned in the order Section 6 prescribes).
pub(crate) struct Machine<'p> {
    program: &'p Program,
    limits: &'p LookaheadLimits,
    /// Per cell, per op position: crossed off yet?
    crossed: Vec<Vec<bool>>,
    /// Per cell: index of the first op not yet crossed.
    front: Vec<usize>,
    /// Per message: number of words crossed so far.
    words_done: Vec<usize>,
    /// Per cell: remaining (un-crossed) op count per message, for fast
    /// "will this cell still access message X?" queries.
    uncrossed_per_cell: Vec<BTreeMap<MessageId, usize>>,
    remaining_ops: usize,
}

/// Result of scanning one cell program for a target operation.
struct Located {
    pos: usize,
    skipped: BTreeMap<MessageId, usize>,
}

impl<'p> Machine<'p> {
    pub(crate) fn new(program: &'p Program, limits: &'p LookaheadLimits) -> Self {
        let mut uncrossed_per_cell: Vec<BTreeMap<MessageId, usize>> =
            vec![BTreeMap::new(); program.num_cells()];
        for cell in program.cell_ids() {
            for op in program.cell(cell).iter() {
                *uncrossed_per_cell[cell.index()]
                    .entry(op.message())
                    .or_insert(0) += 1;
            }
        }
        Machine {
            program,
            limits,
            crossed: program
                .cells()
                .iter()
                .map(|cp| vec![false; cp.len()])
                .collect(),
            front: vec![0; program.num_cells()],
            words_done: vec![0; program.num_messages()],
            uncrossed_per_cell,
            remaining_ops: program.total_ops(),
        }
    }

    /// Rebuilds a machine over `program` from a previous run's end state.
    ///
    /// `program` must extend the snapshot's program by appending operations
    /// at cell-program tails only: same cells, same message declarations,
    /// and each cell's op list an extension of what the snapshot saw.
    pub(crate) fn from_snapshot(
        program: &'p Program,
        limits: &'p LookaheadLimits,
        snapshot: MachineSnapshot,
    ) -> Self {
        let MachineSnapshot {
            mut crossed,
            front,
            words_done,
            mut uncrossed_per_cell,
            mut remaining_ops,
        } = snapshot;
        debug_assert_eq!(crossed.len(), program.num_cells(), "cell count is fixed");
        debug_assert_eq!(
            words_done.len(),
            program.num_messages(),
            "messages are fixed"
        );
        for cell in program.cell_ids() {
            let ops = program.cell(cell);
            let flags = &mut crossed[cell.index()];
            debug_assert!(flags.len() <= ops.len(), "ops are appended, never removed");
            for pos in flags.len()..ops.len() {
                let op = ops.get(pos).expect("position in range");
                *uncrossed_per_cell[cell.index()]
                    .entry(op.message())
                    .or_insert(0) += 1;
                remaining_ops += 1;
            }
            flags.resize(ops.len(), false);
        }
        Machine {
            program,
            limits,
            crossed,
            front,
            words_done,
            uncrossed_per_cell,
            remaining_ops,
        }
    }

    /// Consumes the machine into its portable end state.
    pub(crate) fn into_snapshot(self) -> MachineSnapshot {
        MachineSnapshot {
            crossed: self.crossed,
            front: self.front,
            words_done: self.words_done,
            uncrossed_per_cell: self.uncrossed_per_cell,
            remaining_ops: self.remaining_ops,
        }
    }

    pub(crate) fn remaining_ops(&self) -> usize {
        self.remaining_ops
    }

    pub(crate) fn stuck_report(&self, crossed_words: usize) -> StuckReport {
        StuckReport {
            fronts: self
                .program
                .cell_ids()
                .map(|c| {
                    let f = self.front[c.index()];
                    self.program.cell(c).get(f).map(|op| (f, op))
                })
                .collect(),
            remaining_ops: self.remaining_ops,
            crossed_words,
        }
    }

    /// Remaining (un-crossed) accesses of `message` in `cell`'s program.
    pub(crate) fn uncrossed_in_cell(&self, cell: CellId) -> &BTreeMap<MessageId, usize> {
        &self.uncrossed_per_cell[cell.index()]
    }

    /// Finds every message whose next word's write *and* read are currently
    /// locatable, in ascending message-id order.
    pub(crate) fn executable_pairs(&self) -> Vec<Pair> {
        let mut out = Vec::new();
        for m in self.program.message_ids() {
            if self.words_done[m.index()] >= self.program.word_count(m) {
                continue;
            }
            let decl = self.program.message(m);
            let Some(w) = self.locate(decl.sender(), Op::write(m)) else {
                continue;
            };
            let Some(r) = self.locate(decl.receiver(), Op::read(m)) else {
                continue;
            };
            let mut skipped = w.skipped;
            for (msg, n) in r.skipped {
                *skipped.entry(msg).or_insert(0) += n;
            }
            out.push(Pair {
                message: m,
                word: self.words_done[m.index()],
                write_pos: w.pos,
                read_pos: r.pos,
                skipped,
            });
        }
        out
    }

    /// Scans `cell`'s program from its front for `target`, skipping only
    /// un-crossed *write* operations (rule R1) within the per-message budget
    /// (rule R2). Returns the position and the skip counts, or `None`.
    fn locate(&self, cell: CellId, target: Op) -> Option<Located> {
        let ops = self.program.cell(cell);
        let crossed = &self.crossed[cell.index()];
        let mut skipped: BTreeMap<MessageId, usize> = BTreeMap::new();
        let front = self.front[cell.index()];
        for (pos, &is_crossed) in crossed.iter().enumerate().take(ops.len()).skip(front) {
            if is_crossed {
                continue;
            }
            let op = ops.get(pos).expect("position in range");
            if op == target {
                return Some(Located { pos, skipped });
            }
            if op.is_read() {
                // R1: only write operations may be skipped. If skipping reads
                // were allowed, program P3 of Fig. 5 would be misclassified —
                // a skipped read may feed the very write we are looking for.
                return None;
            }
            let count = skipped.entry(op.message()).or_insert(0);
            *count += 1;
            if !self.limits.allows(op.message(), *count) {
                // R2: budget exhausted for this message.
                return None;
            }
        }
        None
    }

    pub(crate) fn cross(&mut self, pair: &Pair) {
        let decl = self.program.message(pair.message);
        for (cell, pos) in [
            (decl.sender(), pair.write_pos),
            (decl.receiver(), pair.read_pos),
        ] {
            let flags = &mut self.crossed[cell.index()];
            debug_assert!(!flags[pos], "op crossed twice");
            flags[pos] = true;
            self.remaining_ops -= 1;
            let remaining = self.uncrossed_per_cell[cell.index()]
                .get_mut(&pair.message)
                .expect("crossed message is tracked");
            *remaining -= 1;
            if *remaining == 0 {
                self.uncrossed_per_cell[cell.index()].remove(&pair.message);
            }
            // Advance the front past crossed ops.
            let f = &mut self.front[cell.index()];
            while *f < flags.len() && flags[*f] {
                *f += 1;
            }
        }
        self.words_done[pair.message.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{parse_program, ProgramBuilder};

    /// Program P1 of Fig. 5, reconstructed from the Fig. 10 walkthrough.
    fn p1() -> Program {
        parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A) W(A) W(B) W(A) W(B) W(A) }\n\
             program c1 { R(B) R(A) R(B) R(A) R(A) R(A) }\n",
        )
        .unwrap()
    }

    /// Program P2 of Fig. 5.
    fn p2() -> Program {
        parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { W(A) R(B) }\n\
             program c1 { W(B) R(A) }\n",
        )
        .unwrap()
    }

    /// Program P3 of Fig. 5: a true circular data dependency.
    fn p3() -> Program {
        parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { R(B) W(A) }\n\
             program c1 { R(A) W(B) }\n",
        )
        .unwrap()
    }

    #[test]
    fn trivial_send_receive_is_deadlock_free() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let c = classify(&p);
        assert!(c.is_deadlock_free());
        assert_eq!(c.trace().total_pairs(), 1);
    }

    #[test]
    fn fig5_programs_are_deadlocked_without_lookahead() {
        for (name, p) in [("P1", p1()), ("P2", p2()), ("P3", p3())] {
            let c = classify(&p);
            assert!(!c.is_deadlock_free(), "{name} must be deadlocked");
            match c {
                Classification::Deadlocked { trace, stuck } => {
                    assert_eq!(trace.total_pairs(), 0, "{name}: no pair is executable");
                    assert_eq!(stuck.remaining_ops, p.total_ops());
                    assert!(stuck.fronts.iter().all(Option::is_some));
                }
                Classification::DeadlockFree(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn p1_with_capacity_two_is_deadlock_free_fig10() {
        let p = p1();
        let limits = LookaheadLimits::uniform(&p, 2);
        let c = classify_with(&p, &limits);
        assert!(
            c.is_deadlock_free(),
            "Fig. 10: P1 is deadlock-free with 2-word queues"
        );

        // Golden trace from Fig. 10 (positions are 0-based here; the figure
        // numbers steps from 1).
        let trace = c.trace();
        let a = MessageId::new(0);
        let b = MessageId::new(1);

        let first = &trace.steps()[0].pairs;
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].message, b);
        assert_eq!(first[0].write_pos, 2, "W(B) in step 3 of the C1 program");
        assert_eq!(first[0].read_pos, 0, "R(B) in step 1 of the C2 program");
        assert_eq!(
            first[0].skipped.get(&a),
            Some(&2),
            "skipped the two W(A)s in steps 1-2"
        );

        let second = &trace.steps()[1].pairs;
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].message, a);
        assert_eq!(second[0].write_pos, 0, "W(A) in step 1 of the C1 program");
        assert_eq!(second[0].read_pos, 1, "R(A) in step 2 of the C2 program");

        let third = &trace.steps()[2].pairs;
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].message, b);
        assert_eq!(third[0].write_pos, 4, "W(B) in step 5 of the C1 program");
        assert_eq!(third[0].read_pos, 2, "R(B) in step 3 of the C2 program");
        assert_eq!(
            third[0].skipped.get(&a),
            Some(&2),
            "skipped the W(A)s in steps 2 and 4"
        );

        assert_eq!(trace.max_skips(a), 2);
        assert_eq!(trace.max_skips(b), 0);
        assert_eq!(trace.total_pairs(), 6);
    }

    #[test]
    fn p1_with_capacity_one_stays_deadlocked() {
        let p = p1();
        let c = classify_with(&p, &LookaheadLimits::uniform(&p, 1));
        assert!(
            !c.is_deadlock_free(),
            "one word of buffering is not enough for P1"
        );
    }

    #[test]
    fn p2_with_any_buffering_is_deadlock_free() {
        let p = p2();
        assert!(classify_with(&p, &LookaheadLimits::uniform(&p, 1)).is_deadlock_free());
    }

    #[test]
    fn p3_is_deadlocked_even_with_unbounded_lookahead() {
        let p = p3();
        // Rule R1: reads can never be skipped, so no buffering saves P3.
        let c = classify_with(&p, &LookaheadLimits::unbounded(&p));
        assert!(!c.is_deadlock_free());
    }

    #[test]
    fn disabled_limits_reproduce_basic_procedure() {
        // On a program with mixed results, the two entry points agree.
        for p in [p1(), p2(), p3()] {
            let basic = classify(&p);
            let zero = classify_with(&p, &LookaheadLimits::disabled(&p));
            assert_eq!(basic.is_deadlock_free(), zero.is_deadlock_free());
            assert_eq!(basic.trace().total_pairs(), zero.trace().total_pairs());
        }
    }

    #[test]
    fn reversing_two_statements_breaks_fig2_style_program() {
        // Section 3.2: "if the first two statements in the C3 program are
        // reversed so that R(XC) follows W(YC), then the program is no longer
        // deadlock-free." Miniature version of the same effect:
        let good = parse_program(
            "cells 2\n\
             message X: c0 -> c1\n\
             message Y: c1 -> c0\n\
             program c0 { W(X) R(Y) }\n\
             program c1 { R(X) W(Y) }\n",
        )
        .unwrap();
        assert!(classify(&good).is_deadlock_free());

        let bad = parse_program(
            "cells 2\n\
             message X: c0 -> c1\n\
             message Y: c1 -> c0\n\
             program c0 { W(X) R(Y) }\n\
             program c1 { W(Y) R(X) }\n",
        )
        .unwrap();
        assert!(!classify(&bad).is_deadlock_free());
    }

    #[test]
    fn empty_program_is_deadlock_free() {
        let p = ProgramBuilder::new(2).build().unwrap();
        let c = classify(&p);
        assert!(c.is_deadlock_free());
        assert_eq!(c.trace().steps().len(), 0);
    }

    #[test]
    fn multiple_pairs_cross_in_one_step() {
        // Two independent transfers are simultaneously executable.
        let p = parse_program(
            "cells 4\n\
             message A: c0 -> c1\n\
             message B: c2 -> c3\n\
             program c0 { W(A) }\n\
             program c1 { R(A) }\n\
             program c2 { W(B) }\n\
             program c3 { R(B) }\n",
        )
        .unwrap();
        let c = classify(&p);
        assert!(c.is_deadlock_free());
        let steps = c.trace().steps();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].pairs.len(), 2);
    }

    #[test]
    fn stuck_report_points_at_blocking_fronts() {
        let p = p3();
        let Classification::Deadlocked { stuck, .. } = classify(&p) else {
            panic!("P3 must be deadlocked")
        };
        // Both cells are stuck at their very first op, a read.
        for front in &stuck.fronts {
            let (pos, op) = front.expect("both cells have remaining ops");
            assert_eq!(pos, 0);
            assert!(op.is_read());
        }
    }

    #[test]
    fn word_indices_count_up_per_message() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*3 }\nprogram c1 { R(A)*3 }\n",
        )
        .unwrap();
        let c = classify(&p);
        let words: Vec<usize> = c.trace().pairs().map(|p| p.word).collect();
        assert_eq!(words, vec![0, 1, 2]);
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use systolic_workloads as wl;

    #[test]
    fn fig4_render_matches_paper_layout() {
        let p = wl::fig2_fir();
        let c = classify(&p);
        let text = c.trace().render(&p);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 12, "Fig. 4 has 12 steps");
        assert_eq!(lines[0], "step  1: W(XA)/R(XA)");
        assert!(lines[2].contains("W(XA)/R(XA)") && lines[2].contains("W(XC)/R(XC)"));
        assert!(lines[8].contains("W(YA)/R(YA)") && lines[8].contains("W(YC)/R(YC)"));
    }

    #[test]
    fn lookahead_render_shows_skips() {
        let p = wl::fig5_p1();
        let limits = LookaheadLimits::uniform(&p, 2);
        let c = classify_with(&p, &limits);
        let text = c.trace().render(&p);
        assert!(text.contains("[skipped 2]"), "{text}");
    }
}
