//! The end-to-end analysis pipeline (paper, Section 9's "major steps").
//!
//! 1. classify the program with the crossing-off procedure (must be
//!    deadlock-free — the programmer/compiler's responsibility, checked
//!    here);
//! 2. produce a consistent labeling with the Section 6 scheme (verified
//!    independently);
//! 3. compute the competing sets and queue requirements, and check Theorem 1
//!    assumption (ii) against the hardware's queue count;
//! 4. emit the [`CommPlan`] a runtime enforces with compatible assignment.
//!
//! Since the [`Analyzer`](crate::Analyzer) redesign the stages live in
//! [`analyzer`](crate::analyzer); [`analyze`] survives as a thin
//! compatibility wrapper that compiles the topology per call. See the
//! crate-level *Migrating from `analyze`* notes.

use systolic_model::{MessageId, Program, Topology};

use crate::{Analyzer, Classification, CommPlan, CoreError, LabelingReport, LookaheadLimits};

/// How much lookahead (queue buffering) the analysis may assume.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Lookahead {
    /// None: queues are latches without buffering (paper, Sections 3–7).
    #[default]
    Disabled,
    /// Rule R2 with a uniform per-queue capacity: each message may be
    /// skipped up to `hops × capacity` times (paper, Section 8.1).
    PerQueueCapacity(usize),
    /// An explicit per-message budget table.
    Explicit(LookaheadLimits),
    /// Unbounded skipping — assumes the iWarp queue-extension mechanism.
    Unbounded,
}

/// Configuration for [`analyze`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnalysisConfig {
    /// Lookahead assumption for the crossing-off procedure.
    pub lookahead: Lookahead,
    /// Hardware queues available on every interval, for the feasibility
    /// check (Theorem 1 assumption (ii)).
    pub queues_per_interval: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            lookahead: Lookahead::Disabled,
            queues_per_interval: 1,
        }
    }
}

/// Which labeling scheme produced the plan's labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LabelingMethod {
    /// The paper's Section 6 scheme succeeded.
    Section6,
    /// The Section 6 scheme wedged (see `label_messages_robust` for why it
    /// can); the complete constraint-solving scheme was used instead.
    ConstraintSolver,
}

/// A successful end-to-end analysis.
#[derive(Clone, Debug)]
pub struct Analysis {
    classification: Classification,
    labeling_report: Option<LabelingReport>,
    labeling_method: LabelingMethod,
    plan: CommPlan,
    limits: LookaheadLimits,
}

impl Analysis {
    /// Assembles an analysis from staged artifacts (the
    /// [`Analyzer`](crate::Analyzer)'s final step).
    pub(crate) fn from_parts(
        classification: Classification,
        labeling_report: Option<LabelingReport>,
        labeling_method: LabelingMethod,
        plan: CommPlan,
        limits: LookaheadLimits,
    ) -> Self {
        Analysis {
            classification,
            labeling_report,
            labeling_method,
            plan,
            limits,
        }
    }

    /// The crossing-off verdict and trace (always deadlock-free here).
    #[must_use]
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The Section 6 labeling report (labels plus provenance), when that
    /// scheme succeeded; `None` when the constraint solver was used.
    #[must_use]
    pub fn labeling_report(&self) -> Option<&LabelingReport> {
        self.labeling_report.as_ref()
    }

    /// Which labeling scheme produced the plan's labels.
    #[must_use]
    pub fn labeling_method(&self) -> LabelingMethod {
        self.labeling_method
    }

    /// The certified communication plan.
    #[must_use]
    pub fn plan(&self) -> &CommPlan {
        &self.plan
    }

    /// Consumes the analysis, returning the plan.
    #[must_use]
    pub fn into_plan(self) -> CommPlan {
        self.plan
    }

    /// The lookahead limits that were actually applied.
    #[must_use]
    pub fn limits(&self) -> &LookaheadLimits {
        &self.limits
    }

    /// Messages whose worst-case skip count exceeds `capacity` words of
    /// buffering along their route — exactly the messages for which the
    /// iWarp queue-extension mechanism "needs to be invoked" (Section 8.1).
    #[must_use]
    pub fn extension_candidates(&self, per_message_capacity: &[usize]) -> Vec<(MessageId, usize)> {
        let trace = self.classification.trace();
        (0..self.plan.labeling().len())
            .map(|i| MessageId::new(i as u32))
            .filter_map(|m| {
                let skips = trace.max_skips(m);
                let cap = per_message_capacity.get(m.index()).copied().unwrap_or(0);
                (skips > cap).then_some((m, skips))
            })
            .collect()
    }
}

/// Runs the full pipeline. See the module docs for the stages.
///
/// **Compatibility wrapper.** This compiles the topology on every call and
/// discards the compilation and all structured diagnostics; it exists so
/// pre-`Analyzer` code keeps working. New code should compile once with
/// [`CompiledTopology::compile`](crate::CompiledTopology::compile) and
/// reuse an [`Analyzer`] — especially in loops over many programs, where
/// the shared compilation amortizes routing. The results are identical
/// (the parity property tests assert byte-identical plan fingerprints).
///
/// # Errors
///
/// * [`CoreError::Model`] if routing fails (cell-count mismatch, no route);
/// * [`CoreError::ProgramDeadlocked`] if the crossing-off procedure stalls;
/// * [`CoreError::LabelConflict`] if labeling fails (not expected for
///   programs that classify as deadlock-free);
/// * [`CoreError::Infeasible`] if an interval needs more queues than
///   `config.queues_per_interval`.
///
/// # Examples
///
/// ```
/// use systolic_core::{analyze, AnalysisConfig};
/// use systolic_model::{parse_program, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "cells 2\n\
///      message A: c0 -> c1\n\
///      program c0 { W(A)*3 }\n\
///      program c1 { R(A)*3 }\n",
/// )?;
/// let analysis = analyze(&p, &Topology::linear(2), &AnalysisConfig::default())?;
/// assert!(analysis.classification().is_deadlock_free());
/// # Ok(())
/// # }
/// ```
pub fn analyze(
    program: &Program,
    topology: &Topology,
    config: &AnalysisConfig,
) -> Result<Analysis, CoreError> {
    Analyzer::for_topology(topology, config).analyze(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    fn fig7_text() -> &'static str {
        "cells 4\n\
         message A: c1 -> c2\n\
         message B: c2 -> c3\n\
         message C: c0 -> c3\n\
         program c0 { W(C)*3 }\n\
         program c1 { W(A)*4 }\n\
         program c2 { R(A)*4 W(B)*3 }\n\
         program c3 { R(C)*3 R(B)*3 }\n"
    }

    #[test]
    fn full_pipeline_on_fig7() {
        let p = parse_program(fig7_text()).unwrap();
        let a = analyze(&p, &Topology::linear(4), &AnalysisConfig::default()).unwrap();
        assert!(a.classification().is_deadlock_free());
        assert_eq!(a.plan().requirements().max_per_interval(), 1);
        assert!(a.extension_candidates(&[0, 0, 0]).is_empty());
    }

    #[test]
    fn deadlocked_program_fails_the_pipeline() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { R(B) W(A) }\n\
             program c1 { R(A) W(B) }\n",
        )
        .unwrap();
        let err = analyze(&p, &Topology::linear(2), &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::ProgramDeadlocked { .. }));
    }

    #[test]
    fn infeasible_queue_count_fails_the_pipeline() {
        // Fig. 9: two same-label messages on one hop need 2 queues.
        let p = parse_program(
            "cells 3\n\
             message A: c0 -> c1\n\
             message B: c0 -> c2\n\
             program c0 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
             program c1 { R(A)*4 }\n\
             program c2 { R(B)*3 }\n",
        )
        .unwrap();
        let config = AnalysisConfig {
            queues_per_interval: 1,
            ..Default::default()
        };
        let err = analyze(&p, &Topology::linear(3), &config).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Infeasible {
                required: 2,
                available: 1,
                ..
            }
        ));

        let config = AnalysisConfig {
            queues_per_interval: 2,
            ..Default::default()
        };
        assert!(analyze(&p, &Topology::linear(3), &config).is_ok());
    }

    #[test]
    fn lookahead_unlocks_p1() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A) W(A) W(B) W(A) W(B) W(A) }\n\
             program c1 { R(B) R(A) R(B) R(A) R(A) R(A) }\n",
        )
        .unwrap();
        // Without lookahead: deadlocked.
        let err = analyze(&p, &Topology::linear(2), &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::ProgramDeadlocked { .. }));

        // With 2 words of buffering per queue: fine, but A and B now share a
        // label (Section 8.2), so the hop needs 2 queues.
        let config = AnalysisConfig {
            lookahead: Lookahead::PerQueueCapacity(2),
            queues_per_interval: 2,
        };
        let a = analyze(&p, &Topology::linear(2), &config).unwrap();
        assert_eq!(a.plan().requirements().max_per_interval(), 2);

        // ... and with only one hardware queue that is infeasible.
        let config = AnalysisConfig {
            lookahead: Lookahead::PerQueueCapacity(2),
            queues_per_interval: 1,
        };
        let err = analyze(&p, &Topology::linear(2), &config).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn unbounded_lookahead_reports_extension_candidates() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A)*4 W(B) }\n\
             program c1 { R(B) R(A)*4 }\n",
        )
        .unwrap();
        let config = AnalysisConfig {
            lookahead: Lookahead::Unbounded,
            queues_per_interval: 2,
        };
        let a = analyze(&p, &Topology::linear(2), &config).unwrap();
        // Locating W(B) skips 4 writes of A; with only 2 words of route
        // capacity, A needs the queue-extension mechanism.
        let m_a = p.message_id("A").unwrap();
        let candidates = a.extension_candidates(&[2, 2]);
        assert_eq!(candidates, vec![(m_a, 4)]);
        // With 4 words of capacity nothing needs extension.
        assert!(a.extension_candidates(&[4, 4]).is_empty());
    }

    #[test]
    fn cell_count_mismatch_is_a_model_error() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let err = analyze(&p, &Topology::linear(3), &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn analysis_exposes_limits_and_report() {
        let p = parse_program(fig7_text()).unwrap();
        let config = AnalysisConfig {
            lookahead: Lookahead::PerQueueCapacity(1),
            queues_per_interval: 2,
        };
        let a = analyze(&p, &Topology::linear(4), &config).unwrap();
        assert_eq!(a.limits().len(), 3);
        assert_eq!(a.labeling_report().unwrap().labeling().len(), 3);
        assert_eq!(a.labeling_method(), LabelingMethod::Section6);
    }

    #[test]
    fn pipeline_falls_back_to_constraint_solver_on_wedge() {
        // The 6-cell witness where the literal Section 6 scheme wedges.
        let p = parse_program(
            "cells 6\n\
             message M0: c5 -> c2\n\
             message M1: c1 -> c4\n\
             message M2: c3 -> c0\n\
             message M3: c0 -> c4\n\
             message M4: c4 -> c2\n\
             message M5: c0 -> c4\n\
             message M6: c2 -> c1\n\
             message M7: c4 -> c2\n\
             message M8: c2 -> c3\n\
             program c0 { W(M5) W(M5) R(M2) W(M3) }\n\
             program c1 { R(M6) R(M6) W(M1) W(M1) }\n\
             program c2 { R(M4) R(M4) W(M6) W(M6) W(M8) R(M7) R(M7) R(M0) R(M0) }\n\
             program c3 { R(M8) W(M2) }\n\
             program c4 { W(M4) W(M4) R(M5) R(M5) R(M1) R(M3) R(M1) W(M7) W(M7) }\n\
             program c5 { W(M0) W(M0) }\n",
        )
        .unwrap();
        let config = AnalysisConfig {
            queues_per_interval: 4,
            ..Default::default()
        };
        let a = analyze(&p, &Topology::linear(6), &config).unwrap();
        assert_eq!(a.labeling_method(), LabelingMethod::ConstraintSolver);
        assert!(a.labeling_report().is_none());
        assert!(crate::is_consistent(&p, a.plan().labeling()));
    }
}
