//! Competing messages (paper, Section 2.3).
//!
//! "Messages that cross the same interval in the same direction are called
//! competing messages. Competing messages may have to share queues if there
//! are not enough queues to allow a separate queue to be assigned to each
//! message."

use std::collections::BTreeMap;

use systolic_model::{Hop, Interval, MessageId, MessageRoutes};

/// The competing-message sets of a routed program: for every directed
/// interval crossing ([`Hop`]), the messages that cross it.
///
/// # Examples
///
/// ```
/// use systolic_core::CompetingSets;
/// use systolic_model::{parse_program, MessageRoutes, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "cells 3\n\
///      message A: c0 -> c2\n\
///      message B: c0 -> c1\n\
///      program c0 { W(A) W(B) }\n\
///      program c1 { R(B) }\n\
///      program c2 { R(A) }\n",
/// )?;
/// let routes = MessageRoutes::compute(&p, &Topology::linear(3))?;
/// let competing = CompetingSets::compute(&routes);
/// // Both A and B cross c0->c1 in the same direction: they compete there.
/// let hop = systolic_model::Hop::new(0.into(), 1.into());
/// assert_eq!(competing.on_hop(hop).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompetingSets {
    per_hop: BTreeMap<Hop, Vec<MessageId>>,
}

impl CompetingSets {
    /// Groups every message of `routes` by the directed hops it crosses.
    #[must_use]
    pub fn compute(routes: &MessageRoutes) -> Self {
        let mut per_hop: BTreeMap<Hop, Vec<MessageId>> = BTreeMap::new();
        for (m, route) in routes.iter() {
            for hop in route.hops() {
                per_hop.entry(hop).or_default().push(m);
            }
        }
        CompetingSets { per_hop }
    }

    /// The messages crossing `hop` (same interval, same direction), in
    /// declaration order. Empty if nothing crosses it.
    #[must_use]
    pub fn on_hop(&self, hop: Hop) -> &[MessageId] {
        self.per_hop.get(&hop).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The messages crossing `interval` in *either* direction, as
    /// `(hop, messages)` groups.
    #[must_use]
    pub fn on_interval(&self, interval: Interval) -> Vec<(Hop, &[MessageId])> {
        self.per_hop
            .iter()
            .filter(|(h, _)| h.interval() == interval)
            .map(|(h, ms)| (*h, ms.as_slice()))
            .collect()
    }

    /// Iterates `(hop, competing messages)` over all used hops.
    pub fn iter(&self) -> impl Iterator<Item = (Hop, &[MessageId])> + '_ {
        self.per_hop.iter().map(|(h, ms)| (*h, ms.as_slice()))
    }

    /// `true` if `a` and `b` compete on at least one hop.
    #[must_use]
    pub fn compete(&self, a: MessageId, b: MessageId) -> bool {
        a != b
            && self
                .per_hop
                .values()
                .any(|ms| ms.contains(&a) && ms.contains(&b))
    }

    /// Number of directed hops that carry at least one message.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_hop.len()
    }

    /// `true` if no message crosses any hop.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_hop.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{parse_program, CellId, Topology};

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn opposite_directions_do_not_compete() {
        let p = parse_program(
            "cells 2\n\
             message X: c0 -> c1\n\
             message Y: c1 -> c0\n\
             program c0 { W(X) R(Y) }\n\
             program c1 { R(X) W(Y) }\n",
        )
        .unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(2)).unwrap();
        let sets = CompetingSets::compute(&routes);
        let x = p.message_id("X").unwrap();
        let y = p.message_id("Y").unwrap();
        assert!(!sets.compete(x, y));
        assert_eq!(sets.on_hop(Hop::new(c(0), c(1))), &[x]);
        assert_eq!(sets.on_hop(Hop::new(c(1), c(0))), &[y]);
        assert_eq!(sets.on_interval(Interval::new(c(0), c(1))).len(), 2);
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn long_route_competes_on_every_hop() {
        let p = parse_program(
            "cells 4\n\
             message LONG: c0 -> c3\n\
             message MID: c1 -> c2\n\
             program c0 { W(LONG) }\n\
             program c1 { W(MID) }\n\
             program c2 { R(MID) }\n\
             program c3 { R(LONG) }\n",
        )
        .unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(4)).unwrap();
        let sets = CompetingSets::compute(&routes);
        let long = p.message_id("LONG").unwrap();
        let mid = p.message_id("MID").unwrap();
        assert!(sets.compete(long, mid));
        assert_eq!(sets.on_hop(Hop::new(c(1), c(2))), &[long, mid]);
        assert_eq!(sets.on_hop(Hop::new(c(0), c(1))), &[long]);
    }

    #[test]
    fn message_does_not_compete_with_itself() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(2)).unwrap();
        let sets = CompetingSets::compute(&routes);
        let a = p.message_id("A").unwrap();
        assert!(!sets.compete(a, a));
    }

    #[test]
    fn unused_hops_are_empty() {
        let p = parse_program(
            "cells 3\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\nprogram c2 { }\n",
        )
        .unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(3)).unwrap();
        let sets = CompetingSets::compute(&routes);
        assert!(sets.on_hop(Hop::new(c(1), c(2))).is_empty());
        assert!(!sets.is_empty());
    }
}
