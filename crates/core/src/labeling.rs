//! The consistent message labeling scheme (paper, Sections 5, 6 and 8.2).
//!
//! A labeling is **consistent** when every cell program writes to or reads
//! from messages with *nondecreasing* labels (Section 5, step 1). The scheme
//! here is the paper's Section 6 algorithm: perform the crossing-off
//! procedure, and label each message as its first executable pair is crossed
//! off —
//!
//! 1. **(a)** if neither the sender nor the receiver will access an
//!    already-labeled message, give the new message a label larger than all
//!    labels in use;
//! 2. **(b)** otherwise give it a label smaller than the labels of those
//!    future accesses and larger than the label of the last (past) access —
//!    possibly "a real number between two consecutive integers", hence the
//!    rational [`Label`] type;
//! 3. **(c)** related messages ([`RelatedMessages`]) receive the same label;
//! 4. **(d)** with lookahead, messages whose writes were skipped over while
//!    locating the pair receive the pair's label (Section 8.2).

use systolic_model::{MessageId, Program};

use crate::crossing_off::Step;
use crate::{CoreError, Label, LookaheadLimits, Machine, RelatedMessages, Trace};

/// A complete label assignment for a program's messages.
///
/// # Examples
///
/// Fig. 7 of the paper: "messages A, B, and C will receive labels 1, 3,
/// and 2, respectively."
///
/// ```
/// use systolic_core::{label_messages, Label, LookaheadLimits};
/// use systolic_model::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "cells 4\n\
///      message A: c1 -> c2\n\
///      message B: c2 -> c3\n\
///      message C: c0 -> c3\n\
///      program c0 { W(C)*2 }\n\
///      program c1 { W(A)*4 }\n\
///      program c2 { R(A)*4 W(B)*2 }\n\
///      program c3 { R(C)*2 R(B)*2 }\n",
/// )?;
/// let report = label_messages(&p, &LookaheadLimits::disabled(&p))?;
/// let labels = report.labeling();
/// assert_eq!(labels.label(p.message_id("A").unwrap()), Label::integer(1));
/// assert_eq!(labels.label(p.message_id("B").unwrap()), Label::integer(3));
/// assert_eq!(labels.label(p.message_id("C").unwrap()), Label::integer(2));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Labeling {
    labels: Vec<Label>,
}

impl Labeling {
    /// Builds a labeling directly from a per-message table.
    ///
    /// Useful for testing hand-made labelings (e.g. the paper's "trivial
    /// consistent labeling scheme is to give the same label to all
    /// messages").
    #[must_use]
    pub fn from_labels(labels: Vec<Label>) -> Self {
        Labeling { labels }
    }

    /// The trivial labeling: every message gets label 1.
    ///
    /// Always consistent, but forces *every* competing message into one
    /// simultaneous-assignment group — the paper notes it "will not likely
    /// yield an efficient use of queues".
    #[must_use]
    pub fn trivial(program: &Program) -> Self {
        Labeling {
            labels: vec![Label::integer(1); program.num_messages()],
        }
    }

    /// The label of `message`.
    ///
    /// # Panics
    ///
    /// Panics if `message` is out of range.
    #[must_use]
    pub fn label(&self, message: MessageId) -> Label {
        self.labels[message.index()]
    }

    /// Iterates `(message, label)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageId, Label)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (MessageId::new(i as u32), l))
    }

    /// Number of labeled messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if no messages are labeled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The largest label in use, if any message exists.
    #[must_use]
    pub fn max_label(&self) -> Option<Label> {
        self.labels.iter().copied().max()
    }
}

/// Which rule of the Section 6 scheme produced a label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LabelRule {
    /// Rule 1a: larger than every label in use.
    FreshMax,
    /// Rule 1b: squeezed between the last past access and the smallest
    /// labeled future access.
    Between,
    /// Rule 1c: inherited from a related message.
    RelatedClass,
    /// Rule 1d: inherited because the message's writes were skipped over by
    /// lookahead (Section 8.2).
    SkippedCoLabel,
    /// The message is declared but carries no words; it never competes for
    /// queues, so it is given label 1 by convention.
    Unused,
}

/// The outcome of running the labeling scheme: the labels plus provenance.
#[derive(Clone, Debug)]
pub struct LabelingReport {
    labeling: Labeling,
    assignment_order: Vec<(MessageId, Label, LabelRule)>,
    trace: Trace,
}

impl LabelingReport {
    /// The produced labeling.
    #[must_use]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Consumes the report, returning the labeling.
    #[must_use]
    pub fn into_labeling(self) -> Labeling {
        self.labeling
    }

    /// Messages in the order they were labeled, with the rule applied.
    #[must_use]
    pub fn assignment_order(&self) -> &[(MessageId, Label, LabelRule)] {
        &self.assignment_order
    }

    /// The crossing-off trace that drove the scheme (one pair per step).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// Runs the Section 6 labeling scheme.
///
/// When multiple executable pairs are available the scheme must pick one;
/// this implementation prefers the pair whose message has the smallest
/// existing label (ties by message id), then unlabeled messages by id —
/// deterministic, and aligned with the transfer order of Theorem 1's proof.
/// (The paper leaves the pick open: "How to pick an 'optimal' one in some
/// sense is an issue".)
///
/// # Errors
///
/// * [`CoreError::ProgramDeadlocked`] if the crossing-off procedure stalls —
///   the scheme is defined only for deadlock-free programs;
/// * [`CoreError::LabelConflict`] if rule 1b's bounds cross;
/// * [`CoreError::InconsistentLabeling`] if the finished labeling violates
///   the consistency definition — the literal rules 1c/1d can assign labels
///   to messages whose own constraints are only discovered later, so the
///   result is post-verified rather than trusted.
///
/// Both failure modes are gaps of the *literal* Section 6 scheme on exotic
/// programs; [`label_messages_robust`](crate::label_messages_robust) always
/// succeeds and [`analyze`](crate::analyze) falls back to it automatically.
pub fn label_messages(
    program: &Program,
    limits: &LookaheadLimits,
) -> Result<LabelingReport, CoreError> {
    label_messages_mode(program, limits, false)
}

/// [`label_messages`] that stops crossing pairs as soon as every message
/// with a nonzero word count has a label.
///
/// Sound **only for programs already known deadlock-free** (the incremental
/// path runs it after the classification stage): up to the stop point this
/// is the identical algorithm, and past it the full run assigns no further
/// labels — every rule (1a–1d) only ever labels unlabeled messages, and
/// none remain with words — so it can raise no `LabelConflict`, while
/// confluence of the crossing-off procedure rules out a late stall. The
/// `Unused` backfill and the final consistency check operate on the same
/// finished label table either way; only the report's trace is truncated.
pub(crate) fn label_messages_assignments_only(
    program: &Program,
    limits: &LookaheadLimits,
) -> Result<LabelingReport, CoreError> {
    label_messages_mode(program, limits, true)
}

fn label_messages_mode(
    program: &Program,
    limits: &LookaheadLimits,
    early_stop: bool,
) -> Result<LabelingReport, CoreError> {
    let related = RelatedMessages::of(program);
    let mut machine = Machine::new(program, limits);
    let mut labels: Vec<Option<Label>> = vec![None; program.num_messages()];
    let mut assignment_order = Vec::new();
    let mut trace = Trace::default();
    // Per cell: the largest label among already-crossed (past) accesses.
    let mut cell_past_max: Vec<Option<Label>> = vec![None; program.num_cells()];
    let mut max_in_use: Option<Label> = None;
    let mut crossed_words = 0usize;
    // Messages still unlabeled that carry words: once this hits zero no
    // further pair can assign a label, so early-stop mode may break.
    let mut unlabeled_with_words = program
        .message_ids()
        .filter(|&m| program.word_count(m) > 0)
        .count();
    let mut stopped_early = false;

    loop {
        if early_stop && unlabeled_with_words == 0 {
            stopped_early = true;
            break;
        }
        let pairs = machine.executable_pairs();
        // Pick one pair at a time. Among executable pairs, prefer the one
        // whose message already has the SMALLEST label (ties by message
        // id), and only then unlabeled messages. This mirrors the order of
        // Theorem 1's proof — the smallest-label transfer proceeds first —
        // and it matters: under lookahead, rule 1d can pre-label a message
        // (small label) that is still executable while an unlabeled message
        // is about to receive a fresh larger label; crossing the fresh one
        // first would push a cell's "past maximum" above the pre-assigned
        // label and wedge rule 1b. (The paper leaves the pick open — "how
        // to pick an 'optimal' one in some sense is an issue".)
        let Some(pair) = pairs.into_iter().min_by(|a, b| {
            let key = |p: &crate::Pair| {
                (
                    labels[p.message.index()].is_none(),
                    labels[p.message.index()],
                    p.message,
                )
            };
            // `None` labels sort last thanks to the leading bool; among
            // labeled ones Option's ordering (None < Some) is irrelevant
            // because the bool already separates the groups.
            key(a).cmp(&key(b))
        }) else {
            break;
        };
        let m = pair.message;
        let decl = program.message(m);

        if labels[m.index()].is_none() {
            // Labeled messages that the sender or receiver will still access
            // (uncrossed ops other than the pair being crossed, which is m's).
            let mut future_min: Option<Label> = None;
            for cell in [decl.sender(), decl.receiver()] {
                for &msg in machine.uncrossed_in_cell(cell).keys() {
                    if msg == m {
                        continue;
                    }
                    if let Some(l) = labels[msg.index()] {
                        future_min = Some(match future_min {
                            Some(cur) if cur <= l => cur,
                            _ => l,
                        });
                    }
                }
            }
            let past_max = [decl.sender(), decl.receiver()]
                .into_iter()
                .filter_map(|c| cell_past_max[c.index()])
                .max();

            let (label, rule) = match future_min {
                None => {
                    // Rule 1a.
                    let next = match max_in_use {
                        Some(l) => l.next_integer_above(),
                        None => Label::integer(1),
                    };
                    (next, LabelRule::FreshMax)
                }
                Some(hi) => match past_max {
                    None => (hi.halved(), LabelRule::Between),
                    Some(lo) if lo < hi => (Label::midpoint(lo, hi), LabelRule::Between),
                    Some(lo) if lo == hi => (lo, LabelRule::Between),
                    Some(lo) => {
                        return Err(CoreError::LabelConflict {
                            message: m,
                            lower_bound: lo,
                            upper_bound: hi,
                        });
                    }
                },
            };
            labels[m.index()] = Some(label);
            assignment_order.push((m, label, rule));
            unlabeled_with_words -= 1;
            max_in_use = Some(match max_in_use {
                Some(cur) if cur >= label => cur,
                _ => label,
            });
            // Rule 1c: the whole related class shares the label.
            for other in related.class(m) {
                if labels[other.index()].is_none() {
                    labels[other.index()] = Some(label);
                    assignment_order.push((other, label, LabelRule::RelatedClass));
                    unlabeled_with_words -= 1;
                }
            }
        }

        // Rule 1d (Section 8.2): skipped-over messages share the label.
        let pair_label = labels[m.index()].expect("just labeled");
        for &skipped in pair.skipped.keys() {
            if labels[skipped.index()].is_none() {
                labels[skipped.index()] = Some(pair_label);
                assignment_order.push((skipped, pair_label, LabelRule::SkippedCoLabel));
                unlabeled_with_words -= 1;
                max_in_use = Some(match max_in_use {
                    Some(cur) if cur >= pair_label => cur,
                    _ => pair_label,
                });
            }
        }

        for cell in [decl.sender(), decl.receiver()] {
            let slot = &mut cell_past_max[cell.index()];
            *slot = Some(match *slot {
                Some(cur) if cur >= pair_label => cur,
                _ => pair_label,
            });
        }

        machine.cross(&pair);
        crossed_words += 1;
        trace.push_step(Step { pairs: vec![pair] });
    }

    if !stopped_early && machine.remaining_ops() != 0 {
        return Err(CoreError::ProgramDeadlocked {
            crossed_words,
            remaining_ops: machine.remaining_ops(),
        });
    }

    // Declared-but-unused messages never compete for queues; give them the
    // conventional label 1.
    let labels: Vec<Label> = labels
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            l.unwrap_or_else(|| {
                assignment_order.push((
                    MessageId::new(i as u32),
                    Label::integer(1),
                    LabelRule::Unused,
                ));
                Label::integer(1)
            })
        })
        .collect();

    let labeling = Labeling { labels };
    // The literal Section 6 rules are not self-checking: rules 1c/1d can
    // assign a label that contradicts constraints discovered later. Verify
    // and report instead of returning a silently-broken labeling.
    let violations = crate::check_consistency(program, &labeling);
    if !violations.is_empty() {
        return Err(CoreError::InconsistentLabeling {
            violations: violations.len(),
        });
    }
    Ok(LabelingReport {
        labeling,
        assignment_order,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    fn fig7() -> Program {
        parse_program(
            "cells 4\n\
             message A: c1 -> c2\n\
             message B: c2 -> c3\n\
             message C: c0 -> c3\n\
             program c0 { W(C)*3 }\n\
             program c1 { W(A)*4 }\n\
             program c2 { R(A)*4 W(B)*3 }\n\
             program c3 { R(C)*3 R(B)*3 }\n",
        )
        .unwrap()
    }

    #[test]
    fn fig7_labels_are_1_3_2() {
        let p = fig7();
        let report = label_messages(&p, &LookaheadLimits::disabled(&p)).unwrap();
        let l = report.labeling();
        assert_eq!(l.label(p.message_id("A").unwrap()), Label::integer(1));
        assert_eq!(l.label(p.message_id("B").unwrap()), Label::integer(3));
        assert_eq!(l.label(p.message_id("C").unwrap()), Label::integer(2));
        assert_eq!(l.max_label(), Some(Label::integer(3)));
        // All three were fresh-max labels (no labeled futures at their time).
        for (_, _, rule) in report.assignment_order() {
            assert_eq!(*rule, LabelRule::FreshMax);
        }
    }

    #[test]
    fn fir_program_all_messages_share_one_label() {
        let p = systolic_workloads::fig2_fir();
        let report = label_messages(&p, &LookaheadLimits::disabled(&p)).unwrap();
        let labels: Vec<Label> = report.labeling().iter().map(|(_, l)| l).collect();
        assert!(labels.iter().all(|&l| l == Label::integer(1)));
        // One FreshMax, five RelatedClass.
        let fresh = report
            .assignment_order()
            .iter()
            .filter(|(_, _, r)| *r == LabelRule::FreshMax)
            .count();
        assert_eq!(fresh, 1);
    }

    #[test]
    fn deadlocked_program_is_rejected() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { R(B) W(A) }\n\
             program c1 { R(A) W(B) }\n",
        )
        .unwrap();
        let err = label_messages(&p, &LookaheadLimits::disabled(&p)).unwrap_err();
        assert!(matches!(err, CoreError::ProgramDeadlocked { .. }));
    }

    #[test]
    fn p1_messages_share_a_label_under_lookahead() {
        // P1 of Fig. 5: A and B interleave in both cells, so rule 1c alone
        // already forces a shared label; rule 1d would agree.
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A) W(A) W(B) W(A) W(B) W(A) }\n\
             program c1 { R(B) R(A) R(B) R(A) R(A) R(A) }\n",
        )
        .unwrap();
        let limits = LookaheadLimits::uniform(&p, 2);
        let report = label_messages(&p, &limits).unwrap();
        let l = report.labeling();
        assert_eq!(
            l.label(p.message_id("A").unwrap()),
            l.label(p.message_id("B").unwrap()),
        );
        assert!(report
            .assignment_order()
            .iter()
            .any(|(_, _, r)| *r == LabelRule::RelatedClass));
    }

    #[test]
    fn lookahead_colabels_skipped_unrelated_messages() {
        // A is written four times before B, with no interleaving anywhere,
        // so A and B are NOT related — only rule 1d (Section 8.2) makes
        // them share a label when lookahead skips the W(A)s.
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A)*4 W(B) }\n\
             program c1 { R(B) R(A)*4 }\n",
        )
        .unwrap();
        let limits = LookaheadLimits::uniform(&p, 4);
        let report = label_messages(&p, &limits).unwrap();
        let l = report.labeling();
        assert_eq!(
            l.label(p.message_id("A").unwrap()),
            l.label(p.message_id("B").unwrap()),
            "skipped-over message shares the pair's label"
        );
        assert!(report
            .assignment_order()
            .iter()
            .any(|(_, _, r)| *r == LabelRule::SkippedCoLabel));
    }

    #[test]
    fn rule_1b_produces_fractional_label_when_squeezed() {
        // With basic crossing-off, any labeled message a cell will access in
        // the future was already accessed in that cell's past, so rule 1b
        // can only ever force equality. A genuine squeeze needs lookahead's
        // rule 1d, which labels a message (L) *before* any of its ops cross:
        //
        //   1. K crosses first             -> K = 1        (rule 1a)
        //   2. F crosses, skipping W(L)    -> F = 2, L = 2 (rules 1a + 1d)
        //   3. M crosses: c1's past is K=1, c1's future holds R(L) with
        //      L = 2                       -> M = 3/2      (rule 1b)
        let p = parse_program(
            "cells 6\n\
             message K: c0 -> c1\n\
             message F: c3 -> c4\n\
             message L: c3 -> c1\n\
             message M: c5 -> c1\n\
             program c0 { W(K) }\n\
             program c1 { R(K) R(M) R(L) }\n\
             program c2 { }\n\
             program c3 { W(L) W(F) }\n\
             program c4 { R(F) }\n\
             program c5 { W(M) }\n",
        )
        .unwrap();
        let report = label_messages(&p, &LookaheadLimits::uniform(&p, 1)).unwrap();
        let l = report.labeling();
        let k = l.label(p.message_id("K").unwrap());
        let f = l.label(p.message_id("F").unwrap());
        let ll = l.label(p.message_id("L").unwrap());
        let m = l.label(p.message_id("M").unwrap());
        assert_eq!(k, Label::integer(1));
        assert_eq!(f, Label::integer(2));
        assert_eq!(ll, Label::integer(2), "L is co-labeled with F by rule 1d");
        assert_eq!(m, Label::ratio(3, 2), "M is squeezed between K and L");
        assert!(!m.is_integer());
        assert!(report
            .assignment_order()
            .iter()
            .any(|(_, _, r)| *r == LabelRule::Between));
        // The squeezed labeling is still consistent.
        assert!(crate::is_consistent(&p, l));
    }

    #[test]
    fn unused_messages_get_conventional_label() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message GHOST: c0 -> c1\n\
             program c0 { W(A) }\n\
             program c1 { R(A) }\n",
        )
        .unwrap();
        let report = label_messages(&p, &LookaheadLimits::disabled(&p)).unwrap();
        let ghost = p.message_id("GHOST").unwrap();
        assert_eq!(report.labeling().label(ghost), Label::integer(1));
        assert!(report
            .assignment_order()
            .iter()
            .any(|(m, _, r)| *m == ghost && *r == LabelRule::Unused));
    }

    #[test]
    fn trivial_labeling_is_all_ones() {
        let p = fig7();
        let t = Labeling::trivial(&p);
        assert!(t.iter().all(|(_, l)| l == Label::integer(1)));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn labeling_trace_crosses_every_word() {
        let p = fig7();
        let report = label_messages(&p, &LookaheadLimits::disabled(&p)).unwrap();
        assert_eq!(report.trace().total_pairs(), p.total_words());
        // One pair per step in labeling mode.
        assert!(report.trace().steps().iter().all(|s| s.pairs.len() == 1));
    }
}
