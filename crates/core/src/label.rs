//! Message labels: positive rational numbers with a total order.
//!
//! The labeling scheme (paper, Section 6) sometimes needs a label strictly
//! between two existing labels — "the number may have to be a real number
//! between two consecutive integers" — so labels are exact rationals rather
//! than integers or floats.

use core::fmt;

/// A positive rational label.
///
/// Stored reduced with a positive denominator, so derived `Eq`/`Hash` agree
/// with the mathematical value and `Ord` is the numeric order.
///
/// # Examples
///
/// ```
/// use systolic_core::Label;
/// let two = Label::integer(2);
/// let three = Label::integer(3);
/// let mid = Label::midpoint(two, three);
/// assert!(two < mid && mid < three);
/// assert_eq!(mid.to_string(), "5/2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label {
    num: i64,
    den: i64, // invariant: den > 0, gcd(num, den) == 1
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs()
}

impl Label {
    /// Creates the integer label `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 0`: the paper labels messages with *positive* numbers.
    #[must_use]
    pub fn integer(n: i64) -> Self {
        assert!(n > 0, "labels are positive numbers");
        Label { num: n, den: 1 }
    }

    /// Creates the rational label `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or if the value is not positive.
    #[must_use]
    pub fn ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "denominator must be nonzero");
        let (mut num, mut den) = (num, den);
        if den < 0 {
            num = -num;
            den = -den;
        }
        assert!(num > 0, "labels are positive numbers");
        let g = gcd(num, den);
        Label {
            num: num / g,
            den: den / g,
        }
    }

    /// The label exactly halfway between `a` and `b`.
    #[must_use]
    pub fn midpoint(a: Label, b: Label) -> Self {
        // (a.num/a.den + b.num/b.den) / 2, in i128 to dodge overflow, then
        // reduced back down. Labels in practice stay tiny.
        let num = i128::from(a.num) * i128::from(b.den) + i128::from(b.num) * i128::from(a.den);
        let den = 2 * i128::from(a.den) * i128::from(b.den);
        let g = {
            let (mut x, mut y) = (num.abs(), den);
            while y != 0 {
                (x, y) = (y, x % y);
            }
            x
        };
        let (num, den) = (num / g, den / g);
        Label {
            num: i64::try_from(num).expect("label numerator overflow"),
            den: i64::try_from(den).expect("label denominator overflow"),
        }
    }

    /// Half of this label — a positive value strictly below `self`, used when
    /// a label needs to sit below every existing label.
    #[must_use]
    pub fn halved(self) -> Self {
        Label::ratio(
            self.num,
            self.den.checked_mul(2).expect("label denominator overflow"),
        )
    }

    /// This label plus one.
    #[must_use]
    pub fn succ_integer(self) -> Self {
        Label {
            num: self
                .num
                .checked_add(self.den)
                .expect("label numerator overflow"),
            den: self.den,
        }
    }

    /// The smallest integer label strictly greater than `self` — what rule
    /// 1a uses for "a number larger than all other labels currently in use",
    /// keeping fresh labels integral even after fractional rule-1b labels.
    #[must_use]
    pub fn next_integer_above(self) -> Self {
        Label {
            num: self.num.div_euclid(self.den) + 1,
            den: 1,
        }
    }

    /// Numerator of the reduced representation.
    #[must_use]
    pub const fn numerator(self) -> i64 {
        self.num
    }

    /// Denominator of the reduced representation (always positive).
    #[must_use]
    pub const fn denominator(self) -> i64 {
        self.den
    }

    /// `true` if the label is a whole number.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        let lhs = i128::from(self.num) * i128::from(other.den);
        let rhs = i128::from(other.num) * i128::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_labels_order() {
        assert!(Label::integer(1) < Label::integer(2));
        assert_eq!(Label::integer(3), Label::ratio(6, 2));
    }

    #[test]
    fn ratio_reduces_and_normalizes_sign() {
        let l = Label::ratio(-4, -6);
        assert_eq!(l.numerator(), 2);
        assert_eq!(l.denominator(), 3);
        assert!(!l.is_integer());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_label_rejected() {
        let _ = Label::integer(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_ratio_rejected() {
        let _ = Label::ratio(-1, 2);
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let a = Label::integer(2);
        let b = Label::integer(3);
        let m = Label::midpoint(a, b);
        assert!(a < m && m < b);
        assert_eq!(m, Label::ratio(5, 2));
        // midpoint of equal labels is the label itself
        assert_eq!(Label::midpoint(a, a), a);
    }

    #[test]
    fn nested_midpoints_stay_ordered() {
        let mut lo = Label::integer(1);
        let hi = Label::integer(2);
        for _ in 0..20 {
            let mid = Label::midpoint(lo, hi);
            assert!(lo < mid && mid < hi);
            lo = mid;
        }
    }

    #[test]
    fn halved_and_succ() {
        let one = Label::integer(1);
        assert_eq!(one.halved(), Label::ratio(1, 2));
        assert!(one.halved() < one);
        assert_eq!(one.succ_integer(), Label::integer(2));
        assert_eq!(Label::ratio(5, 2).succ_integer(), Label::ratio(7, 2));
    }

    #[test]
    fn next_integer_above_rounds_up_strictly() {
        assert_eq!(Label::integer(2).next_integer_above(), Label::integer(3));
        assert_eq!(Label::ratio(5, 2).next_integer_above(), Label::integer(3));
        assert_eq!(Label::ratio(1, 2).next_integer_above(), Label::integer(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Label::integer(7).to_string(), "7");
        assert_eq!(Label::ratio(7, 2).to_string(), "7/2");
    }

    #[test]
    fn eq_hash_agree_for_reduced_forms() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Label::ratio(2, 4));
        assert!(set.contains(&Label::ratio(1, 2)));
    }
}
