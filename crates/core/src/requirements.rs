//! Queue-count requirements implied by the compatible-assignment rules
//! (paper, Section 7) — Theorem 1's assumption (ii).
//!
//! "The simultaneous assignment rule implies that between two adjacent cells
//! the number of queues cannot be less than the number of competing messages
//! having the same label."

use std::collections::BTreeMap;

use systolic_model::{Hop, Interval, MessageId};

use crate::{CompetingSets, CoreError, Labeling};

/// Per-hop and per-interval queue requirements for a labeled, routed
/// program.
///
/// * A directed hop needs as many queues as its largest group of equal-label
///   competing messages (they must be assigned simultaneously to separate
///   queues).
/// * An undirected interval needs the *sum* of its two directions'
///   requirements: messages flowing both ways can hold queues at the same
///   time, and a queue serves one message (hence one direction) at a time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueueRequirements {
    per_hop: BTreeMap<Hop, usize>,
    per_interval: BTreeMap<Interval, usize>,
}

impl QueueRequirements {
    /// Computes requirements from competing sets and a labeling.
    #[must_use]
    pub fn compute(competing: &CompetingSets, labeling: &Labeling) -> Self {
        let mut per_hop = BTreeMap::new();
        let mut per_interval: BTreeMap<Interval, usize> = BTreeMap::new();
        for (hop, messages) in competing.iter() {
            let mut by_label: BTreeMap<crate::Label, usize> = BTreeMap::new();
            for &m in messages {
                *by_label.entry(labeling.label(m)).or_insert(0) += 1;
            }
            let need = by_label.values().copied().max().unwrap_or(0);
            per_hop.insert(hop, need);
            *per_interval.entry(hop.interval()).or_insert(0) += need;
        }
        QueueRequirements {
            per_hop,
            per_interval,
        }
    }

    /// Queues required on a directed hop (0 if nothing crosses it).
    #[must_use]
    pub fn on_hop(&self, hop: Hop) -> usize {
        self.per_hop.get(&hop).copied().unwrap_or(0)
    }

    /// Queues required on an undirected interval (both directions summed).
    #[must_use]
    pub fn on_interval(&self, interval: Interval) -> usize {
        self.per_interval.get(&interval).copied().unwrap_or(0)
    }

    /// The largest per-interval requirement — the minimum hardware queue
    /// count that makes the whole program feasible with a uniform pool.
    #[must_use]
    pub fn max_per_interval(&self) -> usize {
        self.per_interval.values().copied().max().unwrap_or(0)
    }

    /// Iterates `(hop, requirement)` over used hops.
    pub fn iter_hops(&self) -> impl Iterator<Item = (Hop, usize)> + '_ {
        self.per_hop.iter().map(|(h, n)| (*h, *n))
    }

    /// Iterates `(interval, requirement)` over used intervals.
    pub fn iter_intervals(&self) -> impl Iterator<Item = (Interval, usize)> + '_ {
        self.per_interval.iter().map(|(i, n)| (*i, *n))
    }

    /// Checks Theorem 1 assumption (ii) against a uniform hardware pool of
    /// `queues_per_interval` queues on every interval.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] naming the first interval crossing
    /// that is short of queues.
    pub fn check_feasible(&self, queues_per_interval: usize) -> Result<(), CoreError> {
        for (&interval, &required) in &self.per_interval {
            if required > queues_per_interval {
                let hop = self
                    .per_hop
                    .iter()
                    .filter(|(h, _)| h.interval() == interval)
                    .max_by_key(|(_, n)| **n)
                    .map(|(h, _)| *h)
                    .expect("interval has at least one hop");
                return Err(CoreError::Infeasible {
                    hop,
                    required,
                    available: queues_per_interval,
                });
            }
        }
        Ok(())
    }

    /// The number of same-label competing messages of `m` on each of its
    /// hops, for diagnostics.
    #[must_use]
    pub fn same_label_group(
        competing: &CompetingSets,
        labeling: &Labeling,
        m: MessageId,
        hop: Hop,
    ) -> Vec<MessageId> {
        competing
            .on_hop(hop)
            .iter()
            .copied()
            .filter(|&other| labeling.label(other) == labeling.label(m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{label_messages, LookaheadLimits};
    use systolic_model::{parse_program, CellId, MessageRoutes, Topology};

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn setup(text: &str, n: usize) -> (systolic_model::Program, CompetingSets, Labeling) {
        let p = parse_program(text).unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(n)).unwrap();
        let competing = CompetingSets::compute(&routes);
        let labeling = label_messages(&p, &LookaheadLimits::disabled(&p))
            .unwrap()
            .into_labeling();
        (p, competing, labeling)
    }

    #[test]
    fn fig7_needs_one_queue_per_hop() {
        // Labels 1, 3, 2: all distinct, so every same-label group is a
        // singleton and one queue per interval suffices — exactly the
        // paper's point that ordering, not capacity, fixes Fig. 7.
        let (_, competing, labeling) = setup(
            "cells 4\n\
             message A: c1 -> c2\n\
             message B: c2 -> c3\n\
             message C: c0 -> c3\n\
             program c0 { W(C)*3 }\n\
             program c1 { W(A)*4 }\n\
             program c2 { R(A)*4 W(B)*3 }\n\
             program c3 { R(C)*3 R(B)*3 }\n",
            4,
        );
        let req = QueueRequirements::compute(&competing, &labeling);
        assert_eq!(req.on_hop(Hop::new(c(2), c(3))), 1);
        assert_eq!(req.max_per_interval(), 1);
        assert!(req.check_feasible(1).is_ok());
    }

    #[test]
    fn fig9_interleaved_writes_need_two_queues() {
        // A and B are related => same label => simultaneous rule => 2 queues
        // between c0 and c1 (paper: "If there are two queues between Cl and
        // C2, then messages A and B can each be assigned to a separate queue
        // statically, and no deadlock will occur").
        let (_, competing, labeling) = setup(
            "cells 3\n\
             message A: c0 -> c1\n\
             message B: c0 -> c2\n\
             program c0 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
             program c1 { R(A)*4 }\n\
             program c2 { R(B)*3 }\n",
            3,
        );
        let req = QueueRequirements::compute(&competing, &labeling);
        assert_eq!(req.on_hop(Hop::new(c(0), c(1))), 2);
        assert_eq!(req.on_hop(Hop::new(c(1), c(2))), 1, "only B reaches c1->c2");
        assert!(req.check_feasible(1).is_err());
        assert!(req.check_feasible(2).is_ok());
    }

    #[test]
    fn infeasible_error_names_the_hot_hop() {
        let (_, competing, labeling) = setup(
            "cells 3\n\
             message A: c0 -> c1\n\
             message B: c0 -> c2\n\
             program c0 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
             program c1 { R(A)*4 }\n\
             program c2 { R(B)*3 }\n",
            3,
        );
        let req = QueueRequirements::compute(&competing, &labeling);
        match req.check_feasible(1).unwrap_err() {
            CoreError::Infeasible {
                hop,
                required,
                available,
            } => {
                assert_eq!(hop, Hop::new(c(0), c(1)));
                assert_eq!(required, 2);
                assert_eq!(available, 1);
            }
            other => panic!("expected Infeasible, got {other}"),
        }
    }

    #[test]
    fn opposite_directions_sum_on_the_interval() {
        let (_, competing, labeling) = setup(
            "cells 2\n\
             message X: c0 -> c1\n\
             message Y: c1 -> c0\n\
             program c0 { W(X) R(Y) }\n\
             program c1 { R(X) W(Y) }\n",
            2,
        );
        let req = QueueRequirements::compute(&competing, &labeling);
        assert_eq!(req.on_hop(Hop::new(c(0), c(1))), 1);
        assert_eq!(req.on_hop(Hop::new(c(1), c(0))), 1);
        assert_eq!(req.on_interval(Interval::new(c(0), c(1))), 2);
    }

    #[test]
    fn trivial_labeling_inflates_requirements() {
        // Same program as fig7 but with the trivial all-ones labeling:
        // B and C both cross c2-c3 with the same label => 2 queues needed
        // where the Section 6 labeling needed 1. This is the paper's
        // efficiency argument for nontrivial labelings.
        let p = parse_program(
            "cells 4\n\
             message A: c1 -> c2\n\
             message B: c2 -> c3\n\
             message C: c0 -> c3\n\
             program c0 { W(C)*3 }\n\
             program c1 { W(A)*4 }\n\
             program c2 { R(A)*4 W(B)*3 }\n\
             program c3 { R(C)*3 R(B)*3 }\n",
        )
        .unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(4)).unwrap();
        let competing = CompetingSets::compute(&routes);
        let req = QueueRequirements::compute(&competing, &Labeling::trivial(&p));
        assert_eq!(req.on_hop(Hop::new(c(2), c(3))), 2);
        assert!(req.check_feasible(1).is_err());
    }

    #[test]
    fn empty_program_has_zero_requirements() {
        let p = systolic_model::ProgramBuilder::new(2).build().unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(2)).unwrap();
        let competing = CompetingSets::compute(&routes);
        let req = QueueRequirements::compute(&competing, &Labeling::from_labels(vec![]));
        assert_eq!(req.max_per_interval(), 0);
        assert!(req.check_feasible(0).is_ok());
    }
}
