//! Precompiled topologies: compile once, analyze many programs.
//!
//! Every call to the legacy [`analyze`](crate::analyze) re-derives
//! per-topology state — routes (a BFS per message on graph topologies),
//! lookahead budgets, the request fingerprint's topology component. A
//! [`CompiledTopology`] hoists that work out of the per-program loop:
//!
//! * the **route closure** — for search-routed (graph) topologies up to
//!   [`MAX_CLOSURE_CELLS`] cells, the minimum-length path between every
//!   cell pair, computed with one BFS per *source* (`n` traversals total,
//!   against one BFS per *message* per request);
//! * the [`AnalysisConfig`] it was compiled against, so lookahead budgets
//!   come from table lookups;
//! * a process-independent content [`fingerprint`](CompiledTopology::fingerprint)
//!   of `(topology, config)`, the key the serving layer shares
//!   compilations under.
//!
//! The type is immutable and cheap to share: wrap it in an [`Arc`] (or use
//! [`CompiledTopology::into_shared`]) and hand clones to as many
//! [`Analyzer`](crate::Analyzer)s, worker threads or batches as needed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use systolic_model::{
    CanonicalHash, CellId, ContentHasher, MessageRoutes, ModelError, Program, Route, Topology,
};

use crate::{AnalysisConfig, Lookahead, LookaheadLimits};

/// Largest cell count for which [`CompiledTopology::compile`] materializes
/// the all-pairs route closure (the closure is `O(n² · path length)`
/// memory). Larger topologies still compile — routing is served from a
/// bounded per-pair LRU ([`ROUTE_CACHE_CAPACITY`]) over
/// [`Topology::route_cells`] searches.
pub const MAX_CLOSURE_CELLS: usize = 256;

/// Entry bound of the per-pair route LRU used by search-routed topologies
/// beyond [`MAX_CLOSURE_CELLS`] cells.
pub const ROUTE_CACHE_CAPACITY: usize = 4096;

/// Hit/miss/occupancy counters of the per-pair route LRU — all zero for
/// topologies served by the closure or by closed-form routing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RouteCacheStats {
    /// Routes served from the cache.
    pub hits: u64,
    /// Routes computed by a BFS (and then cached).
    pub misses: u64,
    /// Pairs currently resident.
    pub entries: usize,
}

/// The per-pair LRU: `(from, to) → (last-use tick, path)`.
#[derive(Debug, Default)]
struct RouteCache {
    entries: HashMap<(u32, u32), (u64, Vec<CellId>)>,
    tick: u64,
}

/// An immutable, `Arc`-shareable precompilation of one
/// `(Topology, AnalysisConfig)` pair.
///
/// # Examples
///
/// ```
/// use systolic_core::{Analyzer, AnalysisConfig, CompiledTopology};
/// use systolic_model::{parse_program, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topology = Topology::linear(2);
/// let config = AnalysisConfig::default();
/// let compiled = CompiledTopology::compile(&topology, &config).into_shared();
/// assert_eq!(compiled.num_cells(), 2);
///
/// // Many programs, one compilation:
/// let analyzer = Analyzer::new(compiled);
/// for reps in 1..4 {
///     let program = parse_program(&format!(
///         "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ W(A)*{reps} }}\nprogram c1 {{ R(A)*{reps} }}\n",
///     ))?;
///     assert!(analyzer.analyze(&program).is_ok());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledTopology {
    topology: Topology,
    config: AnalysisConfig,
    fingerprint: u128,
    /// `paths[from * n + to]`: the route closure, when materialized.
    closure: Option<Vec<Option<Vec<CellId>>>>,
    /// Per-pair route LRU for search-routed topologies beyond the closure
    /// limit. A leaf lock: nothing else is acquired while it is held.
    route_cache: Mutex<RouteCache>,
    route_cache_hits: AtomicU64,
    route_cache_misses: AtomicU64,
}

impl Clone for CompiledTopology {
    /// Clones the compilation; the route LRU starts empty (it is a pure
    /// cache — cloning shares no routing state and resets the counters).
    fn clone(&self) -> Self {
        CompiledTopology {
            topology: self.topology.clone(),
            config: self.config.clone(),
            fingerprint: self.fingerprint,
            closure: self.closure.clone(),
            route_cache: Mutex::new(RouteCache::default()),
            route_cache_hits: AtomicU64::new(0),
            route_cache_misses: AtomicU64::new(0),
        }
    }
}

impl CompiledTopology {
    /// Compiles a topology against an analysis configuration.
    ///
    /// For graph topologies with at most [`MAX_CLOSURE_CELLS`] cells this
    /// precomputes the all-pairs route closure (one BFS per source cell);
    /// closed-form topologies (linear, ring, mesh) route in `O(path)`
    /// anyway and skip it.
    #[must_use]
    pub fn compile(topology: &Topology, config: &AnalysisConfig) -> Self {
        let fingerprint = Self::fingerprint_of(topology, config);
        let n = topology.num_cells();
        let closure = if topology.uses_search_routing() && n <= MAX_CLOSURE_CELLS {
            let mut paths = Vec::with_capacity(n * n);
            for i in 0..n {
                let from = CellId::new(i as u32);
                paths.extend(topology.routes_from(from).expect("source cell is in range"));
            }
            Some(paths)
        } else {
            None
        };
        CompiledTopology {
            topology: topology.clone(),
            config: config.clone(),
            fingerprint,
            closure,
            route_cache: Mutex::new(RouteCache::default()),
            route_cache_hits: AtomicU64::new(0),
            route_cache_misses: AtomicU64::new(0),
        }
    }

    /// Wraps this compilation in an [`Arc`] for sharing.
    #[must_use]
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The process-independent content fingerprint of a
    /// `(topology, config)` pair — what [`CompiledTopology::fingerprint`]
    /// returns after compiling, computable without compiling. The serving
    /// layer uses it as the compilation-cache key.
    #[must_use]
    pub fn fingerprint_of(topology: &Topology, config: &AnalysisConfig) -> u128 {
        let mut hasher = ContentHasher::new();
        hasher.write_u8(b'K');
        topology.canonical_hash(&mut hasher);
        config.canonical_hash(&mut hasher);
        hasher.finish()
    }

    /// The topology this compilation captured.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The analysis configuration this compilation captured.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The content fingerprint of `(topology, config)`.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Number of cells in the topology.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.topology.num_cells()
    }

    /// `true` when the all-pairs route closure was materialized.
    #[must_use]
    pub fn has_route_closure(&self) -> bool {
        self.closure.is_some()
    }

    /// The minimum-length route from `from` to `to` — identical to
    /// [`Topology::route_cells`], served from the closure when available.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellOutOfRange`] if an endpoint does not exist;
    /// * [`ModelError::NoRoute`] if the cells are disconnected (or equal).
    pub fn route(&self, from: CellId, to: CellId) -> Result<Route, ModelError> {
        let n = self.topology.num_cells();
        match &self.closure {
            Some(paths) => {
                for cell in [from, to] {
                    if cell.index() >= n {
                        return Err(ModelError::CellOutOfRange { cell, num_cells: n });
                    }
                }
                match &paths[from.index() * n + to.index()] {
                    Some(path) => Ok(Route::new(path.clone())),
                    None => Err(ModelError::NoRoute { from, to }),
                }
            }
            None if self.topology.uses_search_routing() => self.route_via_cache(from, to),
            None => self.topology.route_cells(from, to).map(Route::new),
        }
    }

    /// Serves one pair through the route LRU: a hit clones the cached
    /// path; a miss runs the BFS outside the lock, then inserts (evicting
    /// the least-recently-used pair at capacity). Errors are never
    /// cached — they are cheap (the BFS exhausts the component) and a
    /// later topology may be swapped in via recompilation anyway.
    fn route_via_cache(&self, from: CellId, to: CellId) -> Result<Route, ModelError> {
        let key = (from.index() as u32, to.index() as u32);
        {
            // lint: panic-ok(a poisoned route cache means a panic mid-insert; unrecoverable)
            let mut cache = self.route_cache.lock().expect("route cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(&key) {
                entry.0 = tick;
                let path = entry.1.clone();
                drop(cache);
                // lint: relaxed-ok(pure statistic; fetch_add atomicity alone keeps the count exact)
                self.route_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Route::new(path));
            }
        }
        let path = self.topology.route_cells(from, to)?;
        // lint: relaxed-ok(pure statistic; fetch_add atomicity alone keeps the count exact)
        self.route_cache_misses.fetch_add(1, Ordering::Relaxed);
        // lint: panic-ok(a poisoned route cache means a panic mid-insert; unrecoverable)
        let mut cache = self.route_cache.lock().expect("route cache poisoned");
        if cache.entries.len() >= ROUTE_CACHE_CAPACITY {
            let victim = cache
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.0)
                .map(|(&k, _)| k);
            if let Some(victim) = victim {
                cache.entries.remove(&victim);
            }
        }
        let tick = cache.tick;
        cache.entries.insert(key, (tick, path.clone()));
        Ok(Route::new(path))
    }

    /// Counters of the per-pair route LRU (zeros when the closure or
    /// closed-form routing serves this topology).
    #[must_use]
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        // lint: panic-ok(a poisoned route cache means a panic mid-insert; unrecoverable)
        let entries = self
            .route_cache
            .lock()
            .expect("route cache poisoned")
            .entries
            .len();
        RouteCacheStats {
            // lint: relaxed-ok(pure statistic; independent reads need no ordering)
            hits: self.route_cache_hits.load(Ordering::Relaxed),
            // lint: relaxed-ok(pure statistic; independent reads need no ordering)
            misses: self.route_cache_misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Routes every declared message of `program` — the precompiled
    /// equivalent of [`MessageRoutes::compute`], with identical results.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellCountMismatch`] if the program and topology
    ///   disagree on the number of cells;
    /// * any routing error from [`CompiledTopology::route`].
    pub fn routes_for(&self, program: &Program) -> Result<MessageRoutes, ModelError> {
        if program.num_cells() != self.topology.num_cells() {
            return Err(ModelError::CellCountMismatch {
                program: program.num_cells(),
                topology: self.topology.num_cells(),
            });
        }
        let mut routes = Vec::with_capacity(program.num_messages());
        for decl in program.messages() {
            routes.push(self.route(decl.sender(), decl.receiver())?);
        }
        Ok(MessageRoutes::from_routes(routes))
    }

    /// The lookahead budgets the compiled configuration implies for
    /// `program` (whose routes must come from this compilation).
    #[must_use]
    pub fn limits_for(&self, program: &Program, routes: &MessageRoutes) -> LookaheadLimits {
        match &self.config.lookahead {
            Lookahead::Disabled => LookaheadLimits::disabled(program),
            Lookahead::PerQueueCapacity(c) => LookaheadLimits::from_routes(routes, *c),
            Lookahead::Explicit(limits) => limits.clone(),
            Lookahead::Unbounded => LookaheadLimits::unbounded(program),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn diamond() -> Topology {
        Topology::graph(4, [(c(0), c(1)), (c(0), c(2)), (c(1), c(3)), (c(2), c(3))]).unwrap()
    }

    #[test]
    fn compiled_routes_match_direct_routing() {
        for topology in [
            Topology::linear(5),
            Topology::ring(6),
            Topology::mesh(2, 3),
            diamond(),
        ] {
            let compiled = CompiledTopology::compile(&topology, &AnalysisConfig::default());
            assert_eq!(compiled.has_route_closure(), topology.uses_search_routing());
            for i in 0..topology.num_cells() as u32 {
                for j in 0..topology.num_cells() as u32 {
                    let direct = topology.route_cells(c(i), c(j)).map(Route::new);
                    assert_eq!(
                        compiled.route(c(i), c(j)),
                        direct,
                        "route {i}->{j} diverged on {}",
                        topology.spec()
                    );
                }
            }
        }
    }

    #[test]
    fn routes_for_matches_message_routes_compute() {
        let program = parse_program(
            "cells 4\n\
             message A: c0 -> c3\n\
             message B: c3 -> c1\n\
             program c0 { W(A)*2 }\n\
             program c1 { R(B) }\n\
             program c3 { R(A)*2 W(B) }\n",
        )
        .unwrap();
        let topology = diamond();
        let compiled = CompiledTopology::compile(&topology, &AnalysisConfig::default());
        assert_eq!(
            compiled.routes_for(&program).unwrap(),
            MessageRoutes::compute(&program, &topology).unwrap()
        );
    }

    #[test]
    fn route_errors_match_direct_routing() {
        let disconnected = Topology::graph(4, [(c(0), c(1)), (c(2), c(3))]).unwrap();
        let compiled = CompiledTopology::compile(&disconnected, &AnalysisConfig::default());
        assert!(matches!(
            compiled.route(c(0), c(3)),
            Err(ModelError::NoRoute { .. })
        ));
        assert!(matches!(
            compiled.route(c(1), c(1)),
            Err(ModelError::NoRoute { .. })
        ));
        assert!(matches!(
            compiled.route(c(0), c(9)),
            Err(ModelError::CellOutOfRange { .. })
        ));

        let program = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let three = CompiledTopology::compile(&Topology::linear(3), &AnalysisConfig::default());
        assert!(matches!(
            three.routes_for(&program),
            Err(ModelError::CellCountMismatch { .. })
        ));
    }

    /// A line expressed as a free-form graph with `n` cells, so routing
    /// must search (and, beyond the closure limit, go through the LRU).
    fn line_graph(n: usize) -> Topology {
        Topology::graph(n, (0..n - 1).map(|i| (c(i as u32), c(i as u32 + 1)))).unwrap()
    }

    #[test]
    fn oversized_graphs_route_through_the_lru() {
        let n = MAX_CLOSURE_CELLS + 4;
        let compiled = CompiledTopology::compile(&line_graph(n), &AnalysisConfig::default());
        assert!(!compiled.has_route_closure());

        let route = compiled.route(c(0), c(n as u32 - 1)).unwrap();
        assert_eq!(route.num_hops(), n - 1);
        let stats = compiled.route_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        // Same pair again: a hit, byte-identical route.
        assert_eq!(compiled.route(c(0), c(n as u32 - 1)).unwrap(), route);
        let stats = compiled.route_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // Errors are served but never cached.
        assert!(matches!(
            compiled.route(c(3), c(3)),
            Err(ModelError::NoRoute { .. })
        ));
        assert!(matches!(
            compiled.route(c(0), c(n as u32)),
            Err(ModelError::CellOutOfRange { .. })
        ));
        assert_eq!(compiled.route_cache_stats().entries, 1);

        // A clone starts with a cold, empty cache.
        let cloned = compiled.clone();
        assert_eq!(cloned.route_cache_stats(), RouteCacheStats::default());
        assert_eq!(cloned.route(c(0), c(n as u32 - 1)).unwrap(), route);
    }

    #[test]
    fn route_lru_evicts_at_capacity() {
        let n = MAX_CLOSURE_CELLS + 4;
        let compiled = CompiledTopology::compile(&line_graph(n), &AnalysisConfig::default());
        let mut inserted = 0usize;
        'outer: for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i == j {
                    continue;
                }
                compiled.route(c(i), c(j)).unwrap();
                inserted += 1;
                if inserted > ROUTE_CACHE_CAPACITY + 16 {
                    break 'outer;
                }
            }
        }
        let stats = compiled.route_cache_stats();
        assert!(stats.entries <= ROUTE_CACHE_CAPACITY);
        assert_eq!(stats.misses, inserted as u64, "distinct pairs all miss");
        // A freshly inserted pair is immediately servable from the cache.
        compiled.route(c(200), c(201)).unwrap();
        let before = compiled.route_cache_stats().hits;
        compiled.route(c(200), c(201)).unwrap();
        assert_eq!(compiled.route_cache_stats().hits, before + 1);
    }

    #[test]
    fn fingerprint_covers_topology_and_config() {
        let base = CompiledTopology::compile(&Topology::linear(4), &AnalysisConfig::default());
        assert_eq!(
            base.fingerprint(),
            CompiledTopology::fingerprint_of(&Topology::linear(4), &AnalysisConfig::default())
        );
        let other_topology =
            CompiledTopology::compile(&Topology::ring(4), &AnalysisConfig::default());
        assert_ne!(base.fingerprint(), other_topology.fingerprint());
        let other_config = CompiledTopology::compile(
            &Topology::linear(4),
            &AnalysisConfig {
                queues_per_interval: 2,
                ..Default::default()
            },
        );
        assert_ne!(base.fingerprint(), other_config.fingerprint());
    }

    #[test]
    fn limits_follow_the_compiled_config() {
        let program = parse_program(
            "cells 3\nmessage A: c0 -> c2\nprogram c0 { W(A) }\nprogram c2 { R(A) }\n",
        )
        .unwrap();
        let topology = Topology::linear(3);
        let capacity = AnalysisConfig {
            lookahead: Lookahead::PerQueueCapacity(2),
            queues_per_interval: 1,
        };
        let compiled = CompiledTopology::compile(&topology, &capacity);
        let routes = compiled.routes_for(&program).unwrap();
        let limits = compiled.limits_for(&program, &routes);
        // A crosses two intervals at capacity 2 => budget 4.
        assert_eq!(limits.limit(systolic_model::MessageId::new(0)), Some(4));
    }
}
